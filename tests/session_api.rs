//! Integration tests for the session-based driver API through the facade
//! crate: builder validation, budgets and cross-thread cancellation,
//! observer ordering, and the multi-target batch entry point.

use std::sync::Arc;
use std::time::{Duration, Instant};
use stoke_suite::stoke::{
    Budget, CollectingObserver, Config, ConfigError, InputSpec, Phase, Session, StokeError,
    TargetSpec, Verification,
};
use stoke_suite::workloads::hackers_delight;
use stoke_suite::x86::Gpr;

fn p01_spec() -> TargetSpec {
    let kernel = hackers_delight::p01();
    TargetSpec::new(
        kernel.target_o0(),
        vec![InputSpec::value32(Gpr::Rdi)],
        kernel.live_out.clone(),
    )
}

fn quick_config() -> Config {
    Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(1)
        .build()
        .expect("valid configuration")
}

#[test]
fn builder_validation_is_reachable_through_the_facade() {
    let err = Config::builder().threads(0).build().unwrap_err();
    assert_eq!(err, ConfigError::ZeroThreads);
}

#[test]
fn cancellation_from_another_thread_stops_the_search() {
    // An effectively unbounded synthesis phase, cancelled from a second
    // thread shortly after it starts: the run must come back quickly with
    // a partial result instead of grinding through the huge budget.
    let config = Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(u64::MAX / 2)
        .optimization_iterations(1_000)
        .threads(1)
        .build()
        .expect("valid configuration");
    let session = Session::new(config);
    let token = session.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
    });
    let t0 = Instant::now();
    let outcome = session.run(&p01_spec());
    canceller.join().expect("canceller thread");
    match outcome {
        Err(StokeError::BudgetExhausted { partial }) => {
            assert!(
                partial.stats.synthesis_proposals > 0,
                "search never started"
            );
        }
        other => panic!("expected BudgetExhausted after cancellation, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "cancellation did not preempt the search"
    );
}

#[test]
fn batch_runs_a_small_workload_end_to_end() {
    let kernels = [hackers_delight::p01(), hackers_delight::p14()];
    let specs: Vec<TargetSpec> = kernels
        .iter()
        .map(|kernel| {
            let inputs = [Gpr::Rdi, Gpr::Rsi]
                .iter()
                .take(kernel.ir.num_params)
                .map(|g| InputSpec::value32(*g))
                .collect();
            TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
        })
        .collect();
    let observer = Arc::new(CollectingObserver::new());
    let session = Session::new(quick_config()).with_observer(observer.clone());
    let results = session.run_batch(&specs);
    assert_eq!(results.len(), 2);
    for (kernel, result) in kernels.iter().zip(&results) {
        let result = result.as_ref().expect("batch target succeeds");
        assert!(
            result.rewrite_latency <= result.target_latency,
            "{}: batch rewrite must not be slower than the target",
            kernel.name
        );
        assert_ne!(result.verification, Verification::TargetReturned);
    }
    // Each target went through the full pipeline, phases in order.
    for target in 0..2 {
        let phases: Vec<Phase> = observer
            .events()
            .into_iter()
            .filter_map(|e| match e {
                stoke_suite::stoke::SearchEvent::PhaseStart { target: t, phase } if t == target => {
                    Some(phase)
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            phases,
            vec![
                Phase::Testcases,
                Phase::Synthesis,
                Phase::Optimization,
                Phase::Validation
            ],
            "target {target} phases out of order"
        );
    }
}

#[test]
fn a_batch_wall_clock_budget_is_shared_across_targets() {
    // With a deadline that expires mid-batch, later targets must come back
    // as BudgetExhausted rather than starting fresh clocks.
    let config = Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(u64::MAX / 2)
        .optimization_iterations(1_000)
        .threads(1)
        .build()
        .expect("valid configuration");
    let session = Session::new(config)
        .with_budget(Budget::unlimited().with_wall_clock(Duration::from_millis(50)));
    let specs = vec![p01_spec(), p01_spec()];
    let results = session.run_batch(&specs);
    assert_eq!(results.len(), 2);
    for result in &results {
        assert!(
            matches!(result, Err(StokeError::BudgetExhausted { .. })),
            "expected BudgetExhausted for every target, got {result:?}"
        );
    }
}
