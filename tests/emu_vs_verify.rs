//! Differential testing between the concrete emulator (`stoke-emu`) and
//! the symbolic validator (`stoke-verify`).
//!
//! The cost function trusts the emulator and the final equivalence proof
//! trusts the symbolic semantics; the whole system is only sound if the
//! two agree. These tests compare them instruction family by instruction
//! family: a program is run concretely, and symbolically with the same
//! concrete inputs substituted into the term evaluator.

use std::collections::HashMap;
use stoke_suite::emu::{run, MachineState};
use stoke_suite::solver::TermPool;
use stoke_suite::verify::{SymExecutor, SymState};
use stoke_suite::x86::{Flag, Gpr, Program};

/// Execute `program` symbolically and evaluate the final register terms
/// under the given concrete register assignment.
fn symbolic_eval(program: &Program, inputs: &[(Gpr, u64)]) -> HashMap<Gpr, u64> {
    let mut pool = TermPool::new();
    let mut state = SymState::initial(&mut pool, "t");
    {
        let mut exec = SymExecutor::new(&mut pool, true);
        for instr in program {
            exec.step(&mut state, instr);
        }
    }
    let mut env: HashMap<String, u64> = HashMap::new();
    for g in Gpr::ALL {
        env.insert(format!("in_{}", g.name64()), 0);
    }
    for f in Flag::ALL {
        env.insert(format!("in_{}", f.name()), 0);
    }
    for i in 0..16 {
        env.insert(format!("in_xmm{}_lo", i), 0);
        env.insert(format!("in_xmm{}_hi", i), 0);
    }
    for (g, v) in inputs {
        env.insert(format!("in_{}", g.name64()), *v);
    }
    let mut out = HashMap::new();
    for g in Gpr::ALL {
        out.insert(g, pool.eval(state.read_gpr64(g), &env));
    }
    out
}

/// Execute `program` concretely from the same inputs.
fn concrete_eval(program: &Program, inputs: &[(Gpr, u64)]) -> MachineState {
    let mut state = MachineState::new();
    for g in Gpr::ALL {
        state.set_gpr64(g, 0);
    }
    for (g, v) in inputs {
        state.set_gpr64(*g, *v);
    }
    run(program, &state).state
}

fn check_agreement(text: &str, inputs: &[(Gpr, u64)], observed: &[Gpr]) {
    let program: Program = text.parse().expect("program parses");
    let sym = symbolic_eval(&program, inputs);
    let conc = concrete_eval(&program, inputs);
    for g in observed {
        assert_eq!(
            sym[g],
            conc.read_gpr64(*g),
            "emulator and validator disagree on {} for program:\n{}\ninputs: {:?}",
            g.name64(),
            text,
            inputs
        );
    }
}

/// A deterministic xorshift generator so the test corpus is stable.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn alu_and_flag_programs_agree() {
    let programs = [
        "movq rdi, rax\naddq rsi, rax\nadcq 0, rdx",
        "cmpq rsi, rdi\nsete al\nsetb bl\nsetl cl",
        "movq rdi, rax\nsubq rsi, rax\nsbbq 0, rdx",
        "movq rdi, rax\nnegq rax\nandq rsi, rax",
        "movl edi, eax\nnotl eax\nincl eax\ndecl eax",
        "testq rdi, rdi\ncmovneq rsi, rax",
        "movq rdi, rax\nxorq rsi, rax\norq rdx, rax",
        "cmpl esi, edi\ncmovael esi, edi\nmovq rdi, rax",
        "movq rdi, rax\nimulq 3, rax",
        "movl edi, eax\nimull esi, eax",
    ];
    let mut rng = Rng(0xdead_beef_1234_5678);
    for text in programs {
        for _ in 0..8 {
            let inputs = [
                (Gpr::Rdi, rng.next()),
                (Gpr::Rsi, rng.next()),
                (Gpr::Rdx, rng.next()),
                (Gpr::Rax, rng.next()),
                (Gpr::Rbx, rng.next()),
                (Gpr::Rcx, rng.next()),
            ];
            check_agreement(
                text,
                &inputs,
                &[Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx, Gpr::Rdi],
            );
        }
    }
}

#[test]
fn shift_and_bit_programs_agree() {
    let programs = [
        "movq rdi, rax\nshlq 1, rax\nshrq 3, rax",
        "movq rdi, rax\nsarq 63, rax",
        "movl edi, eax\nshll 31, eax\nsarl 5, eax",
        "movq rsi, rcx\nmovq rdi, rax\nshlq cl, rax",
        "movq rsi, rcx\nmovq rdi, rax\nshrq cl, rax\nsarq cl, rax",
        "movq rdi, rax\nrolq 7, rax\nrorq 3, rax",
        "popcntq rdi, rax\npopcntl esi, ebx",
        "bsfq rdi, rax\nbsrq rdi, rbx",
        "bswapq rdi\nmovq rdi, rax",
        "movslq edi, rax\nmovzbl dil, ebx\nmovsbq dil, rcx",
        "movq rdi, rax\ncqto\nmovq rdx, rbx",
        "movl edi, eax\ncltq\ncltd",
    ];
    let mut rng = Rng(0x0123_4567_89ab_cdef);
    for text in programs {
        for _ in 0..8 {
            let inputs = [
                (Gpr::Rdi, rng.next()),
                (Gpr::Rsi, rng.next() % 70), // shift counts worth exercising
                (Gpr::Rax, rng.next()),
                (Gpr::Rbx, rng.next()),
                (Gpr::Rdx, rng.next()),
            ];
            check_agreement(
                text,
                &inputs,
                &[Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx, Gpr::Rdi],
            );
        }
    }
}

#[test]
fn narrow_multiply_and_divide_free_programs_agree() {
    // 32-bit widening multiplies are blasted (not uninterpreted), so the
    // symbolic evaluator must match the emulator bit for bit.
    let programs = [
        "movl edi, eax\nmull esi\nmovl edx, ebx",
        "movl edi, eax\nimull esi\nmovl edx, ebx",
        "movl edi, eax\nimull 100, eax",
    ];
    let mut rng = Rng(0xfeed_face_cafe_f00d);
    for text in programs {
        for _ in 0..8 {
            let inputs = [(Gpr::Rdi, rng.next()), (Gpr::Rsi, rng.next())];
            check_agreement(text, &inputs, &[Gpr::Rax, Gpr::Rbx, Gpr::Rdx]);
        }
    }
}

#[test]
fn paper_rewrites_agree_between_engines() {
    // Note: the Montgomery rewrite is exercised through the emulator and
    // the validator's UNSAT path instead of this concrete cross-check,
    // because its 64-bit widening multiply is deliberately modelled as an
    // uninterpreted function on the symbolic side (§5.2), so the symbolic
    // term evaluator cannot reproduce concrete products.
    use stoke_suite::workloads::hackers_delight::P21_STOKE;
    let mut rng = Rng(0x5ca1ab1e);
    for _ in 0..8 {
        let vals = [
            rng.next() & 0xffff,
            rng.next() & 0xffff,
            rng.next() & 0xffff,
        ];
        let x = vals[(rng.next() % 3) as usize];
        let inputs = [
            (Gpr::Rdi, x),
            (Gpr::Rsi, vals[0]),
            (Gpr::Rdx, vals[1]),
            (Gpr::Rcx, vals[2]),
        ];
        check_agreement(P21_STOKE, &inputs, &[Gpr::Rax]);
    }
}
