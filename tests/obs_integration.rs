//! Observability is passive: attaching the metrics registry and the
//! structured trace sink to a fixed-seed pipeline run must reproduce the
//! uninstrumented run bit-for-bit, while the registry's counters must
//! agree exactly with the `SearchStats` the pipeline reports and the
//! trace must validate against the JSONL schema.

use std::sync::Arc;
use stoke_suite::obs::{validate_trace, JsonlSink, MetricsRegistry, RingSink, TraceRecord};
use stoke_suite::stoke::{Config, InputSpec, Session, StokeResult, TargetSpec};
use stoke_suite::workloads::{hackers_delight, Kernel};
use stoke_suite::x86::Gpr;

fn spec_for(kernel: &Kernel) -> TargetSpec {
    let inputs = [Gpr::Rdi, Gpr::Rsi]
        .iter()
        .take(kernel.ir.num_params)
        .map(|g| InputSpec::value32(*g))
        .collect();
    TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
}

fn base_config() -> Config {
    Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(1)
        .build()
        .expect("valid configuration")
}

/// Everything deterministic about a result (wall-clock durations are
/// excluded; they are the only nondeterministic fields).
fn snapshot(r: &StokeResult) -> String {
    format!(
        "rewrite={:?} verification={:?} target_latency={} rewrite_latency={} \
         target_cycles={} rewrite_cycles={} synthesis_proposals={} \
         optimization_proposals={} testcases_run={} validations={} \
         counterexamples={} synthesis_succeeded={} moves={:?}",
        r.rewrite.to_string(),
        r.verification,
        r.target_latency,
        r.rewrite_latency,
        r.target_cycles,
        r.rewrite_cycles,
        r.stats.synthesis_proposals,
        r.stats.optimization_proposals,
        r.stats.testcases_run,
        r.stats.validations,
        r.stats.counterexamples,
        r.stats.synthesis_succeeded,
        r.stats.moves,
    )
}

#[test]
fn instrumented_runs_are_bit_identical_on_p01_and_p14() {
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let spec = spec_for(&kernel);
        let baseline = Session::new(base_config())
            .run(&spec)
            .expect("search completes");
        let registry = Arc::new(MetricsRegistry::new());
        let ring = Arc::new(RingSink::new(1 << 20));
        let instrumented = Session::new(base_config())
            .with_metrics(registry.clone())
            .with_trace(ring)
            .run(&spec)
            .expect("search completes");
        assert_eq!(
            snapshot(&instrumented),
            snapshot(&baseline),
            "metrics+trace changed the {} search trajectory",
            kernel.name
        );
    }
}

#[test]
fn registry_counters_agree_with_search_stats() {
    let spec = spec_for(&hackers_delight::p01());
    let registry = Arc::new(MetricsRegistry::new());
    let result = Session::new(base_config())
        .with_metrics(registry.clone())
        .run(&spec)
        .expect("search completes");
    let snap = registry.snapshot();

    let stats = &result.stats;
    assert_eq!(
        snap.counter(r#"stoke_proposals_total{phase="synthesis"}"#),
        stats.synthesis_proposals
    );
    assert_eq!(
        snap.counter(r#"stoke_proposals_total{phase="optimization"}"#),
        stats.optimization_proposals
    );
    assert_eq!(snap.counter("stoke_testcases_total"), stats.testcases_run);
    assert_eq!(
        snap.counter("stoke_counterexamples_total"),
        stats.counterexamples
    );
    for (kind, name) in [
        (stoke_suite::stoke::MoveKind::Opcode, "opcode"),
        (stoke_suite::stoke::MoveKind::Operand, "operand"),
        (stoke_suite::stoke::MoveKind::Swap, "swap"),
        (stoke_suite::stoke::MoveKind::Instruction, "instruction"),
    ] {
        assert_eq!(
            snap.counter(&format!(r#"stoke_moves_total{{kind="{name}"}}"#)),
            stats.moves.proposed(kind),
            "proposed {name} moves"
        );
        assert_eq!(
            snap.counter(&format!(r#"stoke_move_accepted_total{{kind="{name}"}}"#)),
            stats.moves.accepted(kind),
            "accepted {name} moves"
        );
    }
    // Exactly one search finished, under some verification verdict.
    let searches: u64 = ["proven", "tests_only", "target_returned"]
        .iter()
        .map(|v| snap.counter(&format!(r#"stoke_searches_total{{verification="{v}"}}"#)))
        .sum();
    assert_eq!(searches, 1);
    // The exposition text renders every family exactly once.
    let text = registry.render_text();
    assert_eq!(
        text.matches("# TYPE stoke_proposals_total counter").count(),
        1
    );
    assert!(text.contains("stoke_search_seconds_count 1"));
}

#[test]
fn jsonl_trace_of_a_full_run_validates() {
    let path = std::env::temp_dir().join(format!("stoke-obs-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let sink = JsonlSink::create(&path, "obs-integration").expect("trace file opens");
        Session::new(base_config())
            .with_trace(Arc::new(sink))
            .run(&spec_for(&hackers_delight::p01()))
            .expect("search completes");
        // Sink drops here, flushing the writer.
    }
    let contents = std::fs::read_to_string(&path).expect("trace file exists");
    let summary = validate_trace(contents.lines()).expect("trace validates");
    assert!(summary.spans_started >= 3, "phase spans recorded");
    assert_eq!(
        summary.spans_started, summary.spans_ended,
        "every span closed"
    );
    assert!(summary.events > 0, "progress/search events recorded");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ring_trace_records_the_search_lifecycle() {
    let ring = Arc::new(RingSink::new(1 << 20));
    Session::new(base_config())
        .with_trace(ring.clone())
        .run(&spec_for(&hackers_delight::p14()))
        .expect("search completes");
    let records = ring.records();
    assert_eq!(ring.dropped(), 0);
    let span_names: Vec<&str> = records
        .iter()
        .filter_map(|(_, r)| match r {
            TraceRecord::SpanStart { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(span_names.contains(&"phase:synthesis"));
    assert!(span_names.contains(&"phase:optimization"));
    assert!(records
        .iter()
        .any(|(_, r)| matches!(r, TraceRecord::Event { name, .. } if name == "search_end")));
}
