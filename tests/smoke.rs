//! Workspace smoke test: one quick end-to-end pipeline run — search
//! (MCMC synthesis + optimization) → emulator (test-case evaluation) →
//! symbolic validator — on a Hacker's Delight kernel, so CI exercises
//! every layer in a single integration test.

use stoke_suite::stoke::{Config, ConfigBuilder, InputSpec, Session, TargetSpec, Verification};
use stoke_suite::workloads::hackers_delight;
use stoke_suite::x86::Gpr;

#[test]
fn quick_pipeline_on_hackers_delight_p01() {
    // p01: x & (x - 1), one 32-bit parameter in rdi, result in rax.
    let kernel = hackers_delight::p01();
    let spec = TargetSpec::new(
        kernel.target_o0(),
        vec![InputSpec::value32(Gpr::Rdi)],
        kernel.live_out.clone(),
    );

    // `ell` = 16 covers the 14-instruction O0 target so the optimization
    // chain genuinely starts from it without growing the rewrite buffer.
    let config: Config = ConfigBuilder::quick_test()
        .num_testcases(16)
        .ell(16)
        .synthesis_iterations(10_000)
        .optimization_iterations(30_000)
        .build()
        .expect("valid configuration");
    let result = Session::new(config).run(&spec).expect("pipeline completes");

    // The search must return an actual verified rewrite (the run is
    // deterministic for the fixed default seed, so this cannot flake):
    // either proven equivalent by the symbolic validator or clean on the
    // counterexample-refined test suite.
    assert!(
        matches!(
            result.verification,
            Verification::Proven | Verification::TestsOnly
        ),
        "unexpected verification status: {:?}",
        result.verification
    );
    // The pipeline must never return something slower than the target.
    assert!(
        result.rewrite_latency <= result.target_latency,
        "rewrite latency {} exceeds target latency {}",
        result.rewrite_latency,
        result.target_latency
    );
    assert!(result.speedup() >= 1.0);
    // The search ran for real: proposals were evaluated on test cases.
    assert!(result.stats.synthesis_proposals > 0);
    assert!(result.stats.optimization_proposals > 0);
    assert!(result.stats.testcases_run > 0);
}
