//! Property tests for the incremental prefix-checkpoint backend: over
//! random programs (drawn from the MCMC proposal distribution), random
//! machine states, and random accept/reject edit interleavings, resuming
//! from a checkpoint must be bit-identical to full batched re-execution —
//! per-column final states and faults at the engine layer, and `eq'`
//! totals, §4.5 early-exit decisions and statistics at the cost-function
//! layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stoke_suite::emu::{
    BatchState, BatchedProgram, MachineState, PrefixCheckpoints, PreparedProgram,
};
use stoke_suite::stoke::{generate_testcases, BackendSpec, Config, CostFn, Proposer, TargetSpec};
use stoke_suite::x86::{Flag, Gpr, Instruction, Program, Xmm};

/// A random machine state, mirroring `prop_batched`: a random subset of
/// registers and flags defined, one small valid memory region with random
/// contents, and a stack pointer inside it.
fn random_state(seed: u64) -> MachineState {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = MachineState::new();
    for g in Gpr::ALL {
        if rng.gen_bool(0.7) {
            let value = if rng.gen_bool(0.5) {
                rng.gen::<u64>() & 0xffff
            } else {
                rng.gen::<u64>()
            };
            state.set_gpr64(g, value);
        }
    }
    for x in Xmm::ALL {
        if rng.gen_bool(0.3) {
            state.write_xmm(x, [rng.gen(), rng.gen()]);
        }
    }
    for f in Flag::ALL {
        if rng.gen_bool(0.5) {
            state.write_flag(f, rng.gen_bool(0.5));
        }
    }
    state.set_gpr64(Gpr::Rsp, 0x8000);
    state.memory.mark_valid(0x7000, 0x1010);
    let mut addr = 0x7000u64;
    while addr < 0x7040 {
        state.memory.poke_wide(addr, rng.gen::<u64>(), 8);
        addr += 8;
    }
    state
}

/// A random instruction sequence drawn from the proposal distribution
/// `q(·)` of §4.3 over the full opcode universe.
fn random_program(seed: u64, len: usize) -> Vec<Instruction> {
    let config = Config {
        ell: len,
        ..Config::default()
    };
    let mut proposer = Proposer::new(config, seed);
    (0..len).map(|_| proposer.random_instruction()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Engine layer: a random sequence of single-slot edits with random
    /// accept/reject outcomes, each evaluated by restoring from the
    /// nearest checkpoint and executing only the suffix, always produces
    /// the same per-column states and faults as running the candidate
    /// from scratch. Rejected candidates leave the checkpoints untouched;
    /// accepted ones re-anchor them with `commit`.
    #[test]
    fn checkpoint_resume_is_bit_identical_to_full_run(
        program_seed in any::<u64>(),
        state_seed in any::<u64>(),
        edit_seed in any::<u64>(),
        len in 2usize..16,
        n in 1usize..5,
        interval in 1usize..6,
    ) {
        let mut current = random_program(program_seed, len);
        let states: Vec<MachineState> = (0..n as u64)
            .map(|i| random_state(state_seed.wrapping_add(i)))
            .collect();
        let mut rng = StdRng::seed_from_u64(edit_seed);
        let mut proposer = Proposer::new(
            Config { ell: len, ..Config::default() },
            edit_seed ^ 0x5eed,
        );
        let mut batch = BatchState::default();
        let mut ckpt = PrefixCheckpoints::new();
        {
            let prepared = PreparedProgram::new(&current);
            let prog = BatchedProgram::new(&prepared);
            ckpt.commit(&prog, &mut batch, states.iter(), 0, interval);
        }
        prop_assert!(!ckpt.is_empty(), "the initial commit must snapshot");
        for step in 0..12usize {
            let f = rng.gen_range(0..len);
            let accept = rng.gen_bool(0.5);
            let mut candidate = current.clone();
            candidate[f] = proposer.random_instruction();
            {
                let prepared = PreparedProgram::new(&candidate);
                let prog = BatchedProgram::new(&prepared);
                // The first f instructions are unchanged, so any
                // checkpoint at or before f is a valid resume point.
                let resume = match ckpt.restore(&mut batch, f) {
                    Some(pos) => pos,
                    None => {
                        batch.reload(states.iter());
                        0
                    }
                };
                prop_assert!(resume <= f, "resumed past the first edit");
                prog.run_lockstep_with_from(&mut batch, resume, |_| true);
                let full = prog.run_batch(&states);
                for (col, outcome) in full.iter().enumerate().take(n) {
                    prop_assert_eq!(
                        &batch.column_state(col),
                        &outcome.state,
                        "step {} column {} state diverges",
                        step,
                        col
                    );
                    prop_assert_eq!(
                        batch.faults(col),
                        outcome.faults,
                        "step {} column {} faults diverge",
                        step,
                        col
                    );
                }
                if accept {
                    ckpt.commit(&prog, &mut batch, states.iter(), f, interval);
                }
            }
            if accept {
                current = candidate;
            }
        }
    }

    /// Cost-function layer: replaying one random edit sequence through a
    /// `Batched` and an `Incremental` cost function (the latter driven by
    /// the chain's hint/commit protocol) yields identical `eq'` totals,
    /// identical §4.5 early-exit decisions, identical evaluated-case
    /// counts, and identical shared statistics at every step.
    #[test]
    fn incremental_cost_fn_matches_batched(
        program_seed in any::<u64>(),
        suite_seed in any::<u64>(),
        edit_seed in any::<u64>(),
        n in 1usize..6,
        interval in 0usize..5,
        reorder in prop_oneof![Just(0u64), Just(3u64)],
    ) {
        let len = 8usize;
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
        let suite = generate_testcases(&spec, n, suite_seed);
        let latency = target.static_latency();
        let mut batched = CostFn::new(
            Config { backend: BackendSpec::Batched, ..Config::quick_test() },
            suite.clone(),
            latency,
        );
        let mut incremental = CostFn::new(
            Config {
                backend: BackendSpec::Incremental,
                checkpoint_interval: interval,
                reorder_interval: reorder,
                ..Config::quick_test()
            },
            suite,
            latency,
        );
        let mut current = random_program(program_seed, len);
        {
            let prepared = PreparedProgram::new(&current);
            incremental.commit_baseline(&prepared, 0);
        }
        let mut rng = StdRng::seed_from_u64(edit_seed);
        let mut proposer = Proposer::new(
            Config { ell: len, ..Config::default() },
            edit_seed ^ 0x5eed,
        );
        for step in 0..10usize {
            let f = rng.gen_range(0..len);
            let mut candidate = current.clone();
            candidate[f] = proposer.random_instruction();
            let bound = match rng.gen_range(0u8..4) {
                0 => None,
                1 => Some(0.0),
                2 => Some(rng.gen_range(0u64..200) as f64),
                _ => Some(1e18),
            };
            incremental.set_reuse_prefix(Some(f));
            let (ri, ei) = match bound {
                None => (Some(incremental.eq_prime(&candidate)), n),
                Some(b) => incremental.eq_prime_bounded(&candidate, b),
            };
            let (rb, eb) = match bound {
                None => (Some(batched.eq_prime(&candidate)), n),
                Some(b) => batched.eq_prime_bounded(&candidate, b),
            };
            prop_assert_eq!(ri, rb, "step {} eq' diverges (bound {:?})", step, bound);
            prop_assert_eq!(
                incremental.stats.evaluations, batched.stats.evaluations,
                "step {} evaluation counts diverge", step
            );
            prop_assert_eq!(
                incremental.stats.early_terminations, batched.stats.early_terminations,
                "step {} early-exit decisions diverge", step
            );
            if reorder == 0 {
                // With the suite-order walk the incremental backend is
                // bit-identical including where the early exit fires.
                prop_assert_eq!(ei, eb, "step {} evaluated counts diverge", step);
                prop_assert_eq!(
                    incremental.stats.testcases_run, batched.stats.testcases_run,
                    "step {} testcases_run diverges", step
                );
            }
            if ri.is_some() && rng.gen_bool(0.5) {
                current = candidate;
                let prepared = PreparedProgram::new(&current);
                incremental.commit_baseline(&prepared, f);
            }
        }
    }
}
