//! Fixed-seed snapshot tests for backend bit-identity: the full search
//! pipeline (synthesis → optimization → validation → re-rank) run with
//! `BackendSpec::Batched` must reproduce the `Prepared` backend's results
//! — rewrite, latencies, timing-model cycles, verification status, and
//! every deterministic statistic — bit-for-bit. The `Prepared` arm is
//! byte-for-byte the pipeline of the previous release, so agreement here
//! pins the batched default to the historical fixed-seed snapshots.

use stoke_suite::stoke::{
    generate_testcases, BackendSpec, Config, CostFn, CostModelSpec, InputSpec, Session,
    StokeResult, TargetSpec, VerifierSpec,
};
use stoke_suite::workloads::{hackers_delight, Kernel};
use stoke_suite::x86::Gpr;

fn spec_for(kernel: &Kernel) -> TargetSpec {
    let inputs = [Gpr::Rdi, Gpr::Rsi]
        .iter()
        .take(kernel.ir.num_params)
        .map(|g| InputSpec::value32(*g))
        .collect();
    TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
}

fn base_config(backend: BackendSpec) -> Config {
    Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(1)
        .backend(backend)
        .build()
        .expect("valid configuration")
}

fn run_with(backend: BackendSpec, spec: &TargetSpec) -> StokeResult {
    Session::new(base_config(backend))
        .run(spec)
        .expect("search completes")
}

/// Everything deterministic about a result (wall-clock durations are
/// excluded; they are the only nondeterministic fields).
fn snapshot(r: &StokeResult) -> String {
    format!(
        "rewrite={:?} verification={:?} target_latency={} rewrite_latency={} \
         target_cycles={} rewrite_cycles={} synthesis_proposals={} \
         optimization_proposals={} testcases_run={} validations={} \
         counterexamples={} synthesis_succeeded={}",
        r.rewrite.to_string(),
        r.verification,
        r.target_latency,
        r.rewrite_latency,
        r.target_cycles,
        r.rewrite_cycles,
        r.stats.synthesis_proposals,
        r.stats.optimization_proposals,
        r.stats.testcases_run,
        r.stats.validations,
        r.stats.counterexamples,
        r.stats.synthesis_succeeded,
    )
}

#[test]
fn batched_backend_reproduces_prepared_results_on_p01() {
    let spec = spec_for(&hackers_delight::p01());
    let prepared = run_with(BackendSpec::Prepared, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&prepared));
}

#[test]
fn batched_backend_reproduces_prepared_results_on_p14() {
    let spec = spec_for(&hackers_delight::p14());
    let prepared = run_with(BackendSpec::Prepared, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&prepared));
}

#[test]
fn security_analyses_on_secret_free_targets_are_bit_identical() {
    // Without secret-annotated inputs the constant-time penalty and the
    // leakage gate are no-ops, so enabling them must not perturb the
    // fixed-seed p01/p14 snapshots in any way.
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let spec = spec_for(&kernel);
        let baseline = run_with(BackendSpec::Batched, &spec);
        let mut config = base_config(BackendSpec::Batched);
        config.cost_model = CostModelSpec::ConstantTime { penalty: 16.0 };
        config.verifier = VerifierSpec::LeakageCascade;
        let secured = Session::new(config).run(&spec).expect("search completes");
        assert_eq!(snapshot(&secured), snapshot(&baseline));
    }
}

#[test]
fn dead_code_stripping_only_shrinks_and_stays_correct() {
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let spec = spec_for(&kernel);
        let baseline = run_with(BackendSpec::Batched, &spec);
        let mut config = base_config(BackendSpec::Batched);
        config.strip_dead_code = true;
        let stripped = Session::new(config).run(&spec).expect("search completes");
        assert!(
            stripped.rewrite.len() <= baseline.rewrite.len(),
            "stripping must never lengthen the rewrite"
        );
        // The (possibly shortened) rewrite is still correct on fresh
        // test cases.
        let fresh = generate_testcases(&spec, 16, 90210);
        let mut cf = CostFn::new(base_config(BackendSpec::Batched), fresh, 0);
        let instrs: Vec<_> = stripped.rewrite.iter().cloned().collect();
        assert_eq!(
            cf.eq_prime(&instrs),
            0,
            "stripped rewrite must stay correct"
        );
    }
}

#[test]
fn interp_backend_agrees_too() {
    // The interpreter is the reference semantics; a cheap p01 run pins all
    // three backends to one another.
    let spec = spec_for(&hackers_delight::p01());
    let interp = run_with(BackendSpec::Interp, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&interp));
}
