//! Fixed-seed snapshot tests for backend bit-identity: the full search
//! pipeline (synthesis → optimization → validation → re-rank) run with
//! `BackendSpec::Batched` must reproduce the `Prepared` backend's results
//! — rewrite, latencies, timing-model cycles, verification status, and
//! every deterministic statistic — bit-for-bit. The `Prepared` arm is
//! byte-for-byte the pipeline of the previous release, so agreement here
//! pins the batched default to the historical fixed-seed snapshots. The
//! `Incremental` backend (prefix-checkpoint reuse over the batched
//! engine) is pinned to `Batched` the same way.

use stoke_suite::stoke::{
    generate_testcases, BackendSpec, Config, CostFn, CostModelSpec, InputSpec, Session,
    StokeResult, TargetSpec, VerifierSpec,
};
use stoke_suite::workloads::{hackers_delight, Kernel};
use stoke_suite::x86::Gpr;

fn spec_for(kernel: &Kernel) -> TargetSpec {
    let inputs = [Gpr::Rdi, Gpr::Rsi]
        .iter()
        .take(kernel.ir.num_params)
        .map(|g| InputSpec::value32(*g))
        .collect();
    TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
}

fn base_config(backend: BackendSpec) -> Config {
    Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(1)
        .backend(backend)
        .build()
        .expect("valid configuration")
}

fn run_with(backend: BackendSpec, spec: &TargetSpec) -> StokeResult {
    Session::new(base_config(backend))
        .run(spec)
        .expect("search completes")
}

/// Everything deterministic about a result (wall-clock durations are
/// excluded; they are the only nondeterministic fields).
fn snapshot(r: &StokeResult) -> String {
    format!(
        "rewrite={:?} verification={:?} target_latency={} rewrite_latency={} \
         target_cycles={} rewrite_cycles={} synthesis_proposals={} \
         optimization_proposals={} testcases_run={} validations={} \
         counterexamples={} synthesis_succeeded={}",
        r.rewrite.to_string(),
        r.verification,
        r.target_latency,
        r.rewrite_latency,
        r.target_cycles,
        r.rewrite_cycles,
        r.stats.synthesis_proposals,
        r.stats.optimization_proposals,
        r.stats.testcases_run,
        r.stats.validations,
        r.stats.counterexamples,
        r.stats.synthesis_succeeded,
    )
}

#[test]
fn batched_backend_reproduces_prepared_results_on_p01() {
    let spec = spec_for(&hackers_delight::p01());
    let prepared = run_with(BackendSpec::Prepared, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&prepared));
}

#[test]
fn batched_backend_reproduces_prepared_results_on_p14() {
    let spec = spec_for(&hackers_delight::p14());
    let prepared = run_with(BackendSpec::Prepared, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&prepared));
}

#[test]
fn incremental_backend_reproduces_batched_results_on_p01() {
    // The incremental backend replays prefix checkpoints instead of
    // re-executing unchanged instructions; with the default configuration
    // (no adaptive reordering) every observable of the full pipeline must
    // stay bit-identical to the batched run.
    let spec = spec_for(&hackers_delight::p01());
    let batched = run_with(BackendSpec::Batched, &spec);
    let incremental = run_with(BackendSpec::Incremental, &spec);
    assert_eq!(snapshot(&incremental), snapshot(&batched));
}

#[test]
fn incremental_backend_reproduces_batched_results_on_p14() {
    let spec = spec_for(&hackers_delight::p14());
    let batched = run_with(BackendSpec::Batched, &spec);
    let incremental = run_with(BackendSpec::Incremental, &spec);
    assert_eq!(snapshot(&incremental), snapshot(&batched));
}

#[test]
fn checkpoint_interval_choice_never_changes_results() {
    // The checkpoint interval is a pure time/space trade-off: any value
    // (including the auto-tuned default) must reproduce the same run.
    let spec = spec_for(&hackers_delight::p01());
    let auto = run_with(BackendSpec::Incremental, &spec);
    for interval in [1, 3, 64] {
        let mut config = base_config(BackendSpec::Incremental);
        config.checkpoint_interval = interval;
        let tuned = Session::new(config).run(&spec).expect("search completes");
        assert_eq!(
            snapshot(&tuned),
            snapshot(&auto),
            "checkpoint_interval={interval} changed the trajectory"
        );
    }
}

/// [`snapshot`] minus `testcases_run` — the one field adaptive test-case
/// ordering is allowed to change (the §4.5 decision is order-invariant,
/// but *where* the early exit fires is not).
fn snapshot_modulo_testcases(r: &StokeResult) -> String {
    snapshot(r)
        .split_whitespace()
        .filter(|field| !field.starts_with("testcases_run="))
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn adaptive_ordering_changes_nothing_but_testcases_run() {
    let spec = spec_for(&hackers_delight::p01());
    let baseline = run_with(BackendSpec::Incremental, &spec);
    let mut config = base_config(BackendSpec::Incremental);
    config.reorder_interval = 32;
    let reordered = Session::new(config).run(&spec).expect("search completes");
    assert_eq!(
        snapshot_modulo_testcases(&reordered),
        snapshot_modulo_testcases(&baseline),
        "adaptive ordering must preserve the search trajectory"
    );
}

#[test]
fn security_analyses_on_secret_free_targets_are_bit_identical() {
    // Without secret-annotated inputs the constant-time penalty and the
    // leakage gate are no-ops, so enabling them must not perturb the
    // fixed-seed p01/p14 snapshots in any way.
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let spec = spec_for(&kernel);
        let baseline = run_with(BackendSpec::Batched, &spec);
        let mut config = base_config(BackendSpec::Batched);
        config.cost_model = CostModelSpec::ConstantTime { penalty: 16.0 };
        config.verifier = VerifierSpec::LeakageCascade;
        let secured = Session::new(config).run(&spec).expect("search completes");
        assert_eq!(snapshot(&secured), snapshot(&baseline));
    }
}

#[test]
fn dead_code_stripping_only_shrinks_and_stays_correct() {
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let spec = spec_for(&kernel);
        let baseline = run_with(BackendSpec::Batched, &spec);
        let mut config = base_config(BackendSpec::Batched);
        config.strip_dead_code = true;
        let stripped = Session::new(config).run(&spec).expect("search completes");
        assert!(
            stripped.rewrite.len() <= baseline.rewrite.len(),
            "stripping must never lengthen the rewrite"
        );
        // The (possibly shortened) rewrite is still correct on fresh
        // test cases.
        let fresh = generate_testcases(&spec, 16, 90210);
        let mut cf = CostFn::new(base_config(BackendSpec::Batched), fresh, 0);
        let instrs: Vec<_> = stripped.rewrite.iter().cloned().collect();
        assert_eq!(
            cf.eq_prime(&instrs),
            0,
            "stripped rewrite must stay correct"
        );
    }
}

#[test]
fn interp_backend_agrees_too() {
    // The interpreter is the reference semantics; a cheap p01 run pins all
    // three backends to one another.
    let spec = spec_for(&hackers_delight::p01());
    let interp = run_with(BackendSpec::Interp, &spec);
    let batched = run_with(BackendSpec::Batched, &spec);
    assert_eq!(snapshot(&batched), snapshot(&interp));
}
