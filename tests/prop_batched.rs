//! Property tests for the batched lockstep backend: for random programs
//! (drawn from the MCMC proposal distribution, i.e. exactly the population
//! the search evaluates) and random suites of varying width — including
//! N = 0, N = 1 and all-faulting columns — `BatchedProgram` produces
//! outcomes bit-identical to `PreparedProgram::run_prepared` per column,
//! and the three `BackendSpec` arms of the cost function agree on `eq'`
//! totals, §4.5 early-termination decisions, and evaluation statistics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stoke_suite::emu::{BatchedProgram, MachineState, PreparedProgram};
use stoke_suite::stoke::{
    generate_testcases, BackendSpec, Config, CostFn, EvalStats, Proposer, TargetSpec,
};
use stoke_suite::x86::{Flag, Gpr, Instruction, Program, Xmm};

/// A random machine state: a random subset of registers and flags defined
/// (so the undefined-read counter is exercised), one small valid memory
/// region with random contents, and a stack pointer inside it.
fn random_state(seed: u64) -> MachineState {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = MachineState::new();
    for g in Gpr::ALL {
        if rng.gen_bool(0.7) {
            // Small values keep computed addresses near the valid region
            // often enough for sandboxed accesses to sometimes succeed.
            let value = if rng.gen_bool(0.5) {
                rng.gen::<u64>() & 0xffff
            } else {
                rng.gen::<u64>()
            };
            state.set_gpr64(g, value);
        }
    }
    for x in Xmm::ALL {
        if rng.gen_bool(0.3) {
            state.write_xmm(x, [rng.gen(), rng.gen()]);
        }
    }
    for f in Flag::ALL {
        if rng.gen_bool(0.5) {
            state.write_flag(f, rng.gen_bool(0.5));
        }
    }
    state.set_gpr64(Gpr::Rsp, 0x8000);
    state.memory.mark_valid(0x7000, 0x1010);
    let mut addr = 0x7000u64;
    while addr < 0x7040 {
        state.memory.poke_wide(addr, rng.gen::<u64>(), 8);
        addr += 8;
    }
    state
}

/// A random instruction sequence drawn from the proposal distribution
/// `q(·)` of §4.3 over the full opcode universe.
fn random_program(seed: u64, len: usize) -> Vec<Instruction> {
    let config = Config {
        ell: len,
        ..Config::default()
    };
    let mut proposer = Proposer::new(config, seed);
    (0..len).map(|_| proposer.random_instruction()).collect()
}

/// Evaluate `eq'` (bounded or not) through one backend, returning the
/// result, the number of test cases evaluated, and the statistics.
fn eval_backend(
    backend: BackendSpec,
    rewrite: &[Instruction],
    suite_width: usize,
    suite_seed: u64,
    bound: Option<f64>,
) -> (Option<u64>, usize, EvalStats) {
    let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
    let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
    let suite = generate_testcases(&spec, suite_width, suite_seed);
    let config = Config {
        backend,
        ..Config::quick_test()
    };
    let mut cost = CostFn::new(config, suite, target.static_latency());
    let (res, evaluated) = match bound {
        None => (Some(cost.eq_prime(rewrite)), suite_width),
        Some(b) => cost.eq_prime_bounded(rewrite, b),
    };
    (res, evaluated, cost.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The batched backend agrees with `run_prepared` on every column's
    /// final machine state and fault counters, for any batch width
    /// (including the empty and single-column batches), and on the cached
    /// static latency.
    #[test]
    fn run_batch_is_bit_identical_to_run_prepared(
        program_seed in any::<u64>(),
        state_seed in any::<u64>(),
        len in 1usize..24,
        n in 0usize..6,
    ) {
        let instrs = random_program(program_seed, len);
        let states: Vec<MachineState> = (0..n as u64)
            .map(|i| random_state(state_seed.wrapping_add(i)))
            .collect();
        let prepared = PreparedProgram::new(&instrs);
        let batched = BatchedProgram::new(&prepared);
        let outs = batched.run_batch(&states);
        prop_assert_eq!(outs.len(), n);
        for (col, (input, out)) in states.iter().zip(&outs).enumerate() {
            let want = prepared.run_prepared(input);
            prop_assert_eq!(&out.state, &want.state, "column {} state diverges", col);
            prop_assert_eq!(out.faults, want.faults, "column {} faults diverge", col);
        }
        prop_assert_eq!(
            batched.static_latency(),
            prepared.static_latency(),
            "latency diverges"
        );
    }

    /// Columns whose every register is undefined (fresh `MachineState`s,
    /// which fault on nearly every read and memory access) behave
    /// identically under both backends.
    #[test]
    fn all_faulting_columns_match(program_seed in any::<u64>(), len in 1usize..16, n in 1usize..5) {
        let instrs = random_program(program_seed, len);
        let states = vec![MachineState::new(); n];
        let prepared = PreparedProgram::new(&instrs);
        let outs = BatchedProgram::new(&prepared).run_batch(&states);
        for (input, out) in states.iter().zip(&outs) {
            let want = prepared.run_prepared(input);
            prop_assert_eq!(&out.state, &want.state);
            prop_assert_eq!(out.faults, want.faults);
        }
    }

    /// All three `BackendSpec` arms return the same `eq'` total, the same
    /// §4.5 early-termination decision, the same number of test cases
    /// evaluated, and the same statistics — for random rewrites, random
    /// suites of varying width, and random bounds (including bounds low
    /// enough to trip on the first case).
    #[test]
    fn backends_agree_on_eq_prime_and_early_exit(
        program_seed in any::<u64>(),
        suite_seed in any::<u64>(),
        n in 0usize..6,
        bound_sel in 0u8..4,
        raw_bound in 0u64..200,
    ) {
        let rewrite = random_program(program_seed, 8);
        let bound = match bound_sel {
            0 => None,
            1 => Some(0.0),
            2 => Some(raw_bound as f64),
            _ => Some(1e18),
        };
        let reference = eval_backend(BackendSpec::Interp, &rewrite, n, suite_seed, bound);
        for backend in [BackendSpec::Prepared, BackendSpec::Batched] {
            let got = eval_backend(backend, &rewrite, n, suite_seed, bound);
            prop_assert_eq!(
                &got,
                &reference,
                "{:?} diverges from Interp (bound {:?})",
                backend,
                bound
            );
        }
    }
}
