//! Property test for the decode-once execution backend: for random
//! programs (drawn from the MCMC proposal distribution, i.e. exactly the
//! population the search evaluates) and random machine states,
//! `PreparedProgram::run_prepared` produces an `Outcome` bit-identical to
//! the per-case interpreter `run_instrs` — same final state, same fault
//! counters — and the cached static latency matches the instruction sum.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stoke_suite::emu::{run_instrs, MachineState, PreparedProgram};
use stoke_suite::stoke::{Config, Proposer};
use stoke_suite::x86::{Flag, Gpr, Instruction, Xmm};

/// A random machine state: a random subset of registers and flags defined
/// (so the undefined-read counter is exercised), one small valid memory
/// region with random contents, and a stack pointer inside it.
fn random_state(seed: u64) -> MachineState {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = MachineState::new();
    for g in Gpr::ALL {
        if rng.gen_bool(0.7) {
            // Small values keep computed addresses near the valid region
            // often enough for sandboxed accesses to sometimes succeed.
            let value = if rng.gen_bool(0.5) {
                rng.gen::<u64>() & 0xffff
            } else {
                rng.gen::<u64>()
            };
            state.set_gpr64(g, value);
        }
    }
    for x in Xmm::ALL {
        if rng.gen_bool(0.3) {
            state.write_xmm(x, [rng.gen(), rng.gen()]);
        }
    }
    for f in Flag::ALL {
        if rng.gen_bool(0.5) {
            state.write_flag(f, rng.gen_bool(0.5));
        }
    }
    state.set_gpr64(Gpr::Rsp, 0x8000);
    state.memory.mark_valid(0x7000, 0x1010);
    let mut addr = 0x7000u64;
    while addr < 0x7040 {
        state.memory.poke_wide(addr, rng.gen::<u64>(), 8);
        addr += 8;
    }
    state
}

/// A random instruction sequence drawn from the proposal distribution
/// `q(·)` of §4.3 over the full opcode universe.
fn random_program(seed: u64, len: usize) -> Vec<Instruction> {
    let config = Config {
        ell: len,
        ..Config::default()
    };
    let mut proposer = Proposer::new(config, seed);
    (0..len).map(|_| proposer.random_instruction()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The prepared backend agrees with the interpreter on the final
    /// machine state, every fault counter, and the static latency.
    #[test]
    fn run_prepared_is_bit_identical_to_run_instrs(
        program_seed in any::<u64>(),
        state_seed in any::<u64>(),
        len in 1usize..24,
    ) {
        let instrs = random_program(program_seed, len);
        let state = random_state(state_seed);
        let prepared = PreparedProgram::new(&instrs);
        let a = prepared.run_prepared(&state);
        let b = run_instrs(&instrs, &state);
        prop_assert_eq!(a.state, b.state, "final machine states diverge");
        prop_assert_eq!(a.faults, b.faults, "fault counters diverge");
        prop_assert_eq!(
            prepared.static_latency(),
            instrs.iter().map(|i| u64::from(i.latency())).sum::<u64>(),
            "cached latency diverges from the instruction sum"
        );
    }

    /// Preparation is reusable: many runs from different states agree
    /// with fresh interpretation each time.
    #[test]
    fn one_prepare_many_runs(program_seed in any::<u64>(), base in any::<u64>()) {
        let instrs = random_program(program_seed, 12);
        let prepared = PreparedProgram::new(&instrs);
        for i in 0..4u64 {
            let state = random_state(base.wrapping_add(i));
            let a = prepared.run_prepared(&state);
            let b = run_instrs(&instrs, &state);
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.faults, b.faults);
        }
    }
}
