//! Cross-crate integration tests: compiled baselines agree with the IR
//! reference semantics under the emulator, the validator accepts the
//! paper's hand-written rewrites, and a small end-to-end STOKE run
//! improves an `llvm -O0`-style target.

use std::collections::BTreeMap;
use stoke_suite::emu::{run, MachineState};
use stoke_suite::ir::{evaluate, OptLevel};
use stoke_suite::stoke::{generate_testcases, Config, CostFn, InputSpec, Session, TargetSpec};
use stoke_suite::verify::Validator;
use stoke_suite::workloads::{all_kernels, hackers_delight, ParamKind};
use stoke_suite::x86::{flow::LocSet, Gpr, Program};

const PARAM_REGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

/// Run one compiled kernel on concrete inputs and compare the result (rax
/// and memory) against the IR interpreter.
fn check_kernel_level(kernel: &stoke_suite::workloads::Kernel, level: OptLevel, seed: u64) {
    let program = stoke_suite::ir::compile(&kernel.ir, level);
    let mut rng = seed;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..6 {
        let mut state = MachineState::new();
        state.set_gpr64(Gpr::Rsp, 0x8000);
        state.memory.mark_valid(0x7000, 0x1010);
        let mut params = Vec::new();
        let mut ref_memory: BTreeMap<u64, u8> = BTreeMap::new();
        let mut next_base = 0x1_0000u64;
        for (i, kind) in kernel.params.iter().enumerate() {
            match kind {
                ParamKind::Value32 => {
                    let v = next() & 0xffff_ffff;
                    state.set_gpr64(PARAM_REGS[i], v);
                    params.push(v);
                }
                ParamKind::Value64 => {
                    let v = next();
                    state.set_gpr64(PARAM_REGS[i], v);
                    params.push(v);
                }
                ParamKind::Pointer(len) => {
                    let base = next_base;
                    next_base += 0x1000;
                    state.set_gpr64(PARAM_REGS[i], base);
                    params.push(base);
                    for off in 0..*len {
                        let byte = (next() & 0x3f) as u8;
                        state.memory.poke(base + off, byte);
                        ref_memory.insert(base + off, byte);
                    }
                }
            }
        }
        let expected = evaluate(&kernel.ir, &params, &mut ref_memory);
        let out = run(&program, &state);
        assert!(
            out.faults.is_clean(),
            "{} at {:?} faulted: {:?}",
            kernel.name,
            level,
            out.faults
        );
        if kernel.ir.ret.is_some() {
            let mask = if kernel.params.iter().all(|p| *p == ParamKind::Value32) {
                0xffff_ffff
            } else {
                u64::MAX
            };
            assert_eq!(
                out.state.read_gpr64(Gpr::Rax) & mask,
                expected & mask,
                "{} at {:?} disagrees with the IR reference",
                kernel.name,
                level
            );
        }
        for (addr, byte) in &ref_memory {
            assert_eq!(
                out.state.memory.peek(*addr),
                *byte,
                "{} at {:?}: memory mismatch at {:#x}",
                kernel.name,
                level,
                addr
            );
        }
    }
}

#[test]
fn every_kernel_baseline_matches_the_reference_semantics() {
    for kernel in all_kernels() {
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            check_kernel_level(&kernel, level, 0xc0ffee ^ kernel.name.len() as u64);
        }
    }
}

// Regression test: the hand-transcribed Figure 1 codes must agree with
// 128-bit reference arithmetic under the emulator. The gcc -O3 stand-in
// used to double-count cross partial products of the 64×64→128
// decomposition, so it disagreed with both the STOKE rewrite and the
// truth on almost every input.
#[test]
fn montgomery_paper_codes_match_reference_arithmetic() {
    use stoke_suite::workloads::kernels::{MONT_GCC_O3, MONT_STOKE};
    let gcc: Program = MONT_GCC_O3.parse().unwrap();
    let stoke: Program = MONT_STOKE.parse().unwrap();
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..64 {
        let (np, mh, ml) = (next(), next() & 0xffff_ffff, next() & 0xffff_ffff);
        let (c0, c1) = (next(), next());
        let mut state = MachineState::new();
        state.set_gpr64(Gpr::Rsi, np);
        state.set_gpr64(Gpr::Rcx, mh);
        state.set_gpr64(Gpr::Rdx, ml);
        state.set_gpr64(Gpr::Rdi, c0);
        state.set_gpr64(Gpr::R8, c1);
        let truth = (np as u128) * (((mh as u128) << 32) | ml as u128) + c0 as u128 + c1 as u128;
        for (name, program) in [("gcc -O3", &gcc), ("STOKE", &stoke)] {
            let out = run(program, &state);
            assert!(out.faults.is_clean(), "{name} faulted");
            assert_eq!(
                out.state.read_gpr64(Gpr::Rdi),
                truth as u64,
                "{name}: low word (c0) disagrees with reference arithmetic"
            );
            assert_eq!(
                out.state.read_gpr64(Gpr::R8),
                (truth >> 64) as u64,
                "{name}: high word (c1) disagrees with reference arithmetic"
            );
        }
    }
}

#[test]
fn validator_accepts_p21_conditional_move_rewrite() {
    // Figure 13: the cmov rewrite is equivalent to the O3 baseline of the
    // bit-twiddling formulation.
    let p21 = hackers_delight::p21();
    let target = p21.baseline_o3();
    let rewrite: Program = hackers_delight::P21_STOKE.parse().unwrap();
    let validator = Validator::new(LocSet::from_gprs([Gpr::Rax]));
    // The kernel's output is a 32-bit value; compare through a final
    // 32-bit normalization appended to both programs so the upper halves
    // of rax agree.
    let normalize: Program = "mov eax, eax".parse().unwrap();
    let mut t = target.clone();
    t.extend(normalize.iter().cloned());
    let mut r = rewrite.clone();
    r.extend(normalize.iter().cloned());
    let (verdict, _) = validator.prove(&t, &r);
    assert!(verdict.is_equivalent(), "Figure 13 rewrite must verify");
}

#[test]
fn validator_catches_an_incorrect_p01_rewrite() {
    let p01 = hackers_delight::p01();
    let target = p01.baseline_o3();
    // x & (x+1) is not x & (x-1).
    let wrong: Program = "leal 1(rdi), eax\nandl edi, eax".parse().unwrap();
    let validator = Validator::new(LocSet::from_gprs([Gpr::Rax]));
    let (verdict, _) = validator.prove(&target, &wrong);
    assert!(!verdict.is_equivalent());
}

#[test]
fn stoke_improves_a_hackers_delight_o0_target() {
    // End-to-end: p01 compiled at -O0 (stack traffic everywhere) must be
    // improved by the optimization phase and stay correct.
    let kernel = hackers_delight::p01();
    let target = kernel.target_o0();
    let spec = TargetSpec::new(
        target.clone(),
        vec![InputSpec::value32(Gpr::Rdi)],
        kernel.live_out.clone(),
    );
    let config = Config::builder()
        .ell(20)
        .num_testcases(16)
        .synthesis_iterations(2_000)
        .optimization_iterations(400_000)
        .threads(1)
        .build()
        .expect("valid configuration");
    let result = Session::new(config.clone())
        .run(&spec)
        .expect("pipeline completes");
    // With a CI-sized proposal budget the search must never return
    // something slower than the target; with the larger budgets used by
    // the experiment harness it shortens the -O0 code substantially.
    assert!(
        result.rewrite_latency <= result.target_latency,
        "optimization must not make the -O0 code slower (H(T)={}, H(R)={})",
        result.target_latency,
        result.rewrite_latency
    );
    // The returned rewrite is correct on a fresh, larger test suite.
    let fresh = generate_testcases(&spec, 32, 0xf4e5_4321u64);
    let mut cf = CostFn::new(config, fresh, 0);
    let instrs: Vec<_> = result.rewrite.iter().cloned().collect();
    assert_eq!(cf.eq_prime(&instrs), 0);
}

#[test]
fn figure_10_baselines_have_the_expected_shape() {
    // The -O0 targets must be markedly slower than both optimizing
    // baselines under the timing model, for every kernel.
    let timing = stoke_suite::emu::TimingModel::default();
    for kernel in all_kernels() {
        let o0 = timing.cycles(&kernel.target_o0());
        let o2 = timing.cycles(&kernel.baseline_o2());
        let o3 = timing.cycles(&kernel.baseline_o3());
        assert!(
            o0 > o3,
            "{}: O0 ({}) should be slower than O3 ({})",
            kernel.name,
            o0,
            o3
        );
        assert!(
            o0 > o2,
            "{}: O0 ({}) should be slower than O2 ({})",
            kernel.name,
            o0,
            o2
        );
    }
}
