//! Third-party extensibility tests for the evaluation pipeline: a custom
//! `CostModel` and a custom `Verifier` implemented *outside* `stoke-core`
//! using only the public API, exercised through a full `Session` run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use stoke_suite::emu::PreparedProgram;
use stoke_suite::stoke::{
    Cascade, Config, ConfigError, CostModel, CostModelFactory, CostModelSpec, EvalContext,
    PaperCost, Session, TargetSpec, TestOnly, Verdict, Verification, Verifier, VerifyContext,
    VerifyStatus,
};
use stoke_suite::verify::Counterexample;
use stoke_suite::workloads::hackers_delight;
use stoke_suite::x86::{Gpr, Program};

fn p01_spec() -> TargetSpec {
    let kernel = hackers_delight::p01();
    TargetSpec::new(
        kernel.target_o0(),
        vec![stoke_suite::stoke::InputSpec::value32(Gpr::Rdi)],
        kernel.live_out.clone(),
    )
}

fn quick_config() -> Config {
    Config::builder()
        .ell(16)
        .num_testcases(8)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(1)
        .build()
        .expect("valid configuration")
}

/// A cost model double that counts every term evaluation while delegating
/// the arithmetic to the paper's metric.
struct CountingCost {
    correctness_calls: Arc<AtomicU64>,
    perf_calls: Arc<AtomicU64>,
}

impl CostModel for CountingCost {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64 {
        self.perf_calls.fetch_add(1, Ordering::Relaxed);
        PaperCost.perf_term(rewrite, ctx)
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        self.correctness_calls.fetch_add(1, Ordering::Relaxed);
        PaperCost.correctness_term(rewrite, bound, ctx)
    }
}

struct CountingFactory {
    correctness_calls: Arc<AtomicU64>,
    perf_calls: Arc<AtomicU64>,
}

impl CostModelFactory for CountingFactory {
    fn optimization_model(&self) -> Box<dyn CostModel> {
        Box::new(CountingCost {
            correctness_calls: self.correctness_calls.clone(),
            perf_calls: self.perf_calls.clone(),
        })
    }
}

#[test]
fn custom_cost_model_is_driven_by_the_whole_pipeline() {
    let correctness_calls = Arc::new(AtomicU64::new(0));
    let perf_calls = Arc::new(AtomicU64::new(0));
    let factory = Arc::new(CountingFactory {
        correctness_calls: correctness_calls.clone(),
        perf_calls: perf_calls.clone(),
    });
    let config = stoke_suite::stoke::ConfigBuilder::from_config(quick_config())
        .cost_model(CostModelSpec::Custom(factory))
        .build()
        .expect("valid configuration");
    let custom = Session::new(config).run(&p01_spec()).expect("run succeeds");

    // Every synthesis and optimization proposal scored through the double
    // (plus the two initial-rewrite scores).
    let evaluations = custom.stats.synthesis_proposals + custom.stats.optimization_proposals;
    assert!(
        correctness_calls.load(Ordering::Relaxed) > evaluations / 2,
        "the custom model was bypassed: {} correctness calls for {} proposals",
        correctness_calls.load(Ordering::Relaxed),
        evaluations
    );
    assert!(perf_calls.load(Ordering::Relaxed) > 0);

    // Delegating both terms to PaperCost makes the custom pipeline
    // bit-identical to the default one.
    let default = Session::new(quick_config())
        .run(&p01_spec())
        .expect("run succeeds");
    assert_eq!(custom.rewrite, default.rewrite);
    assert_eq!(custom.verification, default.verification);
}

#[test]
fn weighted_cost_model_weights_are_validated() {
    let err = Config::builder()
        .cost_model(CostModelSpec::Weighted {
            correctness: 1.0,
            performance: -2.0,
        })
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::InvalidCostWeight {
            field: "performance",
            ..
        }
    ));
    // A zero correctness weight would make every rewrite score as
    // "correct" and degenerate the search; it is rejected too.
    let err = Config::builder()
        .cost_model(CostModelSpec::Weighted {
            correctness: 0.0,
            performance: 1.0,
        })
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::InvalidCostWeight {
            field: "correctness",
            ..
        }
    ));
    assert!(Config::builder()
        .cost_model(CostModelSpec::Weighted {
            correctness: 2.0,
            performance: 0.5,
        })
        .build()
        .is_ok());
}

/// A verifier double that injects a fabricated counterexample through the
/// feedback loop and records the suite growth it observes.
#[derive(Default)]
struct InjectingVerifier {
    /// (suite length before, suite length after, injected rdi value,
    /// rdi value of the appended test case) per call.
    observations: Mutex<Vec<(usize, usize, u64, u64)>>,
}

impl Verifier for InjectingVerifier {
    fn name(&self) -> &'static str {
        "injecting"
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        if !ctx.passes_testcases(candidate) {
            return Verdict::refuted();
        }
        let before = ctx.suite.len();
        let mut cex = Counterexample::default();
        let injected = 0xdead_beef_u64 & 0xffff_ffff;
        cex.gprs[Gpr::Rdi.index()] = injected;
        ctx.suite.add_counterexample(ctx.spec, &cex);
        ctx.stats.counterexamples += 1;
        let appended = ctx
            .suite
            .cases
            .last()
            .expect("the suite cannot be empty after an injection")
            .input
            .read_gpr64(Gpr::Rdi);
        self.observations
            .lock()
            .unwrap()
            .push((before, ctx.suite.len(), injected, appended));
        // The fabricated input is consistent with a correct candidate, so
        // accept on tests (never claim a proof).
        if ctx.passes_testcases(candidate) {
            Verdict::tests_passed()
        } else {
            Verdict::refuted_with(vec![cex])
        }
    }
}

#[test]
fn verifier_double_feeds_fabricated_counterexamples_into_the_suite() {
    let verifier = Arc::new(InjectingVerifier::default());
    let session = Session::new(quick_config()).with_verifier(verifier.clone());
    let result = session.run(&p01_spec()).expect("run succeeds");

    let observations = verifier.observations.lock().unwrap();
    assert!(
        !observations.is_empty(),
        "at least one candidate must reach the verifier"
    );
    for (before, after, injected, appended) in observations.iter() {
        assert_eq!(
            *after,
            before + 1,
            "the fabricated counterexample must land in the suite"
        );
        assert_eq!(
            appended, injected,
            "the appended test case must carry the injected input"
        );
    }
    // The injections are visible in the search statistics, and a
    // tests-only verifier can never produce a Proven result.
    assert_eq!(
        result.stats.counterexamples,
        observations.len() as u64,
        "every injection must be counted"
    );
    assert_ne!(result.verification, Verification::Proven);
}

/// A verifier double recording whether (and on which suite size) it was
/// invoked, with a scripted verdict.
struct RecordingVerifier {
    calls: Mutex<Vec<usize>>,
    verdict: fn() -> Verdict,
}

impl Verifier for RecordingVerifier {
    fn verify(&self, _candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        self.calls.lock().unwrap().push(ctx.suite.len());
        (self.verdict)()
    }
}

#[test]
fn cascade_orders_tests_before_the_inner_verifier() {
    let spec = p01_spec();
    let config = quick_config();
    let mut suite = stoke_suite::stoke::generate_testcases(&spec, 8, 3);
    let mut stats = stoke_suite::stoke::SearchStats::default();
    let observer = stoke_suite::stoke::NullObserver;

    let inner = RecordingVerifier {
        calls: Mutex::new(Vec::new()),
        verdict: Verdict::proven,
    };
    let cascade = Cascade::new(&inner);

    // A candidate failing the test suite never reaches the inner verifier.
    let wrong: Program = "movl 7, eax".parse().unwrap();
    let mut ctx = VerifyContext {
        spec: &spec,
        suite: &mut suite,
        config: &config,
        stats: &mut stats,
        observer: &observer,
        target: 0,
    };
    assert_eq!(
        cascade.verify(&wrong, &mut ctx).status,
        VerifyStatus::Refuted
    );
    assert!(
        inner.calls.lock().unwrap().is_empty(),
        "tests must run before (and gate) the inner verifier"
    );

    // A candidate passing the tests reaches the inner verifier, whose
    // verdict is adopted.
    let right = spec.program.clone();
    let mut ctx = VerifyContext {
        spec: &spec,
        suite: &mut suite,
        config: &config,
        stats: &mut stats,
        observer: &observer,
        target: 0,
    };
    assert_eq!(
        cascade.verify(&right, &mut ctx).status,
        VerifyStatus::Proven
    );
    assert_eq!(inner.calls.lock().unwrap().len(), 1);

    // An inner refutation whose counterexample does not actually
    // distinguish the programs (a spurious artifact) is downgraded to
    // TestsPassed by the re-test on the refined suite.
    let spurious = RecordingVerifier {
        calls: Mutex::new(Vec::new()),
        verdict: || Verdict::refuted_with(vec![Counterexample::default()]),
    };
    let cascade = Cascade::new(&spurious);
    let mut ctx = VerifyContext {
        spec: &spec,
        suite: &mut suite,
        config: &config,
        stats: &mut stats,
        observer: &observer,
        target: 0,
    };
    assert_eq!(
        cascade.verify(&right, &mut ctx).status,
        VerifyStatus::TestsPassed
    );
}

#[test]
fn test_only_sessions_never_claim_proofs() {
    let session = Session::new(quick_config()).with_verifier(Arc::new(TestOnly));
    let result = session.run(&p01_spec()).expect("run succeeds");
    assert!(
        matches!(
            result.verification,
            Verification::TestsOnly | Verification::TargetReturned
        ),
        "unexpected verification under TestOnly: {:?}",
        result.verification
    );
    assert_eq!(result.stats.validations, 0);
}
