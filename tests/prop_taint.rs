//! Property test for the constant-time analyses: the *static* taint
//! analysis of `stoke-analysis` must over-approximate every *dynamic*
//! secret flow observed by the emulator's shadow propagation
//! (`stoke_emu::run_tainted`) — on random programs drawn from the MCMC
//! proposal distribution, random machine states, and random secret sets.
//! A dynamic flow the static analysis misses would let a leaky rewrite
//! through the constant-time cost penalty and the leakage verifier.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stoke_suite::analysis::taint_analysis;
use stoke_suite::emu::{run_tainted, MachineState};
use stoke_suite::stoke::{Config, Proposer};
use stoke_suite::x86::flow::LocSet;
use stoke_suite::x86::{Flag, Gpr, Instruction, Xmm};

/// A random machine state: a random subset of registers and flags
/// defined, one small valid memory region with random contents, and a
/// stack pointer inside it (mirrors the backend property tests).
fn random_state(seed: u64) -> MachineState {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = MachineState::new();
    for g in Gpr::ALL {
        if rng.gen_bool(0.7) {
            let value = if rng.gen_bool(0.5) {
                rng.gen::<u64>() & 0xffff
            } else {
                rng.gen::<u64>()
            };
            state.set_gpr64(g, value);
        }
    }
    for x in Xmm::ALL {
        if rng.gen_bool(0.3) {
            state.write_xmm(x, [rng.gen(), rng.gen()]);
        }
    }
    for f in Flag::ALL {
        if rng.gen_bool(0.5) {
            state.write_flag(f, rng.gen_bool(0.5));
        }
    }
    state.set_gpr64(Gpr::Rsp, 0x8000);
    state.memory.mark_valid(0x7000, 0x1010);
    let mut addr = 0x7000u64;
    while addr < 0x7040 {
        state.memory.poke_wide(addr, rng.gen::<u64>(), 8);
        addr += 8;
    }
    state
}

/// A random instruction sequence drawn from the proposal distribution
/// `q(·)` over the full opcode universe — exactly the population the
/// search (and hence the analyses) evaluate.
fn random_program(seed: u64, len: usize) -> Vec<Instruction> {
    let config = Config {
        ell: len,
        ..Config::default()
    };
    let mut proposer = Proposer::new(config, seed);
    (0..len).map(|_| proposer.random_instruction()).collect()
}

/// A random set of secret entry registers (possibly empty).
fn random_secrets(seed: u64) -> LocSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef_cafe);
    LocSet::from_gprs(Gpr::ALL.into_iter().filter(|_| rng.gen_bool(0.25)))
}

proptest! {
    /// Soundness of the static analysis with respect to the dynamic
    /// oracle: every location the shadow execution ends with tainted is
    /// tainted in the static exit fact, and any tainted memory byte
    /// implies the static (single-bit) memory taint.
    #[test]
    fn static_taint_over_approximates_dynamic_flows(
        program_seed in any::<u64>(),
        state_seed in any::<u64>(),
        secret_seed in any::<u64>(),
        len in 1usize..10,
    ) {
        let instrs = random_program(program_seed, len);
        let input = random_state(state_seed);
        let secrets = random_secrets(secret_seed);
        let (_, dynamic) = run_tainted(&instrs, &input, &secrets);
        let refs: Vec<&Instruction> = instrs.iter().collect();
        let annotations = taint_analysis(&refs, &secrets);
        let exit = annotations.exit();
        let observed = dynamic.tainted_locs();
        for g in &observed.gprs {
            prop_assert!(
                exit.locs.gprs.contains(g),
                "dynamic taint on {g:?} missed by the static analysis"
            );
        }
        for x in &observed.xmms {
            prop_assert!(
                exit.locs.xmms.contains(x),
                "dynamic taint on {x:?} missed by the static analysis"
            );
        }
        for f in &observed.flags {
            prop_assert!(
                exit.locs.flags.contains(f),
                "dynamic taint on flag {f:?} missed by the static analysis"
            );
        }
        if !dynamic.mem().is_empty() {
            prop_assert!(
                exit.mem,
                "dynamically tainted memory bytes missed by the static analysis"
            );
        }
    }

    /// With no secrets, nothing is ever tainted — either way.
    #[test]
    fn no_secrets_no_taint(
        program_seed in any::<u64>(),
        state_seed in any::<u64>(),
        len in 1usize..10,
    ) {
        let instrs = random_program(program_seed, len);
        let input = random_state(state_seed);
        let secrets = LocSet::new();
        let (_, dynamic) = run_tainted(&instrs, &input, &secrets);
        prop_assert!(dynamic.tainted_locs().is_empty());
        prop_assert!(dynamic.mem().is_empty());
        let refs: Vec<&Instruction> = instrs.iter().collect();
        let exit = taint_analysis(&refs, &secrets).exit().clone();
        prop_assert!(exit.locs.is_empty());
        prop_assert!(!exit.mem);
    }
}
