//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` 0.8 APIs the STOKE reproduction actually uses are
//! reimplemented here: [`rngs::StdRng`] (a xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods `gen`,
//! `gen_bool` and `gen_range`, and [`seq::SliceRandom::choose`].
//!
//! The generator is deterministic for a fixed seed, which the search layer
//! relies on for reproducible MCMC chains.

pub mod rngs;
pub mod seq;

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open or unbounded range that can be sampled uniformly. The
/// element type is a trait parameter (mirroring `rand`) so that integer
/// literals in ranges are inferred from the call site's expected type.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Two's-complement wrapping subtraction reinterpreted as u64
                // yields the true span for every non-empty range.
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, i8, i16, i32, usize, u64, i64);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
