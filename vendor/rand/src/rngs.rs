//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Statistically strong and extremely fast; not cryptographically secure,
/// exactly like the upstream `StdRng` contract for this workspace's use
/// (MCMC proposals and test-case generation).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-64i32..64);
            assert!((-64..64).contains(&v));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
