//! Sequence-related helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Extension trait for choosing random slice elements.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Uniformly choose one element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
