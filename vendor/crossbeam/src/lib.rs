//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, implementing the one API this workspace uses —
//! [`thread::scope`] — on top of `std::thread::scope` (stable since Rust
//! 1.63, which post-dates crossbeam's scoped threads).
//!
//! The build environment has no access to crates.io, so rather than gating
//! the parallel-search paths behind a feature, the workspace vendors this
//! thin adapter with crossbeam's `Result`-returning signature.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// A scope in which threads borrowing local state can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a reference to the
        /// scope (crossbeam's nested-spawn convention); this stand-in
        /// supports the common `|_| ...` form.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the enclosing
    /// stack frame. Mirrors `crossbeam::thread::scope`: the `Result` is
    /// `Ok` unless a spawned thread panicked without being joined (std
    /// propagates such panics, so in practice this returns `Ok`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("crossbeam scope");
        assert_eq!(total, 100);
    }
}
