//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking harness.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a simple
//! wall-clock harness: each benchmark runs a short warm-up followed by
//! `sample_size` timed samples and prints the per-iteration mean and
//! min/max. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls. All variants behave
/// identically here: setup runs once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times a single benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Time `routine`, called once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<55} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<55} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
        samples.len()
    );
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    report(name, &bencher.samples);
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Criterion
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a benchmark group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
