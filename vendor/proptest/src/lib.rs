//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the API surface the workspace's property suites use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter`, [`Just`], integer
//! ranges and tuples as strategies, [`any`], [`collection::vec`], the
//! [`prop_oneof!`] / [`proptest!`] / `prop_assert*` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted for an offline CI:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assertion message; generation is deterministic (seeded
//!   from the test name), so failures reproduce exactly.
//! * **Case counts** honour the `PROPTEST_CASES` environment variable as
//!   an override of the per-suite `ProptestConfig`, which CI uses to keep
//!   property suites fast.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod collection;

/// Items used by `use proptest::prelude::*` in test files.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Resolve the effective case count: the `PROPTEST_CASES` environment
/// variable overrides the configured value (used by CI to bound runtime).
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(configured)
}

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name so each property gets an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (which must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy simply samples.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Reject values failing `f`, resampling up to an internal retry
    /// limit. `whence` labels the filter in the panic message when the
    /// filter never passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the alternatives.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }

    /// Box one alternative (helper for `prop_oneof!` type unification).
    pub fn arm<S>(strategy: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full value space of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i64).wrapping_sub(self.start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, i8, i16, i32, usize, u64, i64);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($strategy)),+])
    };
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each function runs its body for many sampled
/// inputs. Supports the upstream `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::resolve_cases(config.cases);
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..cases {
                    let ($($arg,)+) = (
                        $($crate::Strategy::sample(&($strategy), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -64i32..64, y in 1u64.., z in 0..10usize) {
            prop_assert!((-64..64).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!(z < 10);
        }

        #[test]
        fn oneof_maps_and_filters(v in prop_oneof![
            (0u32..100).prop_map(|x| x * 2).prop_filter("nonzero", |x| *x != 0),
            Just(7u32),
        ]) {
            prop_assert!(v == 7 || (v % 2 == 0 && v != 0 && v < 200));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u8..255, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }
    }
}
