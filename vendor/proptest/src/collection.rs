//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range (see [`vec()`]).
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors whose length lies in `size`, with elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot sample empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
