//! Facade crate re-exporting the whole STOKE reproduction workspace.
pub use stoke;
pub use stoke_analysis as analysis;
pub use stoke_emu as emu;
pub use stoke_ir as ir;
pub use stoke_obs as obs;
pub use stoke_serve as serve;
pub use stoke_solver as solver;
pub use stoke_verify as verify;
pub use stoke_workloads as workloads;
pub use stoke_x86 as x86;
