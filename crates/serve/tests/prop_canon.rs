//! Property tests for the canonical cache key: invariance under register
//! alpha-renaming and input reordering, no aliasing between distinct
//! canonical programs, and persistence round trips over random entries.

use proptest::prelude::*;
use stoke::{Config, InputSpec, Proposer, TargetSpec, Verification};
use stoke_serve::{CacheConfig, CacheKey, PipelineFingerprint, RewriteCache};
use stoke_x86::canon::{canonicalize, normalize_immediates, pinned_registers, Renaming};
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program};

fn fingerprint() -> PipelineFingerprint {
    PipelineFingerprint::new(&Config::default(), "cascade")
}

/// A random program drawn from the full proposal distribution (so it can
/// contain implicit-operand opcodes like `mulq`, memory operands, every
/// immediate in the pool, ...).
fn random_program(seed: u64, len: usize) -> Program {
    let config = Config {
        ell: len,
        ..Config::default()
    };
    let mut proposer = Proposer::new(config, seed);
    (0..len).map(|_| proposer.random_instruction()).collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniformly random register permutation that fixes every pinned
/// register — exactly the symmetry group the canonical key must be
/// invariant under.
fn permutation_fixing(pinned: &[bool; 16], seed: u64) -> Renaming {
    let free: Vec<usize> = (0..16).filter(|&i| !pinned[i]).collect();
    let mut images = free.clone();
    let mut state = seed;
    for i in (1..images.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        images.swap(i, j);
    }
    let mut map = Gpr::ALL;
    for (slot, img) in free.iter().zip(&images) {
        map[*slot] = Gpr::from_index(*img);
    }
    Renaming::from_map(map).unwrap()
}

/// `spec` with the permutation applied to the program, the inputs, and
/// the live-out set — the same submission through different registers.
fn rename_spec(spec: &TargetSpec, pi: &Renaming) -> TargetSpec {
    let inputs: Vec<InputSpec> = spec
        .inputs
        .iter()
        .map(|input| InputSpec {
            reg: pi.apply_gpr(input.reg),
            kind: input.kind.clone(),
            secret: input.secret,
        })
        .collect();
    let outputs = spec.live_out.gprs.iter().map(|g| pi.apply_gpr(*g));
    TargetSpec::new(
        pi.apply_program(&spec.program),
        inputs,
        LocSet::from_gprs(outputs),
    )
}

fn spec_for(program: Program) -> TargetSpec {
    TargetSpec::new(
        program,
        vec![InputSpec::value64(Gpr::Rdi), InputSpec::value32(Gpr::Rsi)],
        LocSet::from_gprs([Gpr::Rax]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The acceptance-critical invariance: renaming every register of a
    /// submission by any permutation that fixes the program's pinned
    /// registers leaves the cache key byte-identical.
    #[test]
    fn key_is_invariant_under_register_renaming(
        program_seed in any::<u64>(),
        perm_seed in any::<u64>(),
        len in 1usize..10,
    ) {
        let spec = spec_for(random_program(program_seed, len));
        let pi = permutation_fixing(&pinned_registers(&spec.program), perm_seed);
        let renamed = rename_spec(&spec, &pi);
        let key = CacheKey::for_spec(&spec, fingerprint());
        let renamed_key = CacheKey::for_spec(&renamed, fingerprint());
        prop_assert_eq!(key.text(), renamed_key.text());
        // And the recorded renamings let both submitters round-trip a
        // canonical rewrite into their own register space: mapping the
        // canonical program back must recover each normalized original.
        let canon: Program = key.program_lines().join("\n").parse().unwrap();
        prop_assert_eq!(
            key.renaming().inverse().apply_program(&canon).to_string(),
            normalize_immediates(&spec.program).to_string()
        );
        prop_assert_eq!(
            renamed_key.renaming().inverse().apply_program(&canon).to_string(),
            normalize_immediates(&renamed.program).to_string()
        );
    }

    /// Reordering the submitted input list is immaterial: the key sorts
    /// interface lines canonically.
    #[test]
    fn key_is_invariant_under_input_reordering(
        program_seed in any::<u64>(),
        len in 1usize..8,
        rotation in 0usize..4,
    ) {
        let program = random_program(program_seed, len);
        let mut inputs = vec![
            InputSpec::value64(Gpr::Rdi),
            InputSpec::value64(Gpr::Rsi),
            InputSpec::value32(Gpr::Rcx),
            InputSpec::pointer(Gpr::R8, 64),
        ];
        let live_out = LocSet::from_gprs([Gpr::Rax]);
        let spec = TargetSpec::new(program.clone(), inputs.clone(), live_out.clone());
        inputs.rotate_left(rotation);
        let rotated = TargetSpec::new(program, inputs, live_out);
        prop_assert_eq!(
            CacheKey::for_spec(&spec, fingerprint()).text(),
            CacheKey::for_spec(&rotated, fingerprint()).text()
        );
    }

    /// Keys alias exactly when the canonical programs are byte-identical:
    /// two submissions share an entry only if they are literally the same
    /// search problem up to renaming, so semantically different programs
    /// (distinct canonical forms) can never collide.
    #[test]
    fn distinct_canonical_programs_never_collide(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        len in 2usize..10,
    ) {
        let a = spec_for(random_program(seed_a, len));
        let b = spec_for(random_program(seed_b.wrapping_add(1), len));
        let key_a = CacheKey::for_spec(&a, fingerprint());
        let key_b = CacheKey::for_spec(&b, fingerprint());
        // interface_tail for this fixed interface is [rdi, rsi, rax].
        let tail = [Gpr::Rdi, Gpr::Rsi, Gpr::Rax];
        let canon_a = canonicalize(&a.program, &tail).0.to_string();
        let canon_b = canonicalize(&b.program, &tail).0.to_string();
        prop_assert_eq!(key_a.text() == key_b.text(), canon_a == canon_b);
    }

    /// Saving and re-loading a cache full of random entries preserves
    /// every entry bit-for-bit.
    #[test]
    fn persistence_round_trips_random_entries(
        seed in any::<u64>(),
        count in 1usize..4,
        len in 1usize..8,
    ) {
        let mut cache = RewriteCache::new(CacheConfig::default());
        let mut keys = Vec::new();
        for i in 0..count {
            let program = random_program(seed.wrapping_add(i as u64), len);
            let spec = spec_for(program.clone());
            let key = CacheKey::for_spec(&spec, fingerprint());
            // A target is always admissible as its own rewrite: it pins
            // exactly the registers the key already pins.
            prop_assert!(cache.insert(&key, &program, Verification::TestsOnly));
            keys.push((key, program));
        }
        let path = std::env::temp_dir().join(format!(
            "stoke-serve-prop-roundtrip-{}.cache",
            std::process::id()
        ));
        cache.save(&path).unwrap();
        let mut loaded = RewriteCache::load(&path, CacheConfig::default()).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(loaded.len(), cache.len());
        for (key, program) in &keys {
            let hit = loaded.lookup(key).expect("entry survives the round trip");
            prop_assert_eq!(
                hit.rewrite.to_string(),
                key.canonical_rewrite(program).to_string()
            );
            prop_assert_eq!(hit.verification, Verification::TestsOnly);
        }
    }

    /// Immediate normalization is idempotent and register renaming is
    /// invertible — the two rewrite transformations the cache applies.
    #[test]
    fn normalization_is_idempotent_and_renaming_invertible(
        program_seed in any::<u64>(),
        perm_seed in any::<u64>(),
        len in 1usize..10,
    ) {
        let program = random_program(program_seed, len);
        let once = normalize_immediates(&program);
        prop_assert_eq!(normalize_immediates(&once).to_string(), once.to_string());
        let pi = permutation_fixing(&[false; 16], perm_seed);
        prop_assert_eq!(
            pi.inverse().apply_program(&pi.apply_program(&program)).to_string(),
            program.to_string()
        );
    }
}
