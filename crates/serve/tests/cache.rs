//! RewriteCache behaviour: LRU eviction, TTL expiry, near-miss scans,
//! the implicit-register soundness gate, and the strict persistence
//! format (round trip and every rejection path).

use std::path::PathBuf;
use std::time::Duration;
use stoke::{Config, TargetSpec, Verification};
use stoke_serve::{CacheConfig, CacheKey, PersistError, PipelineFingerprint, RewriteCache};
use stoke_x86::{Gpr, Program};

fn fingerprint() -> PipelineFingerprint {
    PipelineFingerprint::new(&Config::default(), "cascade")
}

/// A key for `rax = <program>(rax)` — distinct programs, distinct keys.
fn key_for(program: &str) -> CacheKey {
    let spec = TargetSpec::with_gprs(program.parse().unwrap(), &[Gpr::Rax], &[Gpr::Rax]);
    CacheKey::for_spec(&spec, fingerprint())
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stoke-serve-{}-{name}", std::process::id()))
}

#[test]
fn lru_evicts_the_least_recently_used_entry() {
    let mut cache = RewriteCache::new(CacheConfig {
        capacity: 2,
        ttl: None,
    });
    let (k1, k2, k3) = (
        key_for("addq 1, rax"),
        key_for("addq 2, rax"),
        key_for("addq 3, rax"),
    );
    let rewrite: Program = "addq 1, rax".parse().unwrap();
    assert!(cache.insert(&k1, &rewrite, Verification::TestsOnly));
    assert!(cache.insert(&k2, &rewrite, Verification::TestsOnly));
    // Touch k1 so k2 becomes the least recently used entry.
    assert!(cache.lookup(&k1).is_some());
    assert!(cache.insert(&k3, &rewrite, Verification::TestsOnly));
    assert_eq!(cache.len(), 2);
    assert!(cache.lookup(&k2).is_none(), "k2 should have been evicted");
    assert!(cache.lookup(&k1).is_some());
    assert!(cache.lookup(&k3).is_some());
    assert_eq!(cache.stats().evictions, 1);
}

#[test]
fn ttl_expires_entries_at_lookup() {
    let mut cache = RewriteCache::new(CacheConfig {
        capacity: 16,
        ttl: Some(Duration::from_millis(30)),
    });
    let key = key_for("addq 1, rax");
    let rewrite: Program = "addq 1, rax".parse().unwrap();
    assert!(cache.insert(&key, &rewrite, Verification::Proven));
    assert!(cache.lookup(&key).is_some());
    std::thread::sleep(Duration::from_millis(40));
    assert!(cache.lookup(&key).is_none());
    assert_eq!(cache.len(), 0);
    assert_eq!(cache.stats().expirations, 1);
    // And nearest() also ignores expired entries.
    assert!(cache.nearest(&key, 4).is_none());
}

#[test]
fn nearest_requires_matching_interface_and_bounded_distance() {
    let mut cache = RewriteCache::new(CacheConfig::default());
    let cached = key_for("addq 1, rax\naddq 2, rax");
    let rewrite: Program = "addq 3, rax".parse().unwrap();
    assert!(cache.insert(&cached, &rewrite, Verification::TestsOnly));

    // One instruction away: found at distance 1.
    let near = key_for("addq 1, rax\naddq 2, rax\naddq 4, rax");
    let (hit, distance) = cache.nearest(&near, 2).expect("near miss");
    assert_eq!(distance, 1);
    assert_eq!(hit.rewrite.to_string().trim(), rewrite.to_string().trim());

    // Too far for the cap.
    let far = key_for("subq 9, rax\nsubq 8, rax\nsubq 7, rax\nsubq 6, rax");
    assert!(cache.nearest(&far, 2).is_none());

    // Same program body, different interface (extra live-out): no match.
    let spec = TargetSpec::with_gprs(
        "addq 1, rax\naddq 2, rax".parse().unwrap(),
        &[Gpr::Rax],
        &[Gpr::Rax, Gpr::Rdx],
    );
    let other_iface = CacheKey::for_spec(&spec, fingerprint());
    assert!(cache.nearest(&other_iface, 2).is_none());
}

#[test]
fn insert_rejects_rewrites_with_unpinned_implicit_registers() {
    let mut cache = RewriteCache::new(CacheConfig::default());
    // Target pins nothing beyond rsp; a mulq rewrite implicitly reads and
    // writes rax/rdx, which a different submitter's renaming could move.
    let key = key_for("addq rax, rax");
    let mul_rewrite: Program = "mulq rax".parse().unwrap();
    assert!(!key.admits_rewrite(&mul_rewrite));
    assert!(!cache.insert(&key, &mul_rewrite, Verification::Proven));
    assert_eq!(cache.len(), 0);

    // A target that itself uses mulq pins rax/rdx, so the same rewrite is
    // admissible under *its* key.
    let spec = TargetSpec::with_gprs(
        "mulq rax\nmovq rdx, rax".parse().unwrap(),
        &[Gpr::Rax],
        &[Gpr::Rax],
    );
    let mul_key = CacheKey::for_spec(&spec, fingerprint());
    assert!(mul_key.admits_rewrite(&mul_rewrite));
    assert!(cache.insert(&mul_key, &mul_rewrite, Verification::Proven));
    assert_eq!(cache.len(), 1);
}

#[test]
fn save_load_round_trips_entries_and_verification_levels() {
    let path = temp_path("roundtrip.cache");
    let mut cache = RewriteCache::new(CacheConfig::default());
    let k1 = key_for("addq 1, rax");
    let k2 = key_for("addq 2, rax\nsubq 1, rax");
    let r1: Program = "addq 1, rax".parse().unwrap();
    let r2: Program = "addq 1, rax\nxorq rdx, rdx".parse().unwrap();
    assert!(cache.insert(&k1, &r1, Verification::Proven));
    assert!(cache.insert(&k2, &r2, Verification::TestsOnly));
    cache.save(&path).unwrap();

    let mut loaded = RewriteCache::load(&path, CacheConfig::default()).unwrap();
    assert_eq!(loaded.len(), 2);
    let h1 = loaded.lookup(&k1).expect("k1 survives the round trip");
    assert_eq!(h1.verification, Verification::Proven);
    assert_eq!(h1.rewrite.to_string(), r1.to_string());
    let h2 = loaded.lookup(&k2).expect("k2 survives the round trip");
    assert_eq!(h2.verification, Verification::TestsOnly);
    // Near-miss scans work on loaded entries too (iface/body were
    // reconstructed from the persisted key).
    let near = key_for("addq 2, rax\nsubq 1, rax\nsubq 0, rax");
    assert_eq!(loaded.nearest(&near, 2).expect("near miss").1, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_drops_entries_whose_ttl_passed() {
    let path = temp_path("ttl-load.cache");
    let mut cache = RewriteCache::new(CacheConfig::default());
    let key = key_for("addq 1, rax");
    let rewrite: Program = "addq 1, rax".parse().unwrap();
    assert!(cache.insert(&key, &rewrite, Verification::Proven));
    cache.save(&path).unwrap();

    // Rewind the persisted timestamp to the epoch, then load with a TTL:
    // the record parses (it still counts against the end marker) but the
    // entry is dropped as expired.
    let text = std::fs::read_to_string(&path).unwrap();
    let aged: String = text
        .lines()
        .map(|line| {
            if let Some(rest) = line.strip_prefix("entry\t") {
                let (_, tail) = rest.split_once('\t').unwrap();
                format!("entry\t1\t{tail}\n")
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    std::fs::write(&path, aged).unwrap();

    let config = CacheConfig {
        capacity: 16,
        ttl: Some(Duration::from_secs(3600)),
    };
    let loaded = RewriteCache::load(&path, config).unwrap();
    assert_eq!(loaded.len(), 0);
    assert_eq!(loaded.stats().expirations, 1);
    let _ = std::fs::remove_file(&path);
}

/// Every corruption the strict loader must reject, with the typed error
/// it must reject it with.
#[test]
fn load_rejects_corrupt_files() {
    let path = temp_path("corrupt.cache");
    let save = |text: &str| std::fs::write(&path, text).unwrap();
    let load = |path: &PathBuf| RewriteCache::load(path, CacheConfig::default());

    save("not a cache at all\n");
    assert!(matches!(load(&path), Err(PersistError::BadHeader { .. })));

    save("");
    assert!(matches!(load(&path), Err(PersistError::BadHeader { .. })));

    // Missing end marker (truncated mid-write).
    save("stoke-rewrite-cache v1\n");
    assert!(matches!(load(&path), Err(PersistError::Truncated { .. })));

    // End count disagrees with the records present.
    save("stoke-rewrite-cache v1\nend\t3\n");
    assert!(matches!(
        load(&path),
        Err(PersistError::Truncated {
            declared: 3,
            found: 0
        })
    ));

    // Unknown record type.
    save("stoke-rewrite-cache v1\nbogus\tline\nend\t0\n");
    assert!(matches!(
        load(&path),
        Err(PersistError::BadRecord { line: 2, .. })
    ));

    // Entry with the wrong number of fields.
    save("stoke-rewrite-cache v1\nentry\t1\t2\nend\t1\n");
    assert!(matches!(
        load(&path),
        Err(PersistError::BadRecord { line: 2, .. })
    ));

    // Data after the end marker.
    save("stoke-rewrite-cache v1\nend\t0\nentry\t1\t2\tproven\tk\tr\n");
    assert!(matches!(
        load(&path),
        Err(PersistError::BadRecord { line: 3, .. })
    ));

    // Build one valid record, then corrupt it field by field.
    let mut cache = RewriteCache::new(CacheConfig::default());
    let key = key_for("addq 1, rax");
    let rewrite: Program = "addq 1, rax".parse().unwrap();
    assert!(cache.insert(&key, &rewrite, Verification::Proven));
    cache.save(&path).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();
    assert!(RewriteCache::load(&path, CacheConfig::default()).is_ok());

    // Corrupt the one valid record field by field.
    let fields: Vec<&str> = good.lines().nth(1).unwrap().split('\t').collect();
    assert_eq!(fields.len(), 6, "sanity: entry has six fields");
    let rebuild = |f: &[&str]| format!("stoke-rewrite-cache v1\n{}\nend\t1\n", f.join("\t"));

    // Unparseable timestamp.
    let mut f = fields.clone();
    f[1] = "never";
    save(&rebuild(&f));
    assert!(matches!(load(&path), Err(PersistError::BadRecord { .. })));

    // Unknown verification tag.
    let mut f = fields.clone();
    f[3] = "pinky-swear";
    save(&rebuild(&f));
    assert!(matches!(load(&path), Err(PersistError::BadRecord { .. })));

    // Broken escape sequence in the key field.
    let broken_key = format!("{}\\x", fields[4]);
    let mut f = fields.clone();
    f[4] = &broken_key;
    save(&rebuild(&f));
    assert!(matches!(load(&path), Err(PersistError::BadRecord { .. })));

    // Cached rewrite that does not parse as a program.
    let mut f = fields.clone();
    f[5] = "this is not a program";
    save(&rebuild(&f));
    let err = load(&path);
    assert!(
        matches!(err, Err(PersistError::BadRecord { .. })),
        "unparseable rewrite must be rejected, got {err:?}"
    );

    let _ = std::fs::remove_file(&path);
}
