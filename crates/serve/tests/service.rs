//! End-to-end service tests: cache-hit serving after register renaming
//! (the acceptance-critical zero-proposal resubmission), warm starts from
//! near-miss entries, cancellation, budgets, events, and persistence
//! across service restarts.

use std::sync::mpsc::RecvTimeoutError;
use std::time::{Duration, Instant};
use stoke::{generate_testcases, Budget, Config, CostFn, StokeError, TargetSpec};
use stoke_serve::{Disposition, JobEvent, JobStatus, ServeConfig, ServeError, Service};
use stoke_x86::canon::Renaming;
use stoke_x86::{Gpr, Program};

fn quick_config() -> Config {
    Config {
        ell: 8,
        num_testcases: 8,
        synthesis_iterations: 5_000,
        optimization_iterations: 20_000,
        threads: 1,
        ..Config::default()
    }
}

/// The clumsy `rax = rdi + rsi` target used throughout the driver tests.
fn clumsy_add() -> TargetSpec {
    let program: Program = "
        movq rdi, rbx
        movq rbx, rcx
        movq rcx, rax
        addq rsi, rax
        movq rax, rbx
        movq rbx, rax
    "
    .parse()
    .unwrap();
    TargetSpec::with_gprs(program, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
}

/// A register permutation moving every register `clumsy_add` touches
/// (none of them pinned — the program has no implicit-operand opcodes).
fn shuffle() -> Renaming {
    let mut map = Gpr::ALL;
    let mut swap = |a: Gpr, b: Gpr| map.swap(a.index(), b.index());
    swap(Gpr::Rdi, Gpr::R9);
    swap(Gpr::Rsi, Gpr::R10);
    swap(Gpr::Rax, Gpr::R12);
    swap(Gpr::Rbx, Gpr::R13);
    swap(Gpr::Rcx, Gpr::R14);
    Renaming::from_map(map).unwrap()
}

/// `spec` with every register (program, inputs, live-outs) renamed by `pi`.
fn rename_spec(spec: &TargetSpec, pi: &Renaming) -> TargetSpec {
    let inputs: Vec<Gpr> = spec.inputs.iter().map(|i| pi.apply_gpr(i.reg)).collect();
    let outputs: Vec<Gpr> = spec
        .live_out
        .gprs
        .iter()
        .map(|g| pi.apply_gpr(*g))
        .collect();
    TargetSpec::with_gprs(pi.apply_program(&spec.program), &inputs, &outputs)
}

/// Acceptance criterion: resubmitting a canonically-equal target — here
/// the same kernel after a full register renaming — is served from the
/// cache with zero proposals, and the served rewrite is correct in the
/// *submitter's* registers.
#[test]
fn renamed_resubmission_is_served_with_zero_proposals() {
    let service = Service::start(ServeConfig::new(quick_config())).unwrap();
    let first = service.submit(clumsy_add());
    let cold = service.wait(first).unwrap();
    assert_eq!(cold.disposition, Disposition::ColdSearch);
    let cold_result = cold.result.unwrap();
    assert!(cold_result.stats.total_proposals() > 0);

    let renamed = rename_spec(&clumsy_add(), &shuffle());
    let second = service.submit(renamed.clone());
    let hit = service.wait(second).unwrap();
    assert_eq!(hit.disposition, Disposition::CacheHit);
    let served = hit.result.unwrap();
    assert_eq!(
        served.stats.total_proposals(),
        0,
        "a cache hit must not search"
    );

    // The served rewrite must be correct for the *renamed* interface on
    // fresh test cases.
    let fresh = generate_testcases(&renamed, 16, 7777);
    let mut cf = CostFn::new(quick_config(), fresh, 0);
    let instrs: Vec<_> = served.rewrite.iter().cloned().collect();
    assert_eq!(cf.eq_prime(&instrs), 0, "served rewrite fails fresh tests");

    let stats = service.shutdown().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cold_searches, 1);
    assert_eq!(stats.hit_rate(), 0.5);
}

/// Acceptance criterion: a near-miss submission warm-starts from the
/// cached neighbour and reaches `eq' == 0` in fewer synthesis proposals
/// than a cold start of the very same target.
#[test]
fn warm_start_from_near_miss_beats_cold_start() {
    // Same function as clumsy_add with one extra (no-op) instruction:
    // canonical edit distance 1 from the cached entry.
    let near_miss_prog: Program = "
        movq rdi, rbx
        movq rbx, rcx
        movq rcx, rax
        addq rsi, rax
        movq rax, rbx
        movq rbx, rax
        addq 0, rax
    "
    .parse()
    .unwrap();
    let near_miss = TargetSpec::with_gprs(near_miss_prog, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);

    // Cold baseline: the same target through a plain session.
    let cold = stoke::Session::new(quick_config()).run(&near_miss).unwrap();
    assert!(cold.stats.synthesis_proposals > 0);

    let service = Service::start(ServeConfig::new(quick_config())).unwrap();
    let seed_job = service.submit(clumsy_add());
    assert!(service.wait(seed_job).unwrap().result.is_ok());

    let warm_job = service.submit(near_miss.clone());
    let warm = service.wait(warm_job).unwrap();
    assert_eq!(warm.disposition, Disposition::WarmStart { distance: 1 });
    let warm_result = warm.result.unwrap();
    assert!(warm_result.stats.synthesis_succeeded);
    assert!(
        warm_result.stats.synthesis_proposals < cold.stats.synthesis_proposals,
        "warm start took {} synthesis proposals, cold start {}",
        warm_result.stats.synthesis_proposals,
        cold.stats.synthesis_proposals
    );
    // Still correct on fresh test cases.
    let fresh = generate_testcases(&near_miss, 16, 31415);
    let mut cf = CostFn::new(quick_config(), fresh, 0);
    let instrs: Vec<_> = warm_result.rewrite.iter().cloned().collect();
    assert_eq!(cf.eq_prime(&instrs), 0);

    let stats = service.shutdown().unwrap();
    assert_eq!(stats.warm_starts, 1);
}

#[test]
fn event_stream_reports_the_job_lifecycle() {
    let service = Service::start(ServeConfig::new(quick_config())).unwrap();
    let events = service.subscribe();
    let spec = clumsy_add();
    let first = service.submit(spec.clone());
    let second = service.submit(spec);
    service.wait(first).unwrap();
    service.wait(second).unwrap();

    let mut seen = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match events.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => {
                let done = matches!(&event, JobEvent::Completed { job, .. } if *job == second);
                seen.push(event);
                if done {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) if Instant::now() < deadline => {}
            Err(e) => panic!("event stream ended early: {e:?}"),
        }
    }

    let position = |want: &JobEvent| seen.iter().position(|e| e == want);
    for job in [first, second] {
        let started = position(&JobEvent::Started { job }).expect("Started event");
        assert!(seen[..started]
            .iter()
            .any(|e| matches!(e, JobEvent::Submitted { job: j, .. } if *j == job)));
    }
    // The first job runs cold; the second is announced and completed as a
    // cache hit, strictly after its start.
    let hit = position(&JobEvent::CacheHit { job: second }).expect("CacheHit event");
    let done = position(&JobEvent::Completed {
        job: second,
        disposition: Disposition::CacheHit,
    })
    .expect("Completed event");
    assert!(position(&JobEvent::Started { job: second }).unwrap() < hit);
    assert!(hit < done);
    assert!(position(&JobEvent::Completed {
        job: first,
        disposition: Disposition::ColdSearch,
    })
    .is_some());
    service.shutdown().unwrap();
}

#[test]
fn cancellation_preempts_running_jobs_and_withdraws_queued_ones() {
    // Effectively unbounded search so jobs only end by cancellation.
    let config = Config {
        synthesis_iterations: u64::MAX / 2,
        ..quick_config()
    };
    let service = Service::start(ServeConfig::new(config)).unwrap();
    let running = service.submit(clumsy_add());
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.status(running) != Some(JobStatus::Running) {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The single worker is busy, so these stay queued.
    let queued_a = service.submit(clumsy_add());
    let queued_b = service.submit(clumsy_add());
    assert_eq!(service.status(queued_a), Some(JobStatus::Queued));

    assert!(service.cancel(queued_b));
    assert!(service.cancel(queued_a));
    assert_eq!(service.status(queued_a), Some(JobStatus::Cancelled));
    match service.wait(queued_a) {
        Err(ServeError::Cancelled(job)) => assert_eq!(job, queued_a),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Cancelling twice (or a finished job) is a no-op.
    assert!(!service.cancel(queued_a));

    // Cancelling the running job preempts its chains: the outcome is a
    // budget-exhausted partial result, not a control-plane error.
    service.cancel(running);
    let outcome = service.wait(running).unwrap();
    assert_eq!(outcome.disposition, Disposition::ColdSearch);
    match outcome.result {
        Err(StokeError::BudgetExhausted { .. }) => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }

    // Nothing was cached: partial results carry no reusable guarantee.
    assert_eq!(service.cache_len(), 0);
    let stats = service.shutdown().unwrap();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn batch_budget_is_shared_across_jobs() {
    let mut config = ServeConfig::new(quick_config());
    config.batch_budget = Budget::unlimited().with_max_proposals(50);
    let service = Service::start(config).unwrap();

    let first = service.submit(clumsy_add());
    // A different target, so neither the cache nor a warm start applies
    // (its interface matches but the batch clock is already exhausted).
    let other: Program = "movq rdi, rax\nsubq rsi, rax\nsubq rsi, rax"
        .parse()
        .unwrap();
    let second = service.submit(TargetSpec::with_gprs(
        other,
        &[Gpr::Rdi, Gpr::Rsi],
        &[Gpr::Rax],
    ));

    for job in [first, second] {
        let outcome = service.wait(job).unwrap();
        match outcome.result {
            Err(StokeError::BudgetExhausted { ref partial }) => {
                assert!(
                    partial.stats.total_proposals() <= 50,
                    "{job} overspent the batch budget"
                );
            }
            ref other => panic!("expected BudgetExhausted for {job}, got {other:?}"),
        }
    }
    let stats = service.shutdown().unwrap();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 0);
}

#[test]
fn wait_rejects_unknown_jobs() {
    let service = Service::start(ServeConfig::new(quick_config())).unwrap();
    let id = service.submit(clumsy_add());
    service.wait(id).unwrap();
    // An id from another service instance is unknown here.
    let other = Service::start(ServeConfig::new(quick_config())).unwrap();
    let foreign = {
        let a = other.submit(clumsy_add());
        other.wait(a).unwrap();
        let b = other.submit(clumsy_add());
        other.wait(b).unwrap();
        b
    };
    assert!(service.status(foreign).is_none());
    match service.wait(foreign) {
        Err(ServeError::UnknownJob(job)) => assert_eq!(job, foreign),
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    service.shutdown().unwrap();
    other.shutdown().unwrap();
}

#[test]
fn cache_persists_across_service_restarts() {
    let path =
        std::env::temp_dir().join(format!("stoke-serve-restart-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut config = ServeConfig::new(quick_config());
    config.cache_path = Some(path.clone());
    let service = Service::start(config).unwrap();
    let job = service.submit(clumsy_add());
    let cold = service.wait(job).unwrap();
    assert_eq!(cold.disposition, Disposition::ColdSearch);
    service.shutdown().unwrap();
    assert!(path.exists(), "shutdown must persist the cache");

    // A fresh service over the same file serves the kernel immediately —
    // even through renamed registers.
    let mut config = ServeConfig::new(quick_config());
    config.cache_path = Some(path.clone());
    let service = Service::start(config).unwrap();
    assert_eq!(service.cache_len(), 1);
    let job = service.submit(rename_spec(&clumsy_add(), &shuffle()));
    let outcome = service.wait(job).unwrap();
    assert_eq!(outcome.disposition, Disposition::CacheHit);
    assert_eq!(outcome.result.unwrap().stats.total_proposals(), 0);
    service.shutdown().unwrap();

    // A corrupt cache file is rejected at startup, never silently served.
    std::fs::write(&path, "not a cache file\n").unwrap();
    let mut config = ServeConfig::new(quick_config());
    config.cache_path = Some(path.clone());
    match Service::start(config) {
        Err(ServeError::Persist(_)) => {}
        Ok(_) => panic!("corrupt cache file must be rejected"),
        Err(other) => panic!("expected Persist error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_and_trace_cover_the_job_lifecycle() {
    use std::sync::Arc;
    use stoke_obs::{MetricsRegistry, RingSink, TraceRecord};

    let registry = Arc::new(MetricsRegistry::new());
    let ring = Arc::new(RingSink::new(4096));
    let mut config = ServeConfig::new(quick_config());
    config.metrics = Some(registry.clone());
    config.trace = Some(ring.clone());
    let service = Service::start(config).unwrap();

    let first = service.submit(clumsy_add());
    assert!(service.wait(first).unwrap().result.is_ok());
    let second = service.submit(clumsy_add());
    let outcome = service.wait(second).unwrap();
    assert_eq!(outcome.disposition, Disposition::CacheHit);
    service.shutdown().unwrap();

    let snap = registry.snapshot();
    assert_eq!(snap.counter("stoke_serve_jobs_submitted_total"), 2);
    assert_eq!(snap.counter("stoke_serve_jobs_completed_total"), 2);
    assert_eq!(snap.counter("stoke_serve_jobs_failed_total"), 0);
    assert_eq!(snap.counter("stoke_serve_cache_hits_total"), 1);
    assert_eq!(snap.counter("stoke_serve_cache_misses_total"), 1);
    assert_eq!(snap.counter("stoke_serve_cold_searches_total"), 1);
    // Both jobs left the queue: the depth gauge must be back to zero.
    assert_eq!(snap.gauge("stoke_serve_queue_depth"), 0);
    let run = snap.histogram("stoke_serve_run_seconds").unwrap();
    assert_eq!(run.count, 2);
    // The cold search's session recorded into the same registry.
    assert!(snap.counter(r#"stoke_proposals_total{phase="synthesis"}"#) > 0);
    let searches: u64 = ["proven", "tests_only", "target_returned"]
        .iter()
        .map(|v| snap.counter(&format!(r#"stoke_searches_total{{verification="{v}"}}"#)))
        .sum();
    assert_eq!(searches, 1, "exactly the one cold search finished");

    // The trace captured the serve-level lifecycle events.
    let names: Vec<String> = ring
        .records()
        .into_iter()
        .filter_map(|(_, r)| match r {
            TraceRecord::Event { name, .. } => Some(name),
            _ => None,
        })
        .collect();
    for expected in ["job_submitted", "job_started", "job_completed"] {
        assert!(
            names.iter().filter(|n| n.as_str() == expected).count() >= 2,
            "expected two {expected} events, got {names:?}"
        );
    }
    assert_eq!(ring.dropped(), 0);
}
