//! The canonical rewrite cache: exact lookups, near-miss scans for warm
//! starts, LRU/TTL eviction, and optional disk persistence in a
//! hand-rolled line-oriented wire format (no serde available in this
//! workspace).

use crate::key::{edit_distance_within, CacheKey};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant, SystemTime};
use stoke::Verification;
use stoke_x86::Program;

/// Sizing and expiry policy for a [`RewriteCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of entries; the least-recently-used entry is
    /// evicted when a new insertion would exceed it.
    pub capacity: usize,
    /// Entries older than this are dropped at lookup (and on load from
    /// disk). `None` disables expiry.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 4096,
            ttl: None,
        }
    }
}

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key lookups that found a live entry.
    pub hits: u64,
    /// Exact-key lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Entries dropped because their TTL had passed.
    pub expirations: u64,
}

/// A cached rewrite, in canonical register space.
#[derive(Debug, Clone)]
pub struct CachedRewrite {
    /// The rewrite, alpha-renamed into canonical registers. Apply the
    /// submitting key's inverse renaming before returning it to a caller.
    pub rewrite: Program,
    /// The verification level the rewrite earned when it was cached.
    pub verification: Verification,
}

#[derive(Debug, Clone)]
struct Entry {
    rewrite_text: String,
    verification: Verification,
    iface: String,
    prog_lines: Vec<String>,
    created: Instant,
    created_unix: u64,
    last_used: u64,
}

/// An in-memory map from canonical target keys to canonical rewrites.
///
/// Exact lookups are hash lookups on the full canonical key text, so two
/// targets share an entry exactly when their canonical serializations are
/// byte-identical. [`RewriteCache::nearest`] additionally scans entries
/// with the same pipeline/interface section for a program body within a
/// bounded edit distance — the warm-start path. The scan is `O(entries)`;
/// with the default capacity of 4096 and whole-instruction-line
/// comparisons this is microseconds, far below the cost of even one MCMC
/// proposal evaluation, so no index structure is kept.
#[derive(Debug)]
pub struct RewriteCache {
    config: CacheConfig,
    entries: HashMap<String, Entry>,
    tick: u64,
    stats: CacheStats,
}

impl RewriteCache {
    /// An empty cache with the given policy.
    pub fn new(config: CacheConfig) -> RewriteCache {
        RewriteCache {
            config,
            entries: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Behaviour counters since construction (or load).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn expired(&self, entry: &Entry) -> bool {
        self.config
            .ttl
            .is_some_and(|ttl| entry.created.elapsed() >= ttl)
    }

    /// Exact lookup. A hit bumps the entry's LRU position.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<CachedRewrite> {
        self.tick += 1;
        let tick = self.tick;
        let ttl = self.config.ttl;
        let mut expired = false;
        if let Some(entry) = self.entries.get_mut(key.text()) {
            if ttl.is_some_and(|ttl| entry.created.elapsed() >= ttl) {
                expired = true;
            } else {
                entry.last_used = tick;
                self.stats.hits += 1;
                return Some(CachedRewrite {
                    rewrite: entry
                        .rewrite_text
                        .parse()
                        .expect("cached rewrites are validated on insert/load"),
                    verification: entry.verification.clone(),
                });
            }
        }
        if expired {
            self.entries.remove(key.text());
            self.stats.expirations += 1;
        }
        self.stats.misses += 1;
        None
    }

    /// Near-miss lookup for warm starts: among live entries whose
    /// pipeline/interface section equals `key`'s, find the one whose
    /// canonical program body is closest to `key`'s within `max_distance`
    /// whole-instruction edits. Does not bump LRU (a warm start is a hint,
    /// not a serve).
    pub fn nearest(&self, key: &CacheKey, max_distance: usize) -> Option<(CachedRewrite, usize)> {
        let mut best: Option<(usize, &Entry)> = None;
        for entry in self.entries.values() {
            if entry.iface != key.interface() || self.expired(entry) {
                continue;
            }
            // An exact-text entry would have been an exact hit already;
            // distance 0 entries can still appear if the caller skipped
            // `lookup`, and are simply the best possible warm start.
            let cap = best.map_or(max_distance, |(d, _)| d.saturating_sub(1));
            if let Some(d) = edit_distance_within(key.program_lines(), &entry.prog_lines, cap) {
                best = Some((d, entry));
                if d == 0 {
                    break;
                }
            }
        }
        best.and_then(|(d, entry)| {
            entry.rewrite_text.parse::<Program>().ok().map(|rewrite| {
                (
                    CachedRewrite {
                        rewrite,
                        verification: entry.verification.clone(),
                    },
                    d,
                )
            })
        })
    }

    /// Insert the rewrite found for `key` (submitter register space).
    ///
    /// Returns `false` — and caches nothing — when the rewrite uses a
    /// register implicitly (e.g. `mulq`'s `rax`) that the *target* does
    /// not pin: such a rewrite cannot be alpha-renamed soundly into a
    /// different submitter's register space (see
    /// [`CacheKey::admits_rewrite`]).
    pub fn insert(
        &mut self,
        key: &CacheKey,
        rewrite: &Program,
        verification: Verification,
    ) -> bool {
        if !key.admits_rewrite(rewrite) {
            return false;
        }
        self.tick += 1;
        let entry = Entry {
            rewrite_text: key.canonical_rewrite(rewrite).to_string(),
            verification,
            iface: key.interface().to_string(),
            prog_lines: key.program_lines().to_vec(),
            created: Instant::now(),
            created_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            last_used: self.tick,
        };
        self.entries.insert(key.text().to_string(), entry);
        self.stats.insertions += 1;
        while self.entries.len() > self.config.capacity.max(1) {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
        true
    }

    /// Serialize the cache to `path` in the versioned line format (see
    /// [`RewriteCache::load`]). Expired entries are skipped.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::from("stoke-rewrite-cache v1\n");
        let mut count = 0usize;
        for (key, entry) in &self.entries {
            if self.expired(entry) {
                continue;
            }
            out.push_str(&format!(
                "entry\t{}\t{}\t{}\t{}\t{}\n",
                entry.created_unix,
                entry.last_used,
                verification_tag(&entry.verification),
                escape(key),
                escape(&entry.rewrite_text),
            ));
            count += 1;
        }
        out.push_str(&format!("end\t{count}\n"));
        std::fs::write(path, out)
    }

    /// Load a cache previously written by [`RewriteCache::save`].
    ///
    /// The format is strict: a bad header, a malformed record, an unknown
    /// verification tag, an unparseable cached program, a broken escape
    /// sequence or a missing/incorrect `end` count all reject the file
    /// with a typed [`PersistError`] rather than silently serving
    /// corrupted rewrites. Entries whose TTL (under `config`) has already
    /// passed are dropped on load.
    pub fn load(path: &Path, config: CacheConfig) -> Result<RewriteCache, PersistError> {
        let text = std::fs::read_to_string(path)?;
        let mut cache = RewriteCache::new(config);
        let now_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut lines = text.split_terminator('\n').enumerate();
        match lines.next() {
            Some((_, "stoke-rewrite-cache v1")) => {}
            other => {
                return Err(PersistError::BadHeader {
                    found: other.map(|(_, l)| l.to_string()).unwrap_or_default(),
                })
            }
        }
        let mut declared: Option<usize> = None;
        let mut parsed = 0usize;
        for (lineno, line) in lines {
            if declared.is_some() {
                return Err(PersistError::BadRecord {
                    line: lineno + 1,
                    reason: "data after end marker".to_string(),
                });
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let record = |reason: &str| PersistError::BadRecord {
                line: lineno + 1,
                reason: reason.to_string(),
            };
            match fields.first().copied() {
                Some("end") => {
                    if fields.len() != 2 {
                        return Err(record("end marker takes exactly one field"));
                    }
                    declared = Some(
                        fields[1]
                            .parse::<usize>()
                            .map_err(|_| record("unparseable end count"))?,
                    );
                }
                Some("entry") => {
                    if fields.len() != 6 {
                        return Err(record("entry takes exactly five fields"));
                    }
                    let created_unix = fields[1]
                        .parse::<u64>()
                        .map_err(|_| record("unparseable timestamp"))?;
                    let last_used = fields[2]
                        .parse::<u64>()
                        .map_err(|_| record("unparseable LRU tick"))?;
                    let verification = parse_verification(fields[3])
                        .ok_or_else(|| record("unknown verification tag"))?;
                    let key = unescape(fields[4]).ok_or_else(|| record("broken escape in key"))?;
                    let rewrite_text =
                        unescape(fields[5]).ok_or_else(|| record("broken escape in rewrite"))?;
                    if rewrite_text.parse::<Program>().is_err() {
                        return Err(record("cached rewrite does not parse"));
                    }
                    parsed += 1;
                    let age = Duration::from_secs(now_unix.saturating_sub(created_unix));
                    if cache.config.ttl.is_some_and(|ttl| age >= ttl) {
                        cache.stats.expirations += 1;
                        continue;
                    }
                    let (iface, prog_lines) = split_key(&key)
                        .ok_or_else(|| record("key text is not a v1 canonical key"))?;
                    let created = Instant::now().checked_sub(age).unwrap_or_else(Instant::now);
                    cache.tick = cache.tick.max(last_used);
                    cache.entries.insert(
                        key,
                        Entry {
                            rewrite_text,
                            verification,
                            iface,
                            prog_lines,
                            created,
                            created_unix,
                            last_used,
                        },
                    );
                }
                _ => return Err(record("unknown record type")),
            }
        }
        match declared {
            Some(n) if n == parsed => Ok(cache),
            Some(n) => Err(PersistError::Truncated {
                declared: n,
                found: parsed,
            }),
            None => Err(PersistError::Truncated {
                declared: 0,
                found: parsed,
            }),
        }
    }
}

/// Split a serialized key back into its interface section and program
/// lines (the fields [`CacheKey`] exposes for near-miss scans).
fn split_key(key: &str) -> Option<(String, Vec<String>)> {
    let body = key.strip_prefix("stoke-serve key v1\n")?;
    let (iface, prog) = body.split_once("prog\n")?;
    Some((
        iface.to_string(),
        prog.split_terminator('\n').map(str::to_string).collect(),
    ))
}

fn verification_tag(v: &Verification) -> &'static str {
    match v {
        Verification::Proven => "proven",
        Verification::TestsOnly => "tests-only",
        Verification::TargetReturned => "target-returned",
    }
}

fn parse_verification(tag: &str) -> Option<Verification> {
    match tag {
        "proven" => Some(Verification::Proven),
        "tests-only" => Some(Verification::TestsOnly),
        "target-returned" => Some(Verification::TargetReturned),
        _ => None,
    }
}

/// Escape a field for the tab/newline-delimited wire format.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a dangling or unknown escape.
fn unescape(text: &str) -> Option<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Why a persisted cache file was rejected.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The first line was not the expected format header.
    BadHeader {
        /// The line found instead (empty for an empty file).
        found: String,
    },
    /// A record line was malformed.
    BadRecord {
        /// 1-based line number within the file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The trailing `end` count was missing or did not match the number
    /// of records — the file was truncated mid-write.
    Truncated {
        /// The count the `end` marker declared (0 when missing).
        declared: usize,
        /// Records actually present.
        found: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file I/O error: {e}"),
            PersistError::BadHeader { found } => {
                write!(f, "not a stoke-rewrite-cache v1 file (found {found:?})")
            }
            PersistError::BadRecord { line, reason } => {
                write!(f, "corrupt cache record at line {line}: {reason}")
            }
            PersistError::Truncated { declared, found } => write!(
                f,
                "cache file truncated: end marker declared {declared} records, found {found}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}
