//! # stoke-serve
//!
//! Superoptimization as a service, on top of the STOKE reproduction's
//! [`Session`](stoke::Session) pipeline: a [`Service`] owns worker
//! threads that drain a priority [job queue](Service::submit) of
//! [`TargetSpec`](stoke::TargetSpec)s, each job bounded by its own
//! [`Budget`](stoke::Budget) (composed with a batch-wide one) and
//! cancellable from any thread, with progress streamed as typed
//! [`JobEvent`]s.
//!
//! The economics come from the [`RewriteCache`]: targets are keyed by a
//! canonical form — registers alpha-renamed into canonical order,
//! immediates normalized where the machine semantics make it safe, the
//! whole thing fingerprinted with the opcode pool, cost model, verifier
//! and backend — so a kernel that was already solved is *served*, not
//! searched (zero proposals), no matter which registers the resubmission
//! happens to use. A submission within a small edit distance of a cached
//! entry instead *warm-starts*: its synthesis chains begin from the
//! cached rewrite rather than random code, reaching `eq' == 0` far
//! sooner. The cache keeps its guarantees honest: the pipeline
//! fingerprint is part of every key, so a rewrite proven under one
//! verifier/cost-model configuration is never served to a submission
//! demanding a different one.
//!
//! ## The cache, standalone
//!
//! ```
//! use stoke::{Config, TargetSpec, Verification};
//! use stoke_serve::{CacheConfig, CacheKey, PipelineFingerprint, RewriteCache};
//! use stoke_x86::Gpr;
//!
//! let config = Config::default();
//! let fp = PipelineFingerprint::new(&config, "cascade");
//! let mut cache = RewriteCache::new(CacheConfig::default());
//!
//! // Solve once (here: pretend the search returned this rewrite).
//! let target = "movq rdi, rbx\nmovq rbx, rax\naddq rsi, rax".parse().unwrap();
//! let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
//! let key = CacheKey::for_spec(&spec, fp);
//! let rewrite = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
//! assert!(cache.insert(&key, &rewrite, Verification::Proven));
//!
//! // The same computation through different registers is the same key.
//! let renamed = "movq r8, rbx\nmovq rbx, r11\naddq r9, r11".parse().unwrap();
//! let renamed_spec = TargetSpec::with_gprs(renamed, &[Gpr::R8, Gpr::R9], &[Gpr::R11]);
//! let renamed_key = CacheKey::for_spec(&renamed_spec, fp);
//! assert_eq!(key.text(), renamed_key.text());
//! let hit = cache.lookup(&renamed_key).expect("cache hit");
//! // Map the cached rewrite back into the submitter's registers.
//! let served = renamed_key.renaming().inverse().apply_program(&hit.rewrite);
//! assert_eq!(served.to_string().trim(), "movq r8, r11\naddq r9, r11");
//! ```
//!
//! ## The service
//!
//! See [`Service`] for the end-to-end queue example; the `serve.rs`
//! example at the repository root submits one kernel a hundred times and
//! prints the measured hit rate and latencies.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod key;
pub mod service;

pub use cache::{CacheConfig, CacheStats, CachedRewrite, PersistError, RewriteCache};
pub use key::{edit_distance_within, fnv1a64, CacheKey, PipelineFingerprint};
pub use service::{
    Disposition, JobEvent, JobId, JobOutcome, JobStatus, Priority, ServeConfig, ServeError,
    Service, ServiceStats, SubmitOptions,
};
