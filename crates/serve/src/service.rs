//! The long-running service: a priority job queue over worker threads,
//! each job a full [`Session`] pipeline run with its own budget and
//! cancellation, short-circuited through the [`RewriteCache`] when a
//! canonically-equal target was already solved and warm-started when a
//! near-miss was.

use crate::cache::{CacheConfig, CacheStats, RewriteCache};
use crate::key::{CacheKey, PipelineFingerprint};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stoke::{
    Budget, BudgetClock, ChainProgress, Config, Phase, RunRequest, SearchObserver, SearchStats,
    Session, StokeError, StokeResult, TargetSpec, ValidationVerdict, Verifier,
};
use stoke_emu::TimingModel;
use stoke_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceRecord, TraceSink, Value};
use stoke_x86::Program;

/// Identifier of a submitted job, unique within one [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The raw id (also used as the observer target index of the job).
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority; higher priorities run first, FIFO within a
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Behind every normal job.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Ahead of everything else.
    High,
}

/// Per-submission options for [`Service::submit_with`].
#[derive(Debug, Default)]
pub struct SubmitOptions {
    /// Scheduling priority (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Per-job budget. `None` stamps a fresh copy of the service's
    /// [`ServeConfig::job_budget`] template; `Some` uses the given budget
    /// as-is, sharing its [`CancelToken`](stoke::CancelToken) with the
    /// caller.
    pub budget: Option<Budget>,
}

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// A full search ran with no cache assistance.
    ColdSearch,
    /// A canonically-equal target was cached: the rewrite was served
    /// without launching a search (zero proposals).
    CacheHit,
    /// A near-miss cache entry seeded the synthesis chains.
    WarmStart {
        /// Canonical edit distance to the entry that seeded the search.
        distance: usize,
    },
}

/// Lifecycle state of a job, from [`Service::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished; [`Service::wait`] returns its outcome.
    Done,
    /// Cancelled while still queued; it never ran.
    Cancelled,
}

/// The completed outcome of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this outcome belongs to.
    pub job: JobId,
    /// Where the result came from.
    pub disposition: Disposition,
    /// The pipeline result — exactly what [`Session::run`] would return,
    /// including [`StokeError::BudgetExhausted`] with a partial result
    /// when the job's (or the batch's) budget ran out or the job was
    /// cancelled mid-run.
    pub result: Result<StokeResult, StokeError>,
    /// Time spent queued before a worker picked the job up.
    pub queue_time: Duration,
    /// Time from pickup to completion (≈ `stats.total_time` for cold
    /// searches, ~zero for cache hits).
    pub run_time: Duration,
}

/// Typed progress events streamed from the service, consumable from any
/// thread via [`Service::subscribe`]. `Phase`/`Progress`/`Candidate`/
/// `Validation` relay the [`SearchObserver`] callbacks of the underlying
/// session run, tagged with the job id.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job entered the queue.
    Submitted {
        /// The job.
        job: JobId,
        /// Its scheduling priority.
        priority: Priority,
    },
    /// A worker picked the job up.
    Started {
        /// The job.
        job: JobId,
    },
    /// A canonically-equal cached rewrite was served; no search ran.
    CacheHit {
        /// The job.
        job: JobId,
    },
    /// A near-miss cache entry is seeding the synthesis chains.
    WarmStart {
        /// The job.
        job: JobId,
        /// Canonical edit distance to the seeding entry.
        distance: usize,
    },
    /// A pipeline phase started.
    PhaseStart {
        /// The job.
        job: JobId,
        /// The phase.
        phase: Phase,
    },
    /// Periodic chain progress.
    Progress {
        /// The job.
        job: JobId,
        /// The chain's progress report.
        progress: ChainProgress,
    },
    /// A candidate entered the re-rank stage.
    Candidate {
        /// The job.
        job: JobId,
        /// Candidate length in instructions.
        instructions: usize,
        /// Its search cost.
        cost: f64,
    },
    /// A symbolic validation query finished.
    Validation {
        /// The job.
        job: JobId,
        /// The verdict.
        verdict: ValidationVerdict,
    },
    /// The job finished (see [`Service::wait`] for the outcome).
    Completed {
        /// The job.
        job: JobId,
        /// Where its result came from.
        disposition: Disposition,
    },
    /// The job's run returned an error (including budget exhaustion).
    Failed {
        /// The job.
        job: JobId,
    },
    /// The job was cancelled while queued and will never run.
    Cancelled {
        /// The job.
        job: JobId,
    },
}

/// Counters describing service activity, from [`Service::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that completed with `Ok`.
    pub completed: u64,
    /// Jobs whose run returned an error (budget exhaustion included).
    pub failed: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Jobs served straight from the cache.
    pub cache_hits: u64,
    /// Jobs warm-started from a near-miss entry.
    pub warm_starts: u64,
    /// Jobs that ran a cold search.
    pub cold_searches: u64,
}

impl ServiceStats {
    /// Fraction of finished jobs served straight from the cache.
    pub fn hit_rate(&self) -> f64 {
        let finished = self.completed + self.failed;
        if finished == 0 {
            0.0
        } else {
            self.cache_hits as f64 / finished as f64
        }
    }
}

/// Errors from the service control plane ([`Service::wait`] and friends).
/// Search errors travel inside [`JobOutcome::result`] instead.
#[derive(Debug)]
pub enum ServeError {
    /// The job id was never issued by this service.
    UnknownJob(JobId),
    /// The job was cancelled while queued and has no outcome.
    Cancelled(JobId),
    /// Saving or loading the persistent cache failed.
    Persist(crate::cache::PersistError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownJob(job) => write!(f, "{job} was never submitted here"),
            ServeError::Cancelled(job) => write!(f, "{job} was cancelled before it ran"),
            ServeError::Persist(e) => write!(f, "cache persistence failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<crate::cache::PersistError> for ServeError {
    fn from(e: crate::cache::PersistError) -> ServeError {
        ServeError::Persist(e)
    }
}

/// Configuration of a [`Service`].
pub struct ServeConfig {
    /// The search configuration every job runs under (it is part of the
    /// cache key's pipeline fingerprint).
    pub search: Config,
    /// Worker threads draining the queue (each job then runs its own
    /// `search.threads` chains).
    pub workers: usize,
    /// Template for per-job budgets: each job gets a
    /// [detached](Budget::detached) copy so jobs cancel independently.
    pub job_budget: Budget,
    /// Batch-wide budget: a single clock started when the service starts,
    /// charged by every proposal of every job.
    pub batch_budget: Budget,
    /// Rewrite-cache sizing and expiry.
    pub cache: CacheConfig,
    /// Maximum canonical edit distance for warm-start seeding (`0`
    /// disables warm starts).
    pub warm_start_max_distance: usize,
    /// When set, the cache is loaded from this file at start (if it
    /// exists) and saved back on [`Service::shutdown`].
    pub cache_path: Option<PathBuf>,
    /// Verifier for every job's re-rank stage (`None` = the session
    /// default cascade). Its name is part of the pipeline fingerprint.
    pub verifier: Option<Arc<dyn Verifier>>,
    /// Optional metrics registry. When set, the service records queue
    /// depth, job latency histograms, and cache hit/miss/warm-start
    /// counters under the `stoke_serve_*` families, and every job's
    /// session records its search metrics into the same registry.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Optional structured trace sink receiving job lifecycle events and
    /// every job session's span/event records.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl ServeConfig {
    /// A service configuration with `search` and defaults everywhere
    /// else: one worker, unlimited budgets, a 4096-entry cache with no
    /// TTL, warm starts within distance 2, no persistence.
    pub fn new(search: Config) -> ServeConfig {
        ServeConfig {
            search,
            workers: 1,
            job_budget: Budget::unlimited(),
            batch_budget: Budget::unlimited(),
            cache: CacheConfig::default(),
            warm_start_max_distance: 2,
            cache_path: None,
            verifier: None,
            metrics: None,
            trace: None,
        }
    }
}

/// Pre-registered serve-layer metric handles (see
/// [`ServeConfig::metrics`]); all updates after registration are single
/// atomic operations.
struct ServeMetrics {
    queue_depth: Gauge,
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    warm_starts: Counter,
    cold_searches: Counter,
    queue_seconds: Histogram,
    run_seconds: Histogram,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> ServeMetrics {
        let latency_bounds = [0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];
        ServeMetrics {
            queue_depth: registry.gauge("stoke_serve_queue_depth"),
            submitted: registry.counter("stoke_serve_jobs_submitted_total"),
            completed: registry.counter("stoke_serve_jobs_completed_total"),
            failed: registry.counter("stoke_serve_jobs_failed_total"),
            cancelled: registry.counter("stoke_serve_jobs_cancelled_total"),
            cache_hits: registry.counter("stoke_serve_cache_hits_total"),
            cache_misses: registry.counter("stoke_serve_cache_misses_total"),
            warm_starts: registry.counter("stoke_serve_warm_starts_total"),
            cold_searches: registry.counter("stoke_serve_cold_searches_total"),
            queue_seconds: registry.histogram("stoke_serve_queue_seconds", &latency_bounds),
            run_seconds: registry.histogram("stoke_serve_run_seconds", &latency_bounds),
        }
    }
}

struct PendingJob {
    seq: u64,
    id: JobId,
    priority: Priority,
    spec: TargetSpec,
    budget: Budget,
    submitted: Instant,
}

impl PartialEq for PendingJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PendingJob {}
impl PartialOrd for PendingJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then lower sequence (FIFO).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct JobRecord {
    status: JobStatus,
    cancel: stoke::CancelToken,
    outcome: Option<JobOutcome>,
}

struct QueueState {
    pending: BinaryHeap<PendingJob>,
    jobs: HashMap<JobId, JobRecord>,
    next_id: u64,
    next_seq: u64,
    shutdown: bool,
    stats: ServiceStats,
}

struct Shared {
    config: Config,
    fingerprint: PipelineFingerprint,
    verifier: Option<Arc<dyn Verifier>>,
    job_budget: Budget,
    warm_start_max_distance: usize,
    queue: Mutex<QueueState>,
    /// Wakes workers (new job / shutdown).
    work: Condvar,
    /// Wakes `wait` callers (job finished / cancelled).
    done: Condvar,
    batch_clock: Arc<BudgetClock>,
    cache: Mutex<RewriteCache>,
    subscribers: Mutex<Vec<Sender<JobEvent>>>,
    registry: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<ServeMetrics>,
}

impl Shared {
    fn emit(&self, event: JobEvent) {
        let mut subs = self.subscribers.lock().expect("subscriber lock");
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }

    fn trace_event(&self, name: &str, job: JobId, fields: Vec<(String, Value)>) {
        if let Some(sink) = &self.trace {
            sink.record(TraceRecord::Event {
                name: name.to_string(),
                target: job.value(),
                fields,
            });
        }
    }
}

/// An observer adapter forwarding one job's session callbacks into the
/// service event stream.
struct JobObserver {
    job: JobId,
    shared: Arc<Shared>,
}

impl SearchObserver for JobObserver {
    fn on_phase_start(&self, _target: usize, phase: Phase) {
        self.shared.emit(JobEvent::PhaseStart {
            job: self.job,
            phase,
        });
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        self.shared.emit(JobEvent::Progress {
            job: self.job,
            progress: *progress,
        });
    }

    fn on_candidate(&self, _target: usize, candidate: &Program, cost: f64) {
        self.shared.emit(JobEvent::Candidate {
            job: self.job,
            instructions: candidate.len(),
            cost,
        });
    }

    fn on_validation(&self, _target: usize, verdict: ValidationVerdict) {
        self.shared.emit(JobEvent::Validation {
            job: self.job,
            verdict,
        });
    }
}

/// Superoptimization as a service: worker threads drain a priority queue
/// of [`TargetSpec`] jobs through the [`Session`] pipeline, short-circuit
/// canonically-cached targets, and warm-start near misses.
///
/// ```
/// use stoke::{Config, TargetSpec};
/// use stoke_serve::{Disposition, ServeConfig, Service};
/// use stoke_x86::Gpr;
///
/// let config = Config::builder()
///     .ell(8).num_testcases(8).threads(1)
///     .synthesis_iterations(2_000).optimization_iterations(8_000)
///     .build().unwrap();
/// let service = Service::start(ServeConfig::new(config)).unwrap();
/// let target = "movq rdi, rbx\nmovq rbx, rax\naddq rsi, rax".parse().unwrap();
/// let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
///
/// let first = service.submit(spec.clone());
/// let second = service.submit(spec); // same target again
/// assert!(service.wait(first).unwrap().result.is_ok());
/// let outcome = service.wait(second).unwrap();
/// // The resubmission is served from the cache without searching.
/// assert_eq!(outcome.disposition, Disposition::CacheHit);
/// assert_eq!(outcome.result.unwrap().stats.total_proposals(), 0);
/// let stats = service.shutdown().unwrap();
/// assert_eq!(stats.cache_hits, 1);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    cache_path: Option<PathBuf>,
}

impl Service {
    /// Start the service: load the persistent cache (when configured and
    /// present), start the batch-wide budget clock, and spawn the worker
    /// threads.
    ///
    /// # Errors
    /// [`ServeError::Persist`] if a configured cache file exists but is
    /// corrupt — a damaged cache is rejected, never silently served.
    pub fn start(config: ServeConfig) -> Result<Service, ServeError> {
        // An explicit verifier object wins; otherwise the search config's
        // verifier spec (e.g. the leakage cascade) names the stage.
        let verifier_name = config
            .verifier
            .as_ref()
            .map_or_else(|| config.search.verifier.name(), |v| v.name());
        let fingerprint = PipelineFingerprint::new(&config.search, verifier_name);
        let cache = match &config.cache_path {
            Some(path) if path.exists() => RewriteCache::load(path, config.cache.clone())?,
            _ => RewriteCache::new(config.cache.clone()),
        };
        let shared = Arc::new(Shared {
            fingerprint,
            verifier: config.verifier,
            job_budget: config.job_budget,
            warm_start_max_distance: config.warm_start_max_distance,
            queue: Mutex::new(QueueState {
                pending: BinaryHeap::new(),
                jobs: HashMap::new(),
                next_id: 0,
                next_seq: 0,
                shutdown: false,
                stats: ServiceStats::default(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            batch_clock: Arc::new(BudgetClock::start(&config.batch_budget)),
            cache: Mutex::new(cache),
            subscribers: Mutex::new(Vec::new()),
            metrics: config.metrics.as_deref().map(ServeMetrics::new),
            registry: config.metrics,
            trace: config.trace,
            config: config.search,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Ok(Service {
            shared,
            workers,
            cache_path: config.cache_path,
        })
    }

    /// Submit a target with default options; returns immediately.
    pub fn submit(&self, spec: TargetSpec) -> JobId {
        self.submit_with(spec, SubmitOptions::default())
    }

    /// Submit a target with an explicit priority and/or budget; returns
    /// immediately.
    pub fn submit_with(&self, spec: TargetSpec, options: SubmitOptions) -> JobId {
        let (id, priority) = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            let id = JobId(q.next_id);
            q.next_id += 1;
            let seq = q.next_seq;
            q.next_seq += 1;
            // A caller-provided budget is used as-is (its cancel token is
            // shared with the caller); otherwise the job gets a fresh,
            // independently cancellable copy of the service template.
            let budget = options
                .budget
                .unwrap_or_else(|| self.shared.job_budget.detached());
            q.jobs.insert(
                id,
                JobRecord {
                    status: JobStatus::Queued,
                    cancel: budget.cancel_token(),
                    outcome: None,
                },
            );
            q.pending.push(PendingJob {
                seq,
                id,
                priority: options.priority,
                spec,
                budget,
                submitted: Instant::now(),
            });
            q.stats.submitted += 1;
            self.shared.work.notify_one();
            (id, options.priority)
        };
        if let Some(m) = &self.shared.metrics {
            m.submitted.inc();
            m.queue_depth.inc();
        }
        self.shared.trace_event(
            "job_submitted",
            id,
            vec![(
                "priority".to_string(),
                Value::Str(format!("{priority:?}").to_ascii_lowercase()),
            )],
        );
        self.shared.emit(JobEvent::Submitted { job: id, priority });
        id
    }

    /// The job's lifecycle state, or `None` for an unknown id.
    pub fn status(&self, job: JobId) -> Option<JobStatus> {
        let q = self.shared.queue.lock().expect("queue lock");
        q.jobs.get(&job).map(|r| r.status)
    }

    /// Block until the job finishes and return its outcome (cloned, so
    /// several callers may wait on the same job).
    ///
    /// # Errors
    /// [`ServeError::UnknownJob`] for an id this service never issued;
    /// [`ServeError::Cancelled`] if the job was cancelled while queued.
    /// A job cancelled *mid-run* instead completes with
    /// `Err(StokeError::BudgetExhausted { .. })` in its outcome.
    pub fn wait(&self, job: JobId) -> Result<JobOutcome, ServeError> {
        let mut q = self.shared.queue.lock().expect("queue lock");
        loop {
            match q.jobs.get(&job) {
                None => return Err(ServeError::UnknownJob(job)),
                Some(record) => match (&record.outcome, record.status) {
                    (Some(outcome), _) => return Ok(outcome.clone()),
                    (None, JobStatus::Cancelled) => return Err(ServeError::Cancelled(job)),
                    _ => {}
                },
            }
            q = self.shared.done.wait(q).expect("queue lock");
        }
    }

    /// Cancel a job. A queued job is withdrawn and never runs; a running
    /// job's budget is cancelled, preempting its chains at the next
    /// proposal. Returns `false` for unknown or already-finished jobs.
    pub fn cancel(&self, job: JobId) -> bool {
        let cancelled = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            match q.jobs.get_mut(&job) {
                None => return false,
                Some(record) => match record.status {
                    JobStatus::Done | JobStatus::Cancelled => return false,
                    JobStatus::Queued => {
                        record.status = JobStatus::Cancelled;
                        record.cancel.cancel();
                        q.stats.cancelled += 1;
                        self.shared.done.notify_all();
                        true
                    }
                    JobStatus::Running => {
                        record.cancel.cancel();
                        false
                    }
                },
            }
        };
        if cancelled {
            // The heap entry is left in place (a worker skips it on
            // pickup), so the queue-depth gauge is untouched here: it
            // tracks heap occupancy and drops when the entry is popped.
            if let Some(m) = &self.shared.metrics {
                m.cancelled.inc();
            }
            self.shared.trace_event("job_cancelled", job, Vec::new());
            self.shared.emit(JobEvent::Cancelled { job });
        }
        true
    }

    /// Subscribe to the service's [`JobEvent`] stream. Every subscriber
    /// receives every event from subscription time on; dropping the
    /// receiver unsubscribes.
    pub fn subscribe(&self) -> Receiver<JobEvent> {
        let (tx, rx) = mpsc::channel();
        self.shared
            .subscribers
            .lock()
            .expect("subscriber lock")
            .push(tx);
        rx
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.queue.lock().expect("queue lock").stats
    }

    /// A snapshot of the rewrite-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache lock").stats()
    }

    /// Live entries in the rewrite cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().expect("cache lock").len()
    }

    /// Stop the service: cancel still-queued jobs, wait for running jobs
    /// to finish, persist the cache (when configured), and return the
    /// final counters.
    ///
    /// # Errors
    /// [`ServeError::Persist`] if saving the cache file fails; workers
    /// are already stopped by then.
    pub fn shutdown(mut self) -> Result<ServiceStats, ServeError> {
        self.shutdown_impl()?;
        Ok(self.stats())
    }

    fn shutdown_impl(&mut self) -> Result<(), ServeError> {
        let withdrawn: Vec<JobId> = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.shutdown {
                Vec::new()
            } else {
                q.shutdown = true;
                let mut withdrawn = Vec::new();
                while let Some(job) = q.pending.pop() {
                    if let Some(m) = &self.shared.metrics {
                        m.queue_depth.dec();
                    }
                    if let Some(record) = q.jobs.get_mut(&job.id) {
                        if record.status == JobStatus::Queued {
                            record.status = JobStatus::Cancelled;
                            q.stats.cancelled += 1;
                            withdrawn.push(job.id);
                        }
                    }
                }
                withdrawn
            }
        };
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        for job in withdrawn {
            if let Some(m) = &self.shared.metrics {
                m.cancelled.inc();
            }
            self.shared.trace_event("job_cancelled", job, Vec::new());
            self.shared.emit(JobEvent::Cancelled { job });
        }
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
        if let Some(path) = &self.cache_path {
            self.shared
                .cache
                .lock()
                .expect("cache lock")
                .save(path)
                .map_err(crate::cache::PersistError::Io)?;
        }
        Ok(())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pending.pop() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).expect("queue lock");
            }
        };
        run_job(&shared, job);
    }
}

fn run_job(shared: &Arc<Shared>, job: PendingJob) {
    let PendingJob {
        id,
        spec,
        budget,
        submitted,
        ..
    } = job;
    // Popped off the heap: the queue-depth gauge drops whether the job
    // runs or was cancelled while queued.
    if let Some(m) = &shared.metrics {
        m.queue_depth.dec();
    }
    // Jobs cancelled while queued are skipped (the cancel call already
    // marked the record and emitted the event).
    {
        let mut q = shared.queue.lock().expect("queue lock");
        let record = q.jobs.get_mut(&id).expect("record exists for queued job");
        if record.status == JobStatus::Cancelled {
            return;
        }
        record.status = JobStatus::Running;
    }
    let queue_time = submitted.elapsed();
    shared.trace_event(
        "job_started",
        id,
        vec![(
            "queue_us".to_string(),
            Value::U64(queue_time.as_micros() as u64),
        )],
    );
    shared.emit(JobEvent::Started { job: id });
    let started = Instant::now();

    let key = CacheKey::for_spec(&spec, shared.fingerprint);
    let timing = TimingModel::default();

    // 1. Exact canonical hit: serve without searching.
    let exact = shared.cache.lock().expect("cache lock").lookup(&key);
    if let Some(hit) = exact {
        let rewrite = key.renaming().inverse().apply_program(&hit.rewrite);
        let result = StokeResult {
            target_latency: spec.program.static_latency(),
            rewrite_latency: rewrite.static_latency(),
            target_cycles: timing.cycles(&spec.program),
            rewrite_cycles: timing.cycles(&rewrite),
            rewrite,
            verification: hit.verification,
            stats: SearchStats::default(),
        };
        shared.emit(JobEvent::CacheHit { job: id });
        complete(
            shared,
            id,
            Disposition::CacheHit,
            Ok(result),
            queue_time,
            started.elapsed(),
        );
        return;
    }
    if let Some(m) = &shared.metrics {
        m.cache_misses.inc();
    }

    // 2. Near miss: seed synthesis from the closest cached rewrite.
    let near = if shared.warm_start_max_distance > 0 {
        shared
            .cache
            .lock()
            .expect("cache lock")
            .nearest(&key, shared.warm_start_max_distance)
    } else {
        None
    };
    let warm: Option<(Program, usize)> = near.map(|(cached, distance)| {
        (
            key.renaming().inverse().apply_program(&cached.rewrite),
            distance,
        )
    });
    if let Some((_, distance)) = &warm {
        shared.emit(JobEvent::WarmStart {
            job: id,
            distance: *distance,
        });
    }

    // 3. Full pipeline run under the composed job + batch clocks.
    let mut session = Session::new(shared.config.clone()).with_observer(Arc::new(JobObserver {
        job: id,
        shared: shared.clone(),
    }));
    if let Some(verifier) = &shared.verifier {
        session = session.with_verifier(verifier.clone());
    }
    if let Some(registry) = &shared.registry {
        session = session.with_metrics(registry.clone());
    }
    if let Some(sink) = &shared.trace {
        session = session.with_trace(sink.clone());
    }
    let clock = BudgetClock::start_with_parent(&budget, shared.batch_clock.clone());
    let mut request = RunRequest::new()
        .under_clock(&clock)
        .for_target(id.value() as usize);
    if let Some((program, _)) = &warm {
        request = request.warm_start(program);
    }
    let result = session.run_request(&spec, request);

    if let Ok(found) = &result {
        // Only fully completed results are cached: a partial result's
        // rewrite passed fewer guarantees than the fingerprint claims.
        // TargetReturned results are still cached — "no improvement
        // exists within this effort" is exactly as reusable.
        shared.cache.lock().expect("cache lock").insert(
            &key,
            &found.rewrite,
            found.verification.clone(),
        );
    }
    let disposition = match warm {
        Some((_, distance)) => Disposition::WarmStart { distance },
        None => Disposition::ColdSearch,
    };
    complete(
        shared,
        id,
        disposition,
        result,
        queue_time,
        started.elapsed(),
    );
}

fn complete(
    shared: &Arc<Shared>,
    id: JobId,
    disposition: Disposition,
    result: Result<StokeResult, StokeError>,
    queue_time: Duration,
    run_time: Duration,
) {
    let failed = result.is_err();
    {
        let mut q = shared.queue.lock().expect("queue lock");
        if failed {
            q.stats.failed += 1;
        } else {
            q.stats.completed += 1;
        }
        match disposition {
            Disposition::CacheHit => q.stats.cache_hits += 1,
            Disposition::WarmStart { .. } => q.stats.warm_starts += 1,
            Disposition::ColdSearch => q.stats.cold_searches += 1,
        }
        let record = q.jobs.get_mut(&id).expect("record exists");
        record.status = JobStatus::Done;
        record.outcome = Some(JobOutcome {
            job: id,
            disposition,
            result,
            queue_time,
            run_time,
        });
        shared.done.notify_all();
    }
    if let Some(m) = &shared.metrics {
        if failed {
            m.failed.inc();
        } else {
            m.completed.inc();
        }
        match disposition {
            Disposition::CacheHit => m.cache_hits.inc(),
            Disposition::WarmStart { .. } => m.warm_starts.inc(),
            Disposition::ColdSearch => m.cold_searches.inc(),
        }
        m.queue_seconds.observe(queue_time.as_secs_f64());
        m.run_seconds.observe(run_time.as_secs_f64());
    }
    let disposition_name = match disposition {
        Disposition::CacheHit => "cache_hit",
        Disposition::WarmStart { .. } => "warm_start",
        Disposition::ColdSearch => "cold_search",
    };
    shared.trace_event(
        if failed {
            "job_failed"
        } else {
            "job_completed"
        },
        id,
        vec![
            (
                "disposition".to_string(),
                Value::Str(disposition_name.to_string()),
            ),
            (
                "queue_us".to_string(),
                Value::U64(queue_time.as_micros() as u64),
            ),
            (
                "run_us".to_string(),
                Value::U64(run_time.as_micros() as u64),
            ),
        ],
    );
    shared.emit(if failed {
        JobEvent::Failed { job: id }
    } else {
        JobEvent::Completed {
            job: id,
            disposition,
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(seq: u64, priority: Priority) -> PendingJob {
        PendingJob {
            seq,
            id: JobId(seq),
            priority,
            spec: TargetSpec::with_gprs(
                "movq rdi, rax".parse().unwrap(),
                &[stoke_x86::Gpr::Rdi],
                &[stoke_x86::Gpr::Rax],
            ),
            budget: Budget::unlimited(),
            submitted: Instant::now(),
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(pending(0, Priority::Normal));
        heap.push(pending(1, Priority::Low));
        heap.push(pending(2, Priority::High));
        heap.push(pending(3, Priority::Normal));
        heap.push(pending(4, Priority::High));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|j| j.seq).collect();
        assert_eq!(order, vec![2, 4, 0, 3, 1]);
    }
}
