//! Canonical cache keys for submitted targets.
//!
//! A [`CacheKey`] is a line-oriented canonical serialization of a
//! [`TargetSpec`] under a fixed evaluation pipeline: the program is
//! immediate-normalized and alpha-renamed into canonical register order
//! (see [`stoke_x86::canon`]), the interface (inputs and live-outs) is
//! expressed in canonical registers, and the whole text is prefixed with a
//! fingerprint of the pipeline configuration — opcode pool, cost model,
//! verifier, backend and correctness weights — so a rewrite proven under
//! one pipeline is never served to a submission that demands different
//! guarantees.
//!
//! Lookups compare full key texts, so two keys collide only if their
//! canonical serializations are byte-identical — semantically different
//! programs with distinct canonical forms *cannot* alias.

use std::collections::BTreeSet;
use stoke::{BackendSpec, Config, InputKind, TargetSpec};
use stoke_x86::canon::{canonicalize, pinned_registers, Renaming};
use stoke_x86::{Gpr, Program};

/// 64-bit FNV-1a over a byte string: tiny, dependency-free, and stable
/// across runs — exactly what a persisted cache fingerprint needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fingerprint of everything about the evaluation pipeline that affects
/// which rewrites are acceptable: the opcode/immediate/register pools, the
/// cost model, the verifier, the execution backend, the equality metric
/// and its weights, and the test-suite size. Two sessions with the same
/// fingerprint make interchangeable correctness claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineFingerprint(u64);

impl PipelineFingerprint {
    /// Fingerprint a configuration plus the name of the verifier in use
    /// (`"cascade"` for the session default).
    pub fn new(config: &Config, verifier_name: &str) -> PipelineFingerprint {
        let backend = match config.backend {
            BackendSpec::Interp => "interp",
            BackendSpec::Prepared => "prepared",
            BackendSpec::Batched => "batched",
            BackendSpec::Incremental => "incremental",
        };
        let mut text = String::new();
        text.push_str("backend=");
        text.push_str(backend);
        text.push_str(";cost=");
        text.push_str(config.cost_model.synthesis_model().name());
        text.push('/');
        text.push_str(config.cost_model.optimization_model().name());
        text.push_str(";verifier=");
        text.push_str(verifier_name);
        // The spec Debug forms carry the parameters the names elide: the
        // constant-time penalty weight, the leakage check, custom stages.
        text.push_str(&format!(
            ";costspec={:?};verifierspec={:?};strip={}",
            config.cost_model, config.verifier, config.strip_dead_code
        ));
        text.push_str(&format!(
            ";eq={:?};w={},{},{},{};tests={}",
            config.eq_metric, config.wsf, config.wfp, config.wur, config.wm, config.num_testcases
        ));
        text.push_str(";ops=");
        for op in &config.opcode_pool {
            text.push_str(&op.name());
            text.push(',');
        }
        text.push_str(";imms=");
        for imm in &config.immediate_pool {
            text.push_str(&format!("{imm},"));
        }
        text.push_str(";regs=");
        for reg in &config.register_pool {
            text.push_str(reg.name64());
            text.push(',');
        }
        PipelineFingerprint(fnv1a64(text.as_bytes()))
    }

    /// The raw 64-bit fingerprint value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// The canonical cache key of one submission. See the module docs.
#[derive(Debug, Clone)]
pub struct CacheKey {
    text: String,
    iface: String,
    prog_lines: Vec<String>,
    renaming: Renaming,
    pinned: [bool; 16],
}

impl CacheKey {
    /// Canonicalize a submission under `fingerprint`.
    pub fn for_spec(spec: &TargetSpec, fingerprint: PipelineFingerprint) -> CacheKey {
        let tail = interface_tail(spec);
        let (canon, renaming) = canonicalize(&spec.program, &tail);
        let pinned = pinned_registers(&spec.program);

        let mut iface = format!("pipeline {:016x}\n", fingerprint.value());
        // Input lines in canonical register order, so permuting the input
        // list (or renaming registers) leaves the serialization unchanged.
        let mut inputs: Vec<(usize, String)> = spec
            .inputs
            .iter()
            .map(|input| {
                let canon_reg = renaming.apply_gpr(input.reg);
                let mut line = match input.kind {
                    InputKind::Value { mask } => {
                        format!("in {} val {mask:016x}", canon_reg.name64())
                    }
                    InputKind::Pointer { len, elem_mask } => {
                        format!("in {} ptr {len} {elem_mask:016x}", canon_reg.name64())
                    }
                };
                if input.secret {
                    line.push_str(" secret");
                }
                (canon_reg.index(), line)
            })
            .collect();
        inputs.sort();
        for (_, line) in inputs {
            iface.push_str(&line);
            iface.push('\n');
        }
        let out_gprs: BTreeSet<usize> = spec
            .live_out
            .gprs
            .iter()
            .map(|g| renaming.apply_gpr(*g).index())
            .collect();
        for idx in out_gprs {
            iface.push_str(&format!("out {}\n", Gpr::from_index(idx).name64()));
        }
        for xmm in &spec.live_out.xmms {
            iface.push_str(&format!("outx xmm{}\n", xmm.index()));
        }
        for flag in &spec.live_out.flags {
            iface.push_str(&format!("outf {flag}\n"));
        }

        let prog_lines: Vec<String> = canon.iter().map(|i| i.to_string()).collect();
        let mut text = String::from("stoke-serve key v1\n");
        text.push_str(&iface);
        text.push_str("prog\n");
        for line in &prog_lines {
            text.push_str(line);
            text.push('\n');
        }
        CacheKey {
            text,
            iface,
            prog_lines,
            renaming,
            pinned,
        }
    }

    /// The full canonical serialization — the map key. Byte-equal texts
    /// mean the same search problem under the same pipeline.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The pipeline + interface section (everything but the program
    /// body). Near-miss warm starts require byte-equal interfaces.
    pub fn interface(&self) -> &str {
        &self.iface
    }

    /// The canonical program, one line per instruction — the unit of the
    /// near-miss edit distance.
    pub fn program_lines(&self) -> &[String] {
        &self.prog_lines
    }

    /// The renaming from submitter registers to canonical registers.
    /// Apply its [`inverse`](Renaming::inverse) to map cached canonical
    /// rewrites back into the submitter's register space.
    pub fn renaming(&self) -> &Renaming {
        &self.renaming
    }

    /// Whether `rewrite` (in submitter register space) can be stored
    /// canonically under this key: every register it uses *implicitly*
    /// must be pinned by the target too, otherwise a different submitter's
    /// inverse renaming could move an implicit register and corrupt the
    /// rewrite's semantics.
    pub fn admits_rewrite(&self, rewrite: &Program) -> bool {
        let needed = pinned_registers(rewrite);
        needed
            .iter()
            .enumerate()
            .all(|(i, pinned)| !pinned || self.pinned[i])
    }

    /// `rewrite` (submitter space) expressed in canonical registers.
    pub fn canonical_rewrite(&self, rewrite: &Program) -> Program {
        self.renaming.apply_program(rewrite)
    }
}

/// The interface registers a canonical renaming must order even when they
/// never appear in the program body: input registers first (sorted by
/// their serialized kind and live-out membership, which is exactly the
/// information the key records about them, so any tie is a true symmetry),
/// then remaining live-out registers in encoding order.
fn interface_tail(spec: &TargetSpec) -> Vec<Gpr> {
    let mut inputs: Vec<(String, bool, usize, Gpr)> = spec
        .inputs
        .iter()
        .enumerate()
        .map(|(pos, input)| {
            let mut descr = match input.kind {
                InputKind::Value { mask } => format!("val {mask:016x}"),
                InputKind::Pointer { len, elem_mask } => format!("ptr {len} {elem_mask:016x}"),
            };
            if input.secret {
                descr.push_str(" secret");
            }
            (
                descr,
                spec.live_out.gprs.contains(&input.reg),
                pos,
                input.reg,
            )
        })
        .collect();
    // Position is the last tie-breaker: ties on (kind, live-out) are fully
    // symmetric, so keeping submission order there cannot affect the key.
    inputs.sort();
    let mut tail: Vec<Gpr> = inputs.into_iter().map(|(_, _, _, g)| g).collect();
    for g in &spec.live_out.gprs {
        if !tail.contains(g) {
            tail.push(*g);
        }
    }
    tail
}

/// Levenshtein distance between two canonical programs, measured in
/// whole-instruction insertions/deletions/substitutions, with an early
/// exit once the distance provably exceeds `max`. Returns `None` when the
/// programs are farther apart than `max`.
pub fn edit_distance_within(a: &[String], b: &[String], max: usize) -> Option<usize> {
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut row = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        row[0] = i + 1;
        let mut row_min = row[0];
        for (j, bj) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ai != bj);
            row[j + 1] = sub.min(prev[j + 1] + 1).min(row[j] + 1);
            row_min = row_min.min(row[j + 1]);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut row);
    }
    (prev[b.len()] <= max).then_some(prev[b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_tracks_analysis_options() {
        use stoke::{CostModelSpec, VerifierSpec};
        let base = Config::default();
        let fp = |c: &Config| PipelineFingerprint::new(c, "cascade");
        let ct = Config {
            cost_model: CostModelSpec::ConstantTime { penalty: 16.0 },
            ..base.clone()
        };
        assert_ne!(fp(&base), fp(&ct), "cost-model spec must be hashed");
        let ct_other_weight = Config {
            cost_model: CostModelSpec::ConstantTime { penalty: 8.0 },
            ..base.clone()
        };
        assert_ne!(
            fp(&ct),
            fp(&ct_other_weight),
            "penalty weight must be hashed"
        );
        let leakage = Config {
            verifier: VerifierSpec::LeakageCascade,
            ..base.clone()
        };
        assert_ne!(fp(&base), fp(&leakage), "verifier spec must be hashed");
        let strip = Config {
            strip_dead_code: true,
            ..base.clone()
        };
        assert_ne!(fp(&base), fp(&strip), "dead-code stripping must be hashed");
        // And a fingerprint flip propagates into the full cache key.
        let spec = TargetSpec::new(
            "movq rdi, rax".parse().unwrap(),
            vec![stoke::InputSpec::value64(Gpr::Rdi)],
            stoke_x86::flow::LocSet::from_gprs([Gpr::Rax]),
        );
        assert_ne!(
            CacheKey::for_spec(&spec, fp(&base)).text(),
            CacheKey::for_spec(&spec, fp(&leakage)).text(),
            "flipping the leakage option must change the cache key"
        );
    }

    #[test]
    fn fingerprint_separates_every_backend() {
        // Cached rewrites carry the backend they were searched under;
        // keys must never alias across backends (in particular not across
        // `Batched` and the checkpoint-reusing `Incremental`).
        let fp = |c: &Config| PipelineFingerprint::new(c, "cascade");
        let configs: Vec<Config> = [
            BackendSpec::Interp,
            BackendSpec::Prepared,
            BackendSpec::Batched,
            BackendSpec::Incremental,
        ]
        .into_iter()
        .map(|backend| Config {
            backend,
            ..Config::default()
        })
        .collect();
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert_ne!(
                    fp(a),
                    fp(b),
                    "backends {:?} and {:?} must not share a fingerprint",
                    a.backend,
                    b.backend
                );
            }
        }
    }

    #[test]
    fn secret_annotation_changes_the_cache_key() {
        use stoke::InputSpec;
        use stoke_x86::flow::LocSet;
        let program: Program = "movq rdi, rax".parse().unwrap();
        let out = LocSet::from_gprs([Gpr::Rax]);
        let public = TargetSpec::new(
            program.clone(),
            vec![InputSpec::value64(Gpr::Rdi)],
            out.clone(),
        );
        let secret = TargetSpec::new(program, vec![InputSpec::value64(Gpr::Rdi).secret()], out);
        let fp = PipelineFingerprint::new(&Config::default(), "cascade");
        assert_ne!(
            CacheKey::for_spec(&public, fp).text(),
            CacheKey::for_spec(&secret, fp).text(),
            "secret annotation must change the cache key"
        );
    }

    #[test]
    fn edit_distance_counts_line_edits() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "z".to_string(), "w".to_string()];
        assert_eq!(edit_distance_within(&a, &b, 4), Some(2));
        assert_eq!(edit_distance_within(&a, &a, 0), Some(0));
        assert_eq!(edit_distance_within(&a, &b, 1), None);
    }
}
