//! Symbolic machine state: every register, flag and memory location holds
//! a bit-vector term rather than a concrete value.

use std::collections::HashMap;
use stoke_solver::{TermId, TermPool};
use stoke_x86::{Flag, Gpr, Reg, Width, Xmm};

/// A symbolic 128-bit SSE value, stored as (low, high) 64-bit terms.
pub type SymXmm = (TermId, TermId);

/// The symbolic memory model.
///
/// Following §5.2 of the paper, stack addresses (constant offsets from
/// `rsp`) are treated as *named locations*, which keeps the expensive
/// part of the memory theory away from the common case of `llvm -O0`
/// stack traffic. All other accesses go through a byte-granular
/// write-history: a load is lowered to an if-then-else chain over all
/// previous stores (most recent first), falling back to an uninterpreted
/// "initial memory" byte.
#[derive(Debug, Clone)]
pub struct SymMemory {
    /// Named stack slots, keyed by displacement from the initial rsp.
    stack: HashMap<i64, TermId>,
    /// Byte-granular write history for non-stack memory: (address, byte).
    writes: Vec<(TermId, TermId)>,
    /// Tag distinguishing the two programs' initial-memory functions must
    /// NOT differ, so both use the same UF id.
    prefix: String,
}

/// The uninterpreted-function identifier used for initial memory bytes.
pub const UF_MEM_INIT: u32 = 1000;
/// Base identifier for uninterpreted multiplication/division functions.
pub const UF_MULLO64: u32 = 1001;
/// High half of an unsigned 64-bit widening multiply.
pub const UF_MULHI_U64: u32 = 1002;
/// High half of a signed 64-bit widening multiply.
pub const UF_MULHI_S64: u32 = 1003;
/// Unsigned division (quotient).
pub const UF_DIV_QUOT: u32 = 1004;
/// Unsigned division (remainder).
pub const UF_DIV_REM: u32 = 1005;
/// Signed division (quotient).
pub const UF_IDIV_QUOT: u32 = 1006;
/// Signed division (remainder).
pub const UF_IDIV_REM: u32 = 1007;

impl SymMemory {
    /// An empty memory with no recorded writes.
    pub fn new(prefix: impl Into<String>) -> SymMemory {
        SymMemory {
            stack: HashMap::new(),
            writes: Vec::new(),
            prefix: prefix.into(),
        }
    }

    /// Read one byte at a symbolic address.
    pub fn load_byte(&self, pool: &mut TermPool, addr: TermId) -> TermId {
        // Fallback: the initial contents of memory at `addr`.
        let mut value = pool.uf(UF_MEM_INIT, vec![addr], 8);
        // Apply the write history oldest-to-newest so the newest wins.
        for (waddr, wbyte) in &self.writes {
            let same = pool.eq(addr, *waddr);
            value = pool.ite(same, *wbyte, value);
        }
        value
    }

    /// Write one byte at a symbolic address.
    pub fn store_byte(&mut self, addr: TermId, byte: TermId) {
        self.writes.push((addr, byte));
    }

    /// Read `bytes` bytes little-endian at a symbolic address, producing a
    /// term of width `8 * bytes` (at most 8 bytes).
    pub fn load(&self, pool: &mut TermPool, addr: TermId, bytes: u64) -> TermId {
        assert!((1..=8).contains(&bytes));
        let mut acc: Option<TermId> = None;
        for i in 0..bytes {
            let off = pool.constant(64, i);
            let a = pool.add(addr, off);
            let byte = self.load_byte(pool, a);
            acc = Some(match acc {
                None => byte,
                Some(lower) => pool.concat(byte, lower),
            });
        }
        acc.expect("at least one byte")
    }

    /// Store a term of width `8 * bytes` little-endian at a symbolic
    /// address.
    pub fn store(&mut self, pool: &mut TermPool, addr: TermId, value: TermId, bytes: u64) {
        assert!((1..=8).contains(&bytes));
        for i in 0..bytes {
            let off = pool.constant(64, i);
            let a = pool.add(addr, off);
            let byte = pool.extract((8 * i + 7) as u32, (8 * i) as u32, value);
            self.store_byte(a, byte);
        }
    }

    /// Read a named stack slot (8 bytes wide) at the given displacement
    /// from the initial stack pointer. Unwritten slots read as a fresh
    /// symbolic initial value shared between target and rewrite.
    pub fn load_stack(&mut self, pool: &mut TermPool, disp: i64) -> TermId {
        if let Some(t) = self.stack.get(&disp) {
            return *t;
        }
        let t = pool.var(64, format!("stack_init_{}", disp));
        self.stack.insert(disp, t);
        t
    }

    /// Write a named stack slot.
    pub fn store_stack(&mut self, disp: i64, value: TermId) {
        self.stack.insert(disp, value);
    }

    /// The set of (address, byte) pairs written through the general
    /// (non-stack) memory path.
    pub fn writes(&self) -> &[(TermId, TermId)] {
        &self.writes
    }

    /// The named stack slots and their final values.
    pub fn stack_slots(&self) -> impl Iterator<Item = (i64, TermId)> + '_ {
        self.stack.iter().map(|(d, t)| (*d, *t))
    }

    /// The prefix used when naming auxiliary variables.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }
}

/// A full symbolic machine state.
#[derive(Debug, Clone)]
pub struct SymState {
    gprs: [TermId; 16],
    xmms: [SymXmm; 16],
    flags: [TermId; 5],
    /// The symbolic memory.
    pub memory: SymMemory,
}

impl SymState {
    /// An initial state whose registers and flags are fresh variables
    /// named `in_<reg>` / `in_<flag>`. Both the target and the rewrite
    /// are executed from states built this way, so the shared variable
    /// names make their inputs identical.
    pub fn initial(pool: &mut TermPool, prefix: impl Into<String>) -> SymState {
        let prefix = prefix.into();
        let gprs =
            std::array::from_fn(|i| pool.var(64, format!("in_{}", Gpr::from_index(i).name64())));
        let xmms = std::array::from_fn(|i| {
            (
                pool.var(64, format!("in_xmm{}_lo", i)),
                pool.var(64, format!("in_xmm{}_hi", i)),
            )
        });
        let flags = std::array::from_fn(|i| pool.var(1, format!("in_{}", Flag::ALL[i].name())));
        SymState {
            gprs,
            xmms,
            flags,
            memory: SymMemory::new(prefix),
        }
    }

    /// Read a register view as a term of the view's width.
    pub fn read_reg(&self, pool: &mut TermPool, r: Reg) -> TermId {
        let full = self.gprs[r.parent().index()];
        match r.width() {
            Width::Q => full,
            w => pool.extract(w.bits() - 1, 0, full),
        }
    }

    /// Read the full 64-bit term of a register.
    pub fn read_gpr64(&self, g: Gpr) -> TermId {
        self.gprs[g.index()]
    }

    /// Write a register view with the same merge semantics as the
    /// concrete emulator.
    pub fn write_reg(&mut self, pool: &mut TermPool, r: Reg, value: TermId) {
        let idx = r.parent().index();
        let old = self.gprs[idx];
        let new = match r.width() {
            Width::Q => value,
            Width::L => {
                let v32 = Self::coerce(pool, value, 32);
                pool.zero_ext(64, v32)
            }
            Width::W => {
                let v16 = Self::coerce(pool, value, 16);
                let hi = pool.extract(63, 16, old);
                pool.concat(hi, v16)
            }
            Width::B => {
                let v8 = Self::coerce(pool, value, 8);
                let hi = pool.extract(63, 8, old);
                pool.concat(hi, v8)
            }
        };
        self.gprs[idx] = new;
    }

    /// Overwrite the full 64-bit term of a register.
    pub fn set_gpr64(&mut self, g: Gpr, value: TermId) {
        self.gprs[g.index()] = value;
    }

    fn coerce(pool: &mut TermPool, value: TermId, width: u32) -> TermId {
        let w = pool.width(value);
        if w == width {
            value
        } else if w > width {
            pool.extract(width - 1, 0, value)
        } else {
            pool.zero_ext(width, value)
        }
    }

    /// Read an SSE register.
    pub fn read_xmm(&self, x: Xmm) -> SymXmm {
        self.xmms[x.index()]
    }

    /// Write an SSE register.
    pub fn write_xmm(&mut self, x: Xmm, value: SymXmm) {
        self.xmms[x.index()] = value;
    }

    /// Read a flag (1-bit term).
    pub fn read_flag(&self, f: Flag) -> TermId {
        self.flags[f.index()]
    }

    /// Write a flag (1-bit term).
    pub fn write_flag(&mut self, f: Flag, value: TermId) {
        self.flags[f.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_shares_input_variables() {
        let mut pool = TermPool::new();
        let a = SymState::initial(&mut pool, "t");
        let b = SymState::initial(&mut pool, "r");
        // Same variable names => same terms: target and rewrite see the
        // same inputs.
        assert_eq!(a.read_gpr64(Gpr::Rdi), b.read_gpr64(Gpr::Rdi));
        assert_eq!(a.read_flag(Flag::Cf), b.read_flag(Flag::Cf));
    }

    #[test]
    fn register_write_merge_semantics() {
        let mut pool = TermPool::new();
        let mut s = SymState::initial(&mut pool, "t");
        let c = pool.constant(32, 0xdead_beef);
        s.write_reg(&mut pool, Gpr::Rax.view(Width::L), c);
        // Evaluating the 64-bit rax term with arbitrary inputs gives the
        // zero-extended value.
        let mut env = std::collections::HashMap::new();
        env.insert("in_rax".to_string(), 0xffff_ffff_0000_0000u64);
        assert_eq!(pool.eval(s.read_gpr64(Gpr::Rax), &env), 0xdead_beef);

        let c8 = pool.constant(8, 0xaa);
        s.write_reg(&mut pool, Gpr::Rax.view(Width::B), c8);
        assert_eq!(pool.eval(s.read_gpr64(Gpr::Rax), &env), 0xdead_beaa);
    }

    #[test]
    fn stack_slots_are_named_locations() {
        let mut pool = TermPool::new();
        let mut m = SymMemory::new("t");
        let v = pool.constant(64, 42);
        m.store_stack(-8, v);
        assert_eq!(m.load_stack(&mut pool, -8), v);
        // A different slot is independent and initially symbolic.
        let other = m.load_stack(&mut pool, -16);
        assert_ne!(other, v);
    }

    #[test]
    fn memory_read_over_write() {
        let mut pool = TermPool::new();
        let mut m = SymMemory::new("t");
        let addr = pool.var(64, "a");
        let val = pool.constant(32, 0x0403_0201);
        m.store(&mut pool, addr, val, 4);
        let back = m.load(&mut pool, addr, 4);
        // Evaluate: the load must return the stored value regardless of the
        // initial memory contents (the UF fallback never fires because the
        // addresses match syntactically after constant folding).
        let mut env = std::collections::HashMap::new();
        env.insert("a".to_string(), 0x1000u64);
        assert_eq!(pool.eval(back, &env), 0x0403_0201);
    }
}
