//! # stoke-verify
//!
//! The symbolic validator of the STOKE reproduction (§5.2 of the paper):
//! loop-free code sequences are converted into quantifier-free bit-vector
//! formulae by symbolic execution ([`semantics`]) over a shared initial
//! machine state ([`symstate`]), and a single satisfiability query decides
//! whether any initial state makes the live outputs differ ([`equiv`]).
//! Counterexamples are returned to the search layer, where they become new
//! test cases (the refinement loop of Equation 12).
//!
//! The underlying decision procedure is `stoke-solver`, this repository's
//! replacement for the STP theorem prover; 64-bit widening multiplication
//! and division are modelled as uninterpreted functions exactly as the
//! paper describes.
//!
//! ```
//! use stoke_verify::Validator;
//! use stoke_x86::{flow::LocSet, Gpr, Program};
//!
//! // Commuting the operands of an addition preserves equivalence:
//! let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
//! let rewrite: Program = "movq rsi, rax\naddq rdi, rax".parse().unwrap();
//! let validator = Validator::new(LocSet::from_gprs([Gpr::Rax]));
//! assert!(validator.prove(&target, &rewrite).0.is_equivalent());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod equiv;
pub mod semantics;
pub mod symstate;

pub use equiv::{Counterexample, EquivResult, ValidationStats, Validator};
pub use semantics::SymExecutor;
pub use symstate::{SymMemory, SymState, SymXmm};
