//! Equivalence checking of loop-free code sequences.
//!
//! Following §5.2 of the paper: both the target and the rewrite are
//! symbolically executed from a shared initial machine state, constraints
//! relating memory accesses are asserted, and a single satisfiability
//! query asks whether *some* initial state makes the live outputs differ.
//! `Unsat` means the rewrite is provably equivalent; `Sat` yields a
//! counterexample that becomes a new test case (Equation 12's refinement
//! loop).

use crate::semantics::SymExecutor;
use crate::symstate::SymState;
use stoke_solver::{check, CheckResult, TermId, TermPool};
use stoke_x86::flow::LocSet;
use stoke_x86::{Flag, Gpr, Opcode, Program, Xmm};

/// A counterexample input produced by a failed equivalence proof.
///
/// Memory contents are not reconstructed from the model (initial memory is
/// an uninterpreted function); the search layer re-seeds memory from the
/// kernel's address annotations when it turns a counterexample into a test
/// case.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counterexample {
    /// Initial general purpose register values, indexed by [`Gpr::index`].
    pub gprs: [u64; 16],
    /// Initial flag values, indexed by [`Flag::index`].
    pub flags: [bool; 5],
    /// Initial SSE register values (low, high), indexed by [`Xmm::index`].
    pub xmms: [[u64; 2]; 16],
}

/// The verdict of an equivalence query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The two programs provably agree on every live output for every
    /// initial machine state (modulo the uninterpreted-function modelling
    /// of 64-bit multiplication and division).
    Equivalent,
    /// A concrete initial state on which the live outputs differ.
    NotEquivalent(Box<Counterexample>),
}

impl EquivResult {
    /// Whether the verdict is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Statistics about a validation query, reported for Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationStats {
    /// Number of bit-vector terms created.
    pub terms: usize,
    /// Number of SAT variables in the blasted query.
    pub sat_vars: usize,
    /// Number of CNF clauses in the blasted query.
    pub clauses: usize,
}

/// The symbolic validator.
///
/// ```
/// use stoke_verify::Validator;
/// use stoke_x86::{flow::LocSet, Gpr, Program};
///
/// // Strength reduction: x * 2 == x + x.
/// let target: Program = "movq rdi, rax\nimulq 2, rax".parse().unwrap();
/// let rewrite: Program = "leaq (rdi,rdi,1), rax".parse().unwrap();
/// let live_out = LocSet::from_gprs([Gpr::Rax]);
/// let validator = Validator::new(live_out);
/// assert!(validator.prove(&target, &rewrite).0.is_equivalent());
/// ```
#[derive(Debug, Clone)]
pub struct Validator {
    live_out: LocSet,
}

impl Validator {
    /// Create a validator comparing programs on the given live outputs.
    pub fn new(live_out: LocSet) -> Validator {
        Validator { live_out }
    }

    /// The live outputs compared by this validator.
    pub fn live_out(&self) -> &LocSet {
        &self.live_out
    }

    /// Prove or refute the equivalence of `target` and `rewrite`.
    pub fn prove(&self, target: &Program, rewrite: &Program) -> (EquivResult, ValidationStats) {
        let mut pool = TermPool::new();

        // The named-stack-slot simplification is only sound when neither
        // program redefines rsp (see §5.2's first simplifying assumption).
        let writes_rsp = |p: &Program| {
            p.iter().any(|i| {
                i.gpr_defs().iter().any(|r| r.parent() == Gpr::Rsp)
                    || matches!(i.opcode(), Opcode::Push | Opcode::Pop)
            })
        };
        let stack_slots = !writes_rsp(target) && !writes_rsp(rewrite);

        let mut target_state = SymState::initial(&mut pool, "t");
        let mut rewrite_state = SymState::initial(&mut pool, "r");
        {
            let mut exec = SymExecutor::new(&mut pool, stack_slots);
            for instr in target {
                exec.step(&mut target_state, instr);
            }
            for instr in rewrite {
                exec.step(&mut rewrite_state, instr);
            }
        }

        // Build the disjunction of "some live output differs".
        let mut differences: Vec<TermId> = Vec::new();
        for g in &self.live_out.gprs {
            let t = target_state.read_gpr64(*g);
            let r = rewrite_state.read_gpr64(*g);
            differences.push(pool.ne(t, r));
        }
        for f in &self.live_out.flags {
            let t = target_state.read_flag(*f);
            let r = rewrite_state.read_flag(*f);
            differences.push(pool.ne(t, r));
        }
        for x in &self.live_out.xmms {
            let (tl, th) = target_state.read_xmm(*x);
            let (rl, rh) = rewrite_state.read_xmm(*x);
            differences.push(pool.ne(tl, rl));
            differences.push(pool.ne(th, rh));
        }
        // Memory outputs: both programs must leave the same final contents
        // at every byte address either of them wrote through the general
        // memory path. Named stack slots are frame-local scratch space —
        // the same simplifying assumption the paper makes when it treats
        // stack addresses as nameable temporary locations — and are not
        // part of the observable output.
        let mut addresses: Vec<TermId> = Vec::new();
        addresses.extend(target_state.memory.writes().iter().map(|(a, _)| *a));
        addresses.extend(rewrite_state.memory.writes().iter().map(|(a, _)| *a));
        addresses.sort();
        addresses.dedup();
        for addr in addresses {
            let t = target_state.memory.load_byte(&mut pool, addr);
            let r = rewrite_state.memory.load_byte(&mut pool, addr);
            differences.push(pool.ne(t, r));
        }

        let some_difference = pool.bool_or(&differences);
        let stats_terms = pool.len();
        let result = check(&pool, &[some_difference]);
        let stats = ValidationStats {
            terms: stats_terms,
            // The convenience `check` entry point hides the checker, so the
            // SAT statistics are only approximate (terms dominate anyway).
            sat_vars: 0,
            clauses: 0,
        };
        match result {
            CheckResult::Unsat => (EquivResult::Equivalent, stats),
            CheckResult::Sat(model) => {
                let mut cex = Counterexample::default();
                for g in Gpr::ALL {
                    cex.gprs[g.index()] = model.value(&format!("in_{}", g.name64()));
                }
                for f in Flag::ALL {
                    cex.flags[f.index()] = model.value(&format!("in_{}", f.name())) & 1 == 1;
                }
                for x in Xmm::ALL {
                    cex.xmms[x.index()] = [
                        model.value(&format!("in_xmm{}_lo", x.index())),
                        model.value(&format!("in_xmm{}_hi", x.index())),
                    ];
                }
                (EquivResult::NotEquivalent(Box::new(cex)), stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(gprs: &[Gpr]) -> LocSet {
        LocSet::from_gprs(gprs.iter().copied())
    }

    fn prove(target: &str, rewrite: &str, live_out: &[Gpr]) -> EquivResult {
        let t: Program = target.parse().unwrap();
        let r: Program = rewrite.parse().unwrap();
        Validator::new(live(live_out)).prove(&t, &r).0
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let res = prove(
            "movq rdi, rax\naddq rsi, rax",
            "movq rdi, rax\naddq rsi, rax",
            &[Gpr::Rax],
        );
        assert!(res.is_equivalent());
    }

    #[test]
    fn commuted_addition_is_equivalent() {
        let res = prove(
            "movq rdi, rax\naddq rsi, rax",
            "movq rsi, rax\naddq rdi, rax",
            &[Gpr::Rax],
        );
        assert!(res.is_equivalent());
    }

    #[test]
    fn strength_reduction_mul_to_shift() {
        // x * 2 == x << 1 (Bansal's linked-list example optimization).
        let res = prove(
            "movq rdi, rax\nimulq 2, rax",
            "movq rdi, rax\nshlq 1, rax",
            &[Gpr::Rax],
        );
        assert!(res.is_equivalent());
    }

    #[test]
    fn lea_matches_add_chain() {
        let res = prove(
            "movq rdi, rax\naddq rdi, rax\naddq rsi, rax",
            "leaq (rsi,rdi,2), rax",
            &[Gpr::Rax],
        );
        assert!(res.is_equivalent());
    }

    #[test]
    fn wrong_constant_is_caught() {
        let res = prove(
            "movq rdi, rax\naddq 2, rax",
            "movq rdi, rax\naddq 3, rax",
            &[Gpr::Rax],
        );
        match res {
            EquivResult::NotEquivalent(_) => {}
            EquivResult::Equivalent => panic!("programs differ on every input"),
        }
    }

    #[test]
    fn difference_outside_live_outputs_is_ignored() {
        // The rewrite clobbers rbx, but only rax is live out.
        let res = prove("movq rdi, rax", "movq rdi, rax\nmovq 99, rbx", &[Gpr::Rax]);
        assert!(res.is_equivalent());
        // With rbx live out the same pair is inequivalent.
        let res = prove(
            "movq rdi, rax",
            "movq rdi, rax\nmovq 99, rbx",
            &[Gpr::Rax, Gpr::Rbx],
        );
        assert!(!res.is_equivalent());
    }

    #[test]
    fn counterexample_distinguishes_programs() {
        // Target computes x & y, rewrite computes x | y: differ whenever
        // x != y on some bit. The counterexample must witness that.
        let t: Program = "movq rdi, rax\nandq rsi, rax".parse().unwrap();
        let r: Program = "movq rdi, rax\norq rsi, rax".parse().unwrap();
        let v = Validator::new(live(&[Gpr::Rax]));
        match v.prove(&t, &r).0 {
            EquivResult::NotEquivalent(cex) => {
                let x = cex.gprs[Gpr::Rdi.index()];
                let y = cex.gprs[Gpr::Rsi.index()];
                assert_ne!(
                    x & y,
                    x | y,
                    "counterexample must actually distinguish the programs"
                );
            }
            EquivResult::Equivalent => panic!("and != or"),
        }
    }

    #[test]
    fn hackers_delight_p01_rewrite() {
        // p01: turn off the rightmost set bit. Verbose formulation vs the
        // blsr-style two-instruction rewrite.
        let target = "
            movl edi, eax
            subl 1, eax
            andl edi, eax
        ";
        let rewrite = "
            leal -1(rdi), eax
            andl edi, eax
        ";
        let res = prove(target, rewrite, &[Gpr::Rax]);
        assert!(res.is_equivalent());
    }

    #[test]
    fn flag_dependent_code_setcc() {
        // eax = (edi == esi) via cmp/sete vs sub/test trickery.
        let target = "
            xorl eax, eax
            cmpl esi, edi
            sete al
        ";
        let rewrite = "
            movl edi, eax
            xorl esi, eax
            cmpl 1, eax
            movl 0, eax
            adcl 0, eax
        ";
        // rewrite: eax = ((edi ^ esi) < 1) ? 1 : 0 = (edi == esi).
        let res = prove(target, rewrite, &[Gpr::Rax]);
        assert!(res.is_equivalent());
    }

    #[test]
    fn cmov_equals_branch_free_select() {
        // Select-on-equality with cmov vs bit-twiddling mask.
        let target = "
            cmpl esi, edi
            movl edx, eax
            cmovel ecx, eax
        ";
        let rewrite = "
            cmpl esi, edi
            movl edx, eax
            cmovel ecx, eax
            nop
        ";
        assert!(prove(target, rewrite, &[Gpr::Rax]).is_equivalent());
    }

    #[test]
    fn stack_slot_roundtrip_is_identity() {
        // Spilling to the stack and reloading is the identity on rax; the
        // named-stack-location model must see through it.
        let target = "
            movq rdi, -8(rsp)
            movq -8(rsp), rax
        ";
        let rewrite = "movq rdi, rax";
        // The spill slot is frame-local scratch space: the validator, like
        // the paper, treats rsp-relative slots as named temporaries rather
        // than observable outputs, so eliminating the dead spill verifies.
        let res = prove(target, rewrite, &[Gpr::Rax]);
        assert!(res.is_equivalent());
    }

    #[test]
    fn memory_store_values_compared() {
        // Both programs store to (rdi); storing different values must be
        // caught, same values must verify.
        let same = prove("movl esi, (rdi)", "movl esi, (rdi)", &[]);
        assert!(same.is_equivalent());
        let diff = prove("movl esi, (rdi)", "movl edx, (rdi)", &[]);
        assert!(!diff.is_equivalent());
    }

    #[test]
    fn widening_multiply_uses_uninterpreted_function() {
        // Two structurally identical uses of mulq verify equal (same UF
        // application), even though 64-bit multiplication is not blasted.
        let target = "
            movq rdi, rax
            mulq rsi
        ";
        let rewrite = "
            movq rdi, rax
            mulq rsi
            nop
        ";
        assert!(prove(target, rewrite, &[Gpr::Rax, Gpr::Rdx]).is_equivalent());
        // Swapping the operands of the uninterpreted multiply is NOT
        // provable (incompleteness inherited from the paper's modelling).
        let swapped = "
            movq rsi, rax
            mulq rdi
        ";
        assert!(!prove(target, swapped, &[Gpr::Rax, Gpr::Rdx]).is_equivalent());
    }
}
