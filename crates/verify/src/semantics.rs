//! Symbolic transformers for the modelled x86-64 subset.
//!
//! [`SymExecutor::step`] mirrors, term-for-term, the concrete semantics in
//! `stoke_emu::exec`; the two are kept in agreement by the randomized
//! differential tests in the workspace-level `tests/` directory. Widening
//! 64-bit multiplication and all division is modelled with uninterpreted
//! functions, exactly as the paper's validator does with STP (§5.2).

use crate::symstate::{
    SymState, SymXmm, UF_DIV_QUOT, UF_DIV_REM, UF_IDIV_QUOT, UF_IDIV_REM, UF_MULHI_S64,
    UF_MULHI_U64, UF_MULLO64,
};
use stoke_solver::{TermId, TermPool};
use stoke_x86::{
    AluOp, BitOp, Cond, Flag, Gpr, Instruction, Mem, Opcode, Operand, Reg, ShiftOp, SseBinOp,
    SseShiftOp, UnOp, Width,
};

/// Symbolic executor for straight-line code.
pub struct SymExecutor<'a> {
    pool: &'a mut TermPool,
    /// Whether rsp-relative accesses use the named-stack-slot model.
    pub stack_slots: bool,
}

impl<'a> SymExecutor<'a> {
    /// Create an executor over the given term pool.
    pub fn new(pool: &'a mut TermPool, stack_slots: bool) -> SymExecutor<'a> {
        SymExecutor { pool, stack_slots }
    }

    /// Access the underlying pool.
    pub fn pool(&mut self) -> &mut TermPool {
        self.pool
    }

    fn c(&mut self, width: u32, v: u64) -> TermId {
        self.pool.constant(width, v)
    }

    fn addr(&mut self, st: &SymState, m: &Mem) -> TermId {
        let mut acc = self.c(64, m.disp as i64 as u64);
        if let Some(b) = m.base {
            let base = st.read_gpr64(b);
            acc = self.pool.add(acc, base);
        }
        if let Some(i) = m.index {
            let idx = st.read_gpr64(i);
            let scale = self.c(64, m.scale.factor());
            let scaled = self.pool.mul(idx, scale);
            acc = self.pool.add(acc, scaled);
        }
        acc
    }

    /// Whether a memory operand is a named stack slot under the current
    /// configuration.
    fn stack_disp(&self, m: &Mem) -> Option<i64> {
        if self.stack_slots && m.base == Some(Gpr::Rsp) && m.index.is_none() {
            Some(i64::from(m.disp))
        } else {
            None
        }
    }

    fn read(&mut self, st: &mut SymState, op: &Operand, w: Width) -> TermId {
        match op {
            Operand::Reg(r) => st.read_reg(self.pool, Reg::new(r.parent(), w)),
            Operand::Imm(i) => self.c(w.bits(), *i as u64),
            Operand::Mem(m) => {
                if let Some(disp) = self.stack_disp(m) {
                    let slot = st.memory.load_stack(self.pool, disp);
                    if w == Width::Q {
                        slot
                    } else {
                        self.pool.extract(w.bits() - 1, 0, slot)
                    }
                } else {
                    let a = self.addr(st, m);
                    st.memory.load(self.pool, a, w.bytes())
                }
            }
            Operand::Xmm(x) => st.read_xmm(*x).0,
        }
    }

    fn write(&mut self, st: &mut SymState, op: &Operand, w: Width, value: TermId) {
        match op {
            Operand::Reg(r) => st.write_reg(self.pool, Reg::new(r.parent(), w), value),
            Operand::Mem(m) => {
                if let Some(disp) = self.stack_disp(m) {
                    let new = if w == Width::Q {
                        value
                    } else {
                        // Merge into the low bits of the 8-byte slot.
                        let old = st.memory.load_stack(self.pool, disp);
                        let hi = self.pool.extract(63, w.bits(), old);
                        self.pool.concat(hi, value)
                    };
                    st.memory.store_stack(disp, new);
                } else {
                    let a = self.addr(st, m);
                    st.memory.store(self.pool, a, value, w.bytes());
                }
            }
            Operand::Imm(_) | Operand::Xmm(_) => {
                unreachable!("scalar destination cannot be an immediate or xmm")
            }
        }
    }

    fn read128(&mut self, st: &mut SymState, op: &Operand) -> SymXmm {
        match op {
            Operand::Xmm(x) => st.read_xmm(*x),
            Operand::Mem(m) => {
                let a = self.addr(st, m);
                let lo = st.memory.load(self.pool, a, 8);
                let eight = self.c(64, 8);
                let ahigh = self.pool.add(a, eight);
                let hi = st.memory.load(self.pool, ahigh, 8);
                (lo, hi)
            }
            _ => unreachable!("128-bit operand must be xmm or memory"),
        }
    }

    fn write128(&mut self, st: &mut SymState, op: &Operand, value: SymXmm) {
        match op {
            Operand::Xmm(x) => st.write_xmm(*x, value),
            Operand::Mem(m) => {
                let a = self.addr(st, m);
                st.memory.store(self.pool, a, value.0, 8);
                let eight = self.c(64, 8);
                let ahigh = self.pool.add(a, eight);
                st.memory.store(self.pool, ahigh, value.1, 8);
            }
            _ => unreachable!("128-bit destination must be xmm or memory"),
        }
    }

    fn sign_bit(&mut self, w: Width, t: TermId) -> TermId {
        self.pool.extract(w.bits() - 1, w.bits() - 1, t)
    }

    fn cond(&mut self, st: &SymState, c: Cond) -> TermId {
        let cf = st.read_flag(Flag::Cf);
        let zf = st.read_flag(Flag::Zf);
        let sf = st.read_flag(Flag::Sf);
        let of = st.read_flag(Flag::Of);
        let p = &mut *self.pool;
        match c {
            Cond::E => zf,
            Cond::Ne => p.not(zf),
            Cond::A => {
                let ncf = p.not(cf);
                let nzf = p.not(zf);
                p.and(ncf, nzf)
            }
            Cond::Ae => p.not(cf),
            Cond::B => cf,
            Cond::Be => p.or(cf, zf),
            Cond::G => {
                let same = p.eq(sf, of);
                let nzf = p.not(zf);
                p.and(same, nzf)
            }
            Cond::Ge => p.eq(sf, of),
            Cond::L => p.ne(sf, of),
            Cond::Le => {
                let diff = p.ne(sf, of);
                p.or(diff, zf)
            }
            Cond::S => sf,
            Cond::Ns => p.not(sf),
        }
    }

    fn set_result_flags(&mut self, st: &mut SymState, w: Width, r: TermId) {
        let zero = self.c(w.bits(), 0);
        let zf = self.pool.eq(r, zero);
        st.write_flag(Flag::Zf, zf);
        let sf = self.sign_bit(w, r);
        st.write_flag(Flag::Sf, sf);
        // PF: even parity of the low byte.
        let mut parity = self.pool.extract(0, 0, r);
        for i in 1..8 {
            let bit = self.pool.extract(i, i, r);
            parity = self.pool.xor(parity, bit);
        }
        let pf = self.pool.not(parity);
        st.write_flag(Flag::Pf, pf);
    }

    /// Carry-out of `a + b + cin` at width `w`, where `r` is the truncated
    /// result (matches the concrete emulator's u128 computation).
    fn carry_out(&mut self, a: TermId, cin: TermId, r: TermId) -> TermId {
        let lt = self.pool.ult(r, a);
        let eq = self.pool.eq(r, a);
        let eq_and_cin = self.pool.and(eq, cin);
        self.pool.or(lt, eq_and_cin)
    }

    /// Borrow-out of `a - b - bin` at width `w`.
    fn borrow_out(&mut self, a: TermId, b: TermId, bin: TermId) -> TermId {
        let lt = self.pool.ult(a, b);
        let eq = self.pool.eq(a, b);
        let eq_and_bin = self.pool.and(eq, bin);
        self.pool.or(lt, eq_and_bin)
    }

    fn set_flags_add(
        &mut self,
        st: &mut SymState,
        w: Width,
        a: TermId,
        b: TermId,
        cin: TermId,
        r: TermId,
    ) {
        let cf = self.carry_out(a, cin, r);
        st.write_flag(Flag::Cf, cf);
        let sa = self.sign_bit(w, a);
        let sb = self.sign_bit(w, b);
        let sr = self.sign_bit(w, r);
        let same_in = self.pool.eq(sa, sb);
        let flipped = self.pool.ne(sr, sa);
        let of = self.pool.and(same_in, flipped);
        st.write_flag(Flag::Of, of);
        self.set_result_flags(st, w, r);
    }

    fn set_flags_sub(
        &mut self,
        st: &mut SymState,
        w: Width,
        a: TermId,
        b: TermId,
        bin: TermId,
        r: TermId,
    ) {
        let cf = self.borrow_out(a, b, bin);
        st.write_flag(Flag::Cf, cf);
        let sa = self.sign_bit(w, a);
        let sb = self.sign_bit(w, b);
        let sr = self.sign_bit(w, r);
        let diff_in = self.pool.ne(sa, sb);
        let flipped = self.pool.ne(sr, sa);
        let of = self.pool.and(diff_in, flipped);
        st.write_flag(Flag::Of, of);
        self.set_result_flags(st, w, r);
    }

    fn set_flags_logic(&mut self, st: &mut SymState, w: Width, r: TermId) {
        let f = self.pool.fals();
        st.write_flag(Flag::Cf, f);
        st.write_flag(Flag::Of, f);
        self.set_result_flags(st, w, r);
    }

    /// Execute one instruction symbolically, updating `st` in place.
    pub fn step(&mut self, st: &mut SymState, instr: &Instruction) {
        let ops = instr.operands().to_vec();
        match instr.opcode() {
            Opcode::Nop => {}
            Opcode::Mov(w) => {
                let v = self.read(st, &ops[0], w);
                self.write(st, &ops[1], w, v);
            }
            Opcode::Movabs => {
                let v = self.c(64, ops[0].as_imm().unwrap_or(0) as u64);
                self.write(st, &ops[1], Width::Q, v);
            }
            Opcode::Movslq => {
                let v = self.read(st, &ops[0], Width::L);
                let e = self.pool.sign_ext(64, v);
                self.write(st, &ops[1], Width::Q, e);
            }
            Opcode::Movsbq => {
                let v = self.read(st, &ops[0], Width::B);
                let e = self.pool.sign_ext(64, v);
                self.write(st, &ops[1], Width::Q, e);
            }
            Opcode::Movsbl => {
                let v = self.read(st, &ops[0], Width::B);
                let e = self.pool.sign_ext(32, v);
                self.write(st, &ops[1], Width::L, e);
            }
            Opcode::Movzbq => {
                let v = self.read(st, &ops[0], Width::B);
                let e = self.pool.zero_ext(64, v);
                self.write(st, &ops[1], Width::Q, e);
            }
            Opcode::Movzbl => {
                let v = self.read(st, &ops[0], Width::B);
                let e = self.pool.zero_ext(32, v);
                self.write(st, &ops[1], Width::L, e);
            }
            Opcode::Lea(w) => {
                let m = ops[0].as_mem().expect("lea source is memory");
                let a = self.addr(st, &m);
                let a = if w == Width::Q {
                    a
                } else {
                    self.pool.extract(w.bits() - 1, 0, a)
                };
                self.write(st, &ops[1], w, a);
            }
            Opcode::Xchg(w) => {
                let a = self.read(st, &ops[0], w);
                let b = self.read(st, &ops[1], w);
                self.write(st, &ops[0], w, b);
                self.write(st, &ops[1], w, a);
            }
            Opcode::Push => {
                let v = self.read(st, &ops[0], Width::Q);
                let rsp = st.read_gpr64(Gpr::Rsp);
                let eight = self.c(64, 8);
                let new_rsp = self.pool.sub(rsp, eight);
                st.set_gpr64(Gpr::Rsp, new_rsp);
                st.memory.store(self.pool, new_rsp, v, 8);
            }
            Opcode::Pop => {
                let rsp = st.read_gpr64(Gpr::Rsp);
                let v = st.memory.load(self.pool, rsp, 8);
                let eight = self.c(64, 8);
                let new_rsp = self.pool.add(rsp, eight);
                st.set_gpr64(Gpr::Rsp, new_rsp);
                self.write(st, &ops[0], Width::Q, v);
            }
            Opcode::Cmov(c, w) => {
                let take = self.cond(st, c);
                let v = self.read(st, &ops[0], w);
                let old = self.read(st, &ops[1], w);
                let r = self.pool.ite(take, v, old);
                self.write(st, &ops[1], w, r);
            }
            Opcode::Set(c) => {
                let take = self.cond(st, c);
                let r = self.pool.zero_ext(8, take);
                self.write(st, &ops[0], Width::B, r);
            }
            Opcode::Alu(op, w) => {
                let src = self.read(st, &ops[0], w);
                let dst = self.read(st, &ops[1], w);
                let carry1 = st.read_flag(Flag::Cf);
                let carry_w = self.pool.zero_ext(w.bits(), carry1);
                let result = match op {
                    AluOp::Add => self.pool.add(dst, src),
                    AluOp::Adc => {
                        let s = self.pool.add(dst, src);
                        self.pool.add(s, carry_w)
                    }
                    AluOp::Sub => self.pool.sub(dst, src),
                    AluOp::Sbb => {
                        let s = self.pool.sub(dst, src);
                        self.pool.sub(s, carry_w)
                    }
                    AluOp::And => self.pool.and(dst, src),
                    AluOp::Or => self.pool.or(dst, src),
                    AluOp::Xor => self.pool.xor(dst, src),
                };
                match op {
                    AluOp::Add => {
                        let f = self.pool.fals();
                        self.set_flags_add(st, w, dst, src, f, result);
                    }
                    AluOp::Adc => self.set_flags_add(st, w, dst, src, carry1, result),
                    AluOp::Sub => {
                        let f = self.pool.fals();
                        self.set_flags_sub(st, w, dst, src, f, result);
                    }
                    AluOp::Sbb => self.set_flags_sub(st, w, dst, src, carry1, result),
                    AluOp::And | AluOp::Or | AluOp::Xor => self.set_flags_logic(st, w, result),
                }
                self.write(st, &ops[1], w, result);
            }
            Opcode::Cmp(w) => {
                let src = self.read(st, &ops[0], w);
                let dst = self.read(st, &ops[1], w);
                let r = self.pool.sub(dst, src);
                let f = self.pool.fals();
                self.set_flags_sub(st, w, dst, src, f, r);
            }
            Opcode::Test(w) => {
                let src = self.read(st, &ops[0], w);
                let dst = self.read(st, &ops[1], w);
                let r = self.pool.and(dst, src);
                self.set_flags_logic(st, w, r);
            }
            Opcode::Un(op, w) => {
                let a = self.read(st, &ops[0], w);
                match op {
                    UnOp::Neg => {
                        let zero = self.c(w.bits(), 0);
                        let r = self.pool.sub(zero, a);
                        let f = self.pool.fals();
                        self.set_flags_sub(st, w, zero, a, f, r);
                        self.write(st, &ops[0], w, r);
                    }
                    UnOp::Not => {
                        let r = self.pool.not(a);
                        self.write(st, &ops[0], w, r);
                    }
                    UnOp::Inc | UnOp::Dec => {
                        let one = self.c(w.bits(), 1);
                        let r = if op == UnOp::Inc {
                            self.pool.add(a, one)
                        } else {
                            self.pool.sub(a, one)
                        };
                        let sa = self.sign_bit(w, a);
                        let sb = self.sign_bit(w, one);
                        let sr = self.sign_bit(w, r);
                        let of = if op == UnOp::Inc {
                            let same = self.pool.eq(sa, sb);
                            let flip = self.pool.ne(sr, sa);
                            self.pool.and(same, flip)
                        } else {
                            let diff = self.pool.ne(sa, sb);
                            let flip = self.pool.ne(sr, sa);
                            self.pool.and(diff, flip)
                        };
                        st.write_flag(Flag::Of, of);
                        self.set_result_flags(st, w, r);
                        self.write(st, &ops[0], w, r);
                    }
                }
            }
            Opcode::Imul2(w) => {
                let src = self.read(st, &ops[0], w);
                let dst = self.read(st, &ops[1], w);
                let (lo, overflow) = self.signed_mul_low_overflow(w, src, dst);
                st.write_flag(Flag::Cf, overflow);
                st.write_flag(Flag::Of, overflow);
                self.set_result_flags(st, w, lo);
                self.write(st, &ops[1], w, lo);
            }
            Opcode::Imul1(w) => {
                let src = self.read(st, &ops[0], w);
                let acc = st.read_reg(self.pool, Gpr::Rax.view(w));
                let (lo, hi) = self.widening_mul(w, acc, src, true);
                st.write_reg(self.pool, Gpr::Rax.view(w), lo);
                st.write_reg(self.pool, Gpr::Rdx.view(w), hi);
                // Overflow iff the high half is not the sign extension of
                // the low half.
                let slo = self.sign_bit(w, lo);
                let all_ones = self.c(w.bits(), w.mask());
                let zeros = self.c(w.bits(), 0);
                let expect_hi = self.pool.ite(slo, all_ones, zeros);
                let overflow = self.pool.ne(hi, expect_hi);
                st.write_flag(Flag::Cf, overflow);
                st.write_flag(Flag::Of, overflow);
                self.set_result_flags(st, w, lo);
            }
            Opcode::Mul1(w) => {
                let src = self.read(st, &ops[0], w);
                let acc = st.read_reg(self.pool, Gpr::Rax.view(w));
                let (lo, hi) = self.widening_mul(w, acc, src, false);
                st.write_reg(self.pool, Gpr::Rax.view(w), lo);
                st.write_reg(self.pool, Gpr::Rdx.view(w), hi);
                let zeros = self.c(w.bits(), 0);
                let overflow = self.pool.ne(hi, zeros);
                st.write_flag(Flag::Cf, overflow);
                st.write_flag(Flag::Of, overflow);
                self.set_result_flags(st, w, lo);
            }
            Opcode::Div(w) | Opcode::Idiv(w) => {
                let signed = matches!(instr.opcode(), Opcode::Idiv(_));
                let divisor = self.read(st, &ops[0], w);
                let lo = st.read_reg(self.pool, Gpr::Rax.view(w));
                let hi = st.read_reg(self.pool, Gpr::Rdx.view(w));
                // Quotient and remainder are uninterpreted functions of the
                // three inputs (§5.2: division is uninterpreted).
                let (fq, fr) = if signed {
                    (UF_IDIV_QUOT, UF_IDIV_REM)
                } else {
                    (UF_DIV_QUOT, UF_DIV_REM)
                };
                let q = self.pool.uf(fq, vec![hi, lo, divisor], w.bits());
                let r = self.pool.uf(fr, vec![hi, lo, divisor], w.bits());
                st.write_reg(self.pool, Gpr::Rax.view(w), q);
                st.write_reg(self.pool, Gpr::Rdx.view(w), r);
                self.set_flags_logic(st, w, q);
            }
            Opcode::Shift(op, w) => self.shift(st, op, w, &ops),
            Opcode::Bits(op, w) => self.bits(st, op, w, &ops),
            Opcode::Cqto => {
                let rax = st.read_gpr64(Gpr::Rax);
                let sign = self.pool.extract(63, 63, rax);
                let ones = self.c(64, u64::MAX);
                let zeros = self.c(64, 0);
                let v = self.pool.ite(sign, ones, zeros);
                st.set_gpr64(Gpr::Rdx, v);
            }
            Opcode::Cltq => {
                let rax = st.read_gpr64(Gpr::Rax);
                let lo = self.pool.extract(31, 0, rax);
                let e = self.pool.sign_ext(64, lo);
                st.set_gpr64(Gpr::Rax, e);
            }
            Opcode::Cltd => {
                let rax = st.read_gpr64(Gpr::Rax);
                let sign = self.pool.extract(31, 31, rax);
                let ones = self.c(32, 0xffff_ffff);
                let zeros = self.c(32, 0);
                let v = self.pool.ite(sign, ones, zeros);
                st.write_reg(self.pool, Gpr::Rdx.view(Width::L), v);
            }
            Opcode::MovdToXmm => {
                let v = self.read(st, &ops[0], Width::L);
                let v64 = self.pool.zero_ext(64, v);
                let zero = self.c(64, 0);
                self.write128(st, &ops[1], (v64, zero));
            }
            Opcode::MovdFromXmm => {
                let (lo, _) = self.read128(st, &ops[0]);
                let v = self.pool.extract(31, 0, lo);
                self.write(st, &ops[1], Width::L, v);
            }
            Opcode::MovqToXmm => {
                let v = self.read(st, &ops[0], Width::Q);
                let zero = self.c(64, 0);
                self.write128(st, &ops[1], (v, zero));
            }
            Opcode::MovqFromXmm => {
                let (lo, _) = self.read128(st, &ops[0]);
                self.write(st, &ops[1], Width::Q, lo);
            }
            Opcode::Mov128(_) => {
                let v = self.read128(st, &ops[0]);
                self.write128(st, &ops[1], v);
            }
            Opcode::SseBin(op) => {
                let src = self.read128(st, &ops[0]);
                let dst = self.read128(st, &ops[1]);
                let r = self.sse_bin(op, dst, src);
                self.write128(st, &ops[1], r);
            }
            Opcode::SseShift(op) => {
                let count = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let dst = self.read128(st, &ops[1]);
                let r = self.sse_shift(op, dst, count);
                self.write128(st, &ops[1], r);
            }
            Opcode::Pshufd => {
                let imm = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let src = self.read128(st, &ops[1]);
                let lanes = self.lanes32(src);
                let pick = |sel: u64| lanes[(sel & 3) as usize];
                let out = [pick(imm), pick(imm >> 2), pick(imm >> 4), pick(imm >> 6)];
                let r = self.xmm_from_lanes32(out);
                self.write128(st, &ops[2], r);
            }
            Opcode::Shufps => {
                let imm = (ops[0].as_imm().unwrap_or(0) as u64) & 0xff;
                let src = self.read128(st, &ops[1]);
                let dst = self.read128(st, &ops[2]);
                let s = self.lanes32(src);
                let d = self.lanes32(dst);
                let out = [
                    d[(imm & 3) as usize],
                    d[((imm >> 2) & 3) as usize],
                    s[((imm >> 4) & 3) as usize],
                    s[((imm >> 6) & 3) as usize],
                ];
                let r = self.xmm_from_lanes32(out);
                self.write128(st, &ops[2], r);
            }
            Opcode::Punpckldq => {
                let src = self.read128(st, &ops[0]);
                let dst = self.read128(st, &ops[1]);
                let s = self.lanes32(src);
                let d = self.lanes32(dst);
                let r = self.xmm_from_lanes32([d[0], s[0], d[1], s[1]]);
                self.write128(st, &ops[1], r);
            }
            Opcode::Punpcklqdq => {
                let src = self.read128(st, &ops[0]);
                let dst = self.read128(st, &ops[1]);
                self.write128(st, &ops[1], (dst.0, src.0));
            }
        }
    }

    /// Whether a term is a literal constant (cheap to multiply by).
    fn is_const(&self, t: TermId) -> bool {
        matches!(self.pool.data(t), stoke_solver::TermData::Const { .. })
    }

    /// Schoolbook high half of an unsigned 64x64 multiplication, built from
    /// four 32x32 partial products. Only used when at least one operand is
    /// a constant, which keeps the blasted formula small.
    fn mulhi_u64(&mut self, a: TermId, b: TermId) -> TermId {
        let mask32 = self.c(64, 0xffff_ffff);
        let c32 = self.c(64, 32);
        let a0 = self.pool.and(a, mask32);
        let a1 = self.pool.lshr(a, c32);
        let b0 = self.pool.and(b, mask32);
        let b1 = self.pool.lshr(b, c32);
        let t0 = self.pool.mul(a0, b0);
        let t1 = self.pool.mul(a0, b1);
        let t2 = self.pool.mul(a1, b0);
        let t3 = self.pool.mul(a1, b1);
        let t0h = self.pool.lshr(t0, c32);
        let t1l = self.pool.and(t1, mask32);
        let t2l = self.pool.and(t2, mask32);
        let mid = self.pool.add(t0h, t1l);
        let mid = self.pool.add(mid, t2l);
        let carry = self.pool.lshr(mid, c32);
        let t1h = self.pool.lshr(t1, c32);
        let t2h = self.pool.lshr(t2, c32);
        let hi = self.pool.add(t3, t1h);
        let hi = self.pool.add(hi, t2h);
        self.pool.add(hi, carry)
    }

    /// Schoolbook high half of a signed 64x64 multiplication:
    /// `mulhs(a,b) = mulhu(a,b) - (a < 0 ? b : 0) - (b < 0 ? a : 0)`.
    fn mulhi_s64(&mut self, a: TermId, b: TermId) -> TermId {
        let hi_u = self.mulhi_u64(a, b);
        let zero = self.c(64, 0);
        let a_neg = self.pool.slt(a, zero);
        let b_neg = self.pool.slt(b, zero);
        let corr_a = self.pool.ite(a_neg, b, zero);
        let corr_b = self.pool.ite(b_neg, a, zero);
        let hi = self.pool.sub(hi_u, corr_a);
        self.pool.sub(hi, corr_b)
    }

    /// Signed low-half multiply plus overflow flag at width `w`.
    fn signed_mul_low_overflow(&mut self, w: Width, a: TermId, b: TermId) -> (TermId, TermId) {
        if w == Width::Q {
            // 64-bit: blast the product when either operand is a constant
            // (multiplication by constants stays cheap and provable, e.g.
            // the `imulq 2, rax` to `shlq 1, rax` strength reduction);
            // otherwise fall back to the paper's uninterpreted-function
            // modelling.
            let (lo, hi) = if self.is_const(a) || self.is_const(b) {
                (self.pool.mul(a, b), self.mulhi_s64(a, b))
            } else {
                (
                    self.pool.uf(UF_MULLO64, vec![a, b], 64),
                    self.pool.uf(UF_MULHI_S64, vec![a, b], 64),
                )
            };
            let slo = self.sign_bit(w, lo);
            let ones = self.c(64, u64::MAX);
            let zeros = self.c(64, 0);
            let expect = self.pool.ite(slo, ones, zeros);
            let overflow = self.pool.ne(hi, expect);
            (lo, overflow)
        } else {
            // Narrow widths: blast the full product.
            let wide = 2 * w.bits();
            let ea = self.pool.sign_ext(wide, a);
            let eb = self.pool.sign_ext(wide, b);
            let full = self.pool.mul(ea, eb);
            let lo = self.pool.extract(w.bits() - 1, 0, full);
            let relo = self.pool.sign_ext(wide, lo);
            let overflow = self.pool.ne(full, relo);
            (lo, overflow)
        }
    }

    /// Widening multiply returning (low, high) halves at width `w`.
    fn widening_mul(&mut self, w: Width, a: TermId, b: TermId, signed: bool) -> (TermId, TermId) {
        if w == Width::Q {
            if self.is_const(a) || self.is_const(b) {
                let lo = self.pool.mul(a, b);
                let hi = if signed {
                    self.mulhi_s64(a, b)
                } else {
                    self.mulhi_u64(a, b)
                };
                return (lo, hi);
            }
            let lo = self.pool.uf(UF_MULLO64, vec![a, b], 64);
            let hi_fn = if signed { UF_MULHI_S64 } else { UF_MULHI_U64 };
            let hi = self.pool.uf(hi_fn, vec![a, b], 64);
            (lo, hi)
        } else {
            let wide = 2 * w.bits();
            let (ea, eb) = if signed {
                (self.pool.sign_ext(wide, a), self.pool.sign_ext(wide, b))
            } else {
                (self.pool.zero_ext(wide, a), self.pool.zero_ext(wide, b))
            };
            let full = self.pool.mul(ea, eb);
            let lo = self.pool.extract(w.bits() - 1, 0, full);
            let hi = self.pool.extract(wide - 1, w.bits(), full);
            (lo, hi)
        }
    }

    fn shift(&mut self, st: &mut SymState, op: ShiftOp, w: Width, ops: &[Operand]) {
        let bits = w.bits();
        let count_mask = if w == Width::Q { 0x3f } else { 0x1f };
        let raw = self.read(st, &ops[0], Width::B);
        let mask_c = self.c(8, count_mask);
        let count8 = self.pool.and(raw, mask_c);
        let count = self.pool.zero_ext(bits, count8);
        let a = self.read(st, &ops[1], w);
        let zero_w = self.c(bits, 0);
        let count_is_zero = self.pool.eq(count, zero_w);

        let one = self.c(bits, 1);
        let bits_c = self.c(bits, u64::from(bits));
        let (r, cf) = match op {
            ShiftOp::Shl => {
                let r = self.pool.shl(a, count);
                // CF = bit (bits - count) of a.
                let sh = self.pool.sub(bits_c, count);
                let moved = self.pool.lshr(a, sh);
                let cf = self.pool.extract(0, 0, moved);
                (r, cf)
            }
            ShiftOp::Shr => {
                let r = self.pool.lshr(a, count);
                let cm1 = self.pool.sub(count, one);
                let moved = self.pool.lshr(a, cm1);
                let cf = self.pool.extract(0, 0, moved);
                (r, cf)
            }
            ShiftOp::Sar => {
                let r = self.pool.ashr(a, count);
                let cm1 = self.pool.sub(count, one);
                let moved = self.pool.ashr(a, cm1);
                let cf = self.pool.extract(0, 0, moved);
                (r, cf)
            }
            ShiftOp::Rol => {
                let left = self.pool.shl(a, count);
                let back = self.pool.sub(bits_c, count);
                let right = self.pool.lshr(a, back);
                let r = self.pool.or(left, right);
                let r = self.pool.ite(count_is_zero, a, r);
                let cf = self.pool.extract(0, 0, r);
                (r, cf)
            }
            ShiftOp::Ror => {
                let right = self.pool.lshr(a, count);
                let back = self.pool.sub(bits_c, count);
                let left = self.pool.shl(a, back);
                let r = self.pool.or(left, right);
                let r = self.pool.ite(count_is_zero, a, r);
                let cf = self.sign_bit(w, r);
                (r, cf)
            }
        };
        // When the masked count is zero, neither the destination value nor
        // any flag changes (the 32-bit destination is still renormalized,
        // which writing `a` back achieves).
        let r = self.pool.ite(count_is_zero, a, r);
        let old_cf = st.read_flag(Flag::Cf);
        let old_of = st.read_flag(Flag::Of);
        let old_zf = st.read_flag(Flag::Zf);
        let old_sf = st.read_flag(Flag::Sf);
        let old_pf = st.read_flag(Flag::Pf);

        let new_cf = self.pool.ite(count_is_zero, old_cf, cf);
        st.write_flag(Flag::Cf, new_cf);
        match op {
            ShiftOp::Rol | ShiftOp::Ror => {
                let top = self.sign_bit(w, r);
                let next = self.pool.extract(bits - 2, bits - 2, r);
                let of = self.pool.xor(top, next);
                let new_of = self.pool.ite(count_is_zero, old_of, of);
                st.write_flag(Flag::Of, new_of);
            }
            _ => {
                let top = self.sign_bit(w, r);
                let of = self.pool.xor(top, cf);
                let new_of = self.pool.ite(count_is_zero, old_of, of);
                st.write_flag(Flag::Of, new_of);
                self.set_result_flags(st, w, r);
                let zf = st.read_flag(Flag::Zf);
                let sf = st.read_flag(Flag::Sf);
                let pf = st.read_flag(Flag::Pf);
                let zf = self.pool.ite(count_is_zero, old_zf, zf);
                let sf = self.pool.ite(count_is_zero, old_sf, sf);
                let pf = self.pool.ite(count_is_zero, old_pf, pf);
                st.write_flag(Flag::Zf, zf);
                st.write_flag(Flag::Sf, sf);
                st.write_flag(Flag::Pf, pf);
            }
        }
        self.write(st, &ops[1], w, r);
    }

    fn bits(&mut self, st: &mut SymState, op: BitOp, w: Width, ops: &[Operand]) {
        match op {
            BitOp::Popcnt => {
                let a = self.read(st, &ops[0], w);
                let mut acc = self.c(w.bits(), 0);
                for i in 0..w.bits() {
                    let bit = self.pool.extract(i, i, a);
                    let ext = self.pool.zero_ext(w.bits(), bit);
                    acc = self.pool.add(acc, ext);
                }
                let f = self.pool.fals();
                st.write_flag(Flag::Cf, f);
                st.write_flag(Flag::Of, f);
                st.write_flag(Flag::Sf, f);
                st.write_flag(Flag::Pf, f);
                let zero = self.c(w.bits(), 0);
                let zf = self.pool.eq(a, zero);
                st.write_flag(Flag::Zf, zf);
                self.write(st, &ops[1], w, acc);
            }
            BitOp::Bsf | BitOp::Bsr => {
                let a = self.read(st, &ops[0], w);
                let zero = self.c(w.bits(), 0);
                let is_zero = self.pool.eq(a, zero);
                st.write_flag(Flag::Zf, is_zero);
                let old = self.read(st, &ops[1], w);
                // Priority encoder.
                let mut result = old;
                let indices: Vec<u32> = if op == BitOp::Bsf {
                    (0..w.bits()).rev().collect()
                } else {
                    (0..w.bits()).collect()
                };
                // Iterate so the highest-priority bit is applied last.
                for i in indices {
                    let bit = self.pool.extract(i, i, a);
                    let idx = self.c(w.bits(), u64::from(i));
                    result = self.pool.ite(bit, idx, result);
                }
                let r = self.pool.ite(is_zero, old, result);
                self.write(st, &ops[1], w, r);
            }
            BitOp::Bswap => {
                let a = self.read(st, &ops[0], w);
                let bytes = w.bits() / 8;
                let mut acc: Option<TermId> = None;
                for i in 0..bytes {
                    let byte = self.pool.extract(8 * i + 7, 8 * i, a);
                    acc = Some(match acc {
                        None => byte,
                        Some(prev) => self.pool.concat(prev, byte),
                    });
                }
                let r = acc.expect("at least one byte");
                let r = if w == Width::B { a } else { r };
                self.write(st, &ops[0], w, r);
            }
        }
    }

    fn lanes32(&mut self, v: SymXmm) -> [TermId; 4] {
        [
            self.pool.extract(31, 0, v.0),
            self.pool.extract(63, 32, v.0),
            self.pool.extract(31, 0, v.1),
            self.pool.extract(63, 32, v.1),
        ]
    }

    fn xmm_from_lanes32(&mut self, l: [TermId; 4]) -> SymXmm {
        let lo = self.pool.concat(l[1], l[0]);
        let hi = self.pool.concat(l[3], l[2]);
        (lo, hi)
    }

    fn map_lanes(
        &mut self,
        a: SymXmm,
        b: SymXmm,
        lane_bits: u32,
        f: impl Fn(&mut TermPool, TermId, TermId) -> TermId,
    ) -> SymXmm {
        let mut out = [a.0, a.1];
        for (word, slot) in out.iter_mut().enumerate() {
            let aw = if word == 0 { a.0 } else { a.1 };
            let bw = if word == 0 { b.0 } else { b.1 };
            let lanes = 64 / lane_bits;
            let mut acc: Option<TermId> = None;
            for lane in 0..lanes {
                let lo_bit = lane * lane_bits;
                let hi_bit = lo_bit + lane_bits - 1;
                let x = self.pool.extract(hi_bit, lo_bit, aw);
                let y = self.pool.extract(hi_bit, lo_bit, bw);
                let r = f(self.pool, x, y);
                acc = Some(match acc {
                    None => r,
                    Some(prev) => self.pool.concat(r, prev),
                });
            }
            *slot = acc.expect("at least one lane");
        }
        (out[0], out[1])
    }

    fn sse_bin(&mut self, op: SseBinOp, dst: SymXmm, src: SymXmm) -> SymXmm {
        match op {
            SseBinOp::Paddb => self.map_lanes(dst, src, 8, |p, a, b| p.add(a, b)),
            SseBinOp::Paddw => self.map_lanes(dst, src, 16, |p, a, b| p.add(a, b)),
            SseBinOp::Paddd => self.map_lanes(dst, src, 32, |p, a, b| p.add(a, b)),
            SseBinOp::Paddq => self.map_lanes(dst, src, 64, |p, a, b| p.add(a, b)),
            SseBinOp::Psubb => self.map_lanes(dst, src, 8, |p, a, b| p.sub(a, b)),
            SseBinOp::Psubw => self.map_lanes(dst, src, 16, |p, a, b| p.sub(a, b)),
            SseBinOp::Psubd => self.map_lanes(dst, src, 32, |p, a, b| p.sub(a, b)),
            SseBinOp::Psubq => self.map_lanes(dst, src, 64, |p, a, b| p.sub(a, b)),
            SseBinOp::Pmullw => self.map_lanes(dst, src, 16, |p, a, b| p.mul(a, b)),
            SseBinOp::Pmulld => self.map_lanes(dst, src, 32, |p, a, b| p.mul(a, b)),
            SseBinOp::Pmuludq => {
                let a_lo = self.pool.extract(31, 0, dst.0);
                let b_lo = self.pool.extract(31, 0, src.0);
                let a_hi = self.pool.extract(31, 0, dst.1);
                let b_hi = self.pool.extract(31, 0, src.1);
                let a_lo64 = self.pool.zero_ext(64, a_lo);
                let b_lo64 = self.pool.zero_ext(64, b_lo);
                let a_hi64 = self.pool.zero_ext(64, a_hi);
                let b_hi64 = self.pool.zero_ext(64, b_hi);
                let lo = self.pool.mul(a_lo64, b_lo64);
                let hi = self.pool.mul(a_hi64, b_hi64);
                (lo, hi)
            }
            SseBinOp::Pand => self.map_lanes(dst, src, 64, |p, a, b| p.and(a, b)),
            SseBinOp::Por => self.map_lanes(dst, src, 64, |p, a, b| p.or(a, b)),
            SseBinOp::Pxor => self.map_lanes(dst, src, 64, |p, a, b| p.xor(a, b)),
            SseBinOp::Pandn => self.map_lanes(dst, src, 64, |p, a, b| {
                let na = p.not(a);
                p.and(na, b)
            }),
        }
    }

    fn sse_shift(&mut self, op: SseShiftOp, dst: SymXmm, count: u64) -> SymXmm {
        let (lane_bits, left) = match op {
            SseShiftOp::Psllw => (16, true),
            SseShiftOp::Pslld => (32, true),
            SseShiftOp::Psllq => (64, true),
            SseShiftOp::Psrlw => (16, false),
            SseShiftOp::Psrld => (32, false),
            SseShiftOp::Psrlq => (64, false),
        };
        if count >= u64::from(lane_bits) {
            let zero = self.c(64, 0);
            return (zero, zero);
        }
        let c = self.c(lane_bits, count);
        self.map_lanes(dst, dst, lane_bits, |p, a, _| {
            if left {
                p.shl(a, c)
            } else {
                p.lshr(a, c)
            }
        })
    }
}
