//! Equivalence classes used by the MCMC proposal distribution.
//!
//! The paper's `Opcode` move replaces an instruction's opcode with another
//! opcode "drawn from an equivalence class of opcodes expecting the same
//! number and type of operands"; the `Operand` move replaces an operand
//! with another "drawn from an equivalence class of operands with types
//! equivalent to the old operand". This module precomputes those classes
//! so that proposals are cheap and, crucially, *symmetric*: the
//! probability of proposing `o → o'` equals that of proposing `o' → o`
//! because both are uniform draws from the same class.

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::operand::{Operand, OperandKind};
use std::collections::HashMap;

/// Precomputed opcode equivalence classes keyed by the concrete operand
/// kinds of an instruction.
#[derive(Debug, Clone)]
pub struct OpcodeClasses {
    /// All opcodes in the search universe.
    universe: Vec<Opcode>,
    /// Map from a concrete operand-kind signature to the opcodes that
    /// accept it.
    by_signature: HashMap<Vec<OperandKind>, Vec<Opcode>>,
}

impl OpcodeClasses {
    /// Build the classes for the full modelled opcode set.
    pub fn new() -> OpcodeClasses {
        OpcodeClasses::with_universe(Opcode::all())
    }

    /// Build the classes for a restricted opcode universe (e.g. when a
    /// caller wants to exclude divisions or SSE instructions from the
    /// search).
    pub fn with_universe(universe: Vec<Opcode>) -> OpcodeClasses {
        OpcodeClasses {
            universe,
            by_signature: HashMap::new(),
        }
    }

    /// The opcode universe.
    pub fn universe(&self) -> &[Opcode] {
        &self.universe
    }

    /// The opcodes that accept exactly the given concrete operand kinds.
    pub fn class_for_kinds(&mut self, kinds: &[OperandKind]) -> &[Opcode] {
        if !self.by_signature.contains_key(kinds) {
            let class: Vec<Opcode> = self
                .universe
                .iter()
                .copied()
                .filter(|op| accepts_kinds(*op, kinds))
                .collect();
            self.by_signature.insert(kinds.to_vec(), class);
        }
        &self.by_signature[kinds]
    }

    /// The opcode equivalence class of an existing instruction: every
    /// opcode in the universe that accepts the instruction's operands.
    /// The class always contains the instruction's own opcode.
    pub fn class_of(&mut self, instr: &Instruction) -> &[Opcode] {
        let kinds: Vec<OperandKind> = instr.operands().iter().map(Operand::kind).collect();
        self.class_for_kinds(&kinds)
    }
}

impl Default for OpcodeClasses {
    fn default() -> Self {
        OpcodeClasses::new()
    }
}

/// Whether `op` accepts operands with exactly the given kinds.
pub fn accepts_kinds(op: Opcode, kinds: &[OperandKind]) -> bool {
    let sig = op.signature();
    if sig.len() != kinds.len() {
        return false;
    }
    if kinds
        .iter()
        .filter(|k| matches!(k, OperandKind::Mem))
        .count()
        > 1
    {
        return false;
    }
    sig.iter()
        .zip(kinds)
        .all(|(slot, kind)| slot.accepts(*kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{AluOp, BitOp, Cond};
    use crate::reg::Width;

    #[test]
    fn alu_class_contains_peers() {
        let mut classes = OpcodeClasses::new();
        let instr: crate::program::Program = "addq rdi, rax".parse().unwrap();
        let class = classes.class_of(&instr.instrs()[0]).to_vec();
        assert!(class.contains(&Opcode::Alu(AluOp::Add, Width::Q)));
        assert!(class.contains(&Opcode::Alu(AluOp::Sub, Width::Q)));
        assert!(class.contains(&Opcode::Alu(AluOp::Xor, Width::Q)));
        assert!(class.contains(&Opcode::Mov(Width::Q)));
        assert!(class.contains(&Opcode::Imul2(Width::Q)));
        assert!(class.contains(&Opcode::Cmp(Width::Q)));
        // but not different widths or arities
        assert!(!class.contains(&Opcode::Alu(AluOp::Add, Width::L)));
        assert!(!class.contains(&Opcode::Push));
        assert!(!class.contains(&Opcode::Nop));
    }

    #[test]
    fn class_always_contains_self() {
        let mut classes = OpcodeClasses::new();
        for text in [
            "addq rdi, rax",
            "sete dl",
            "mulq rsi",
            "shlq 3, rcx",
            "popcntq rdi, rax",
            "movups (rsi,rcx,4), xmm1",
            "pmullw xmm1, xmm0",
            "cmovel esi, ecx",
        ] {
            let p: crate::program::Program = text.parse().unwrap();
            let instr = &p.instrs()[0];
            let class = classes.class_of(instr);
            assert!(
                class.contains(&instr.opcode()),
                "class for {} should contain its own opcode",
                text
            );
        }
    }

    #[test]
    fn imm_reg_class_differs_from_reg_reg() {
        let mut classes = OpcodeClasses::new();
        let imm_form: crate::program::Program = "addq 5, rax".parse().unwrap();
        let class = classes.class_of(&imm_form.instrs()[0]).to_vec();
        // popcnt does not take an immediate source.
        assert!(!class.contains(&Opcode::Bits(BitOp::Popcnt, Width::Q)));
        assert!(class.contains(&Opcode::Alu(AluOp::Adc, Width::Q)));
    }

    #[test]
    fn setcc_class_is_byte_writers() {
        let mut classes = OpcodeClasses::new();
        let p: crate::program::Program = "sete dl".parse().unwrap();
        let class = classes.class_of(&p.instrs()[0]).to_vec();
        assert!(class.contains(&Opcode::Set(Cond::Ne)));
        assert!(class.contains(&Opcode::Set(Cond::A)));
        // All members must take exactly one 8-bit operand.
        for op in &class {
            assert_eq!(op.arity(), 1, "{} in sete class", op);
        }
    }

    #[test]
    fn restricted_universe() {
        let no_div: Vec<Opcode> = Opcode::all()
            .into_iter()
            .filter(|o| !matches!(o, Opcode::Div(_) | Opcode::Idiv(_)))
            .collect();
        let mut classes = OpcodeClasses::with_universe(no_div);
        let p: crate::program::Program = "mulq rsi".parse().unwrap();
        let class = classes.class_of(&p.instrs()[0]).to_vec();
        assert!(class.contains(&Opcode::Mul1(Width::Q)));
        assert!(!class.contains(&Opcode::Div(Width::Q)));
    }

    #[test]
    fn memoization_is_stable() {
        let mut classes = OpcodeClasses::new();
        let p: crate::program::Program = "addq rdi, rax".parse().unwrap();
        let a = classes.class_of(&p.instrs()[0]).to_vec();
        let b = classes.class_of(&p.instrs()[0]).to_vec();
        assert_eq!(a, b);
    }
}
