//! Loop-free, straight-line programs: the unit of code STOKE optimizes.

use crate::instr::Instruction;
use std::fmt;

/// A loop-free sequence of instructions.
///
/// Targets and rewrites are both represented as `Program`s. STOKE's
/// rewrites additionally carry `UNUSED` slots; those live in the search
/// crate (the `stoke` crate's `Rewrite` type) and are converted to a dense
/// `Program` before evaluation.
///
/// ```
/// use stoke_x86::Program;
/// let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
/// assert_eq!(p.len(), 2);
/// assert!(p.static_latency() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instruction>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program { instrs: Vec::new() }
    }

    /// Build a program from a sequence of instructions.
    pub fn from_instrs(instrs: Vec<Instruction>) -> Program {
        Program { instrs }
    }

    /// The instructions, in execution order.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Mutable access to the instructions.
    pub fn instrs_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instrs
    }

    /// Append an instruction.
    pub fn push(&mut self, i: Instruction) {
        self.instrs.push(i);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// The static performance heuristic of the paper's Equation 13:
    /// `H(f) = Σ_i LATENCY(i)`.
    pub fn static_latency(&self) -> u64 {
        self.instrs.iter().map(|i| u64::from(i.latency())).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instrs {
            writeln!(f, "{}", i)?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Program {
        Program {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl IntoIterator for Program {
    type Item = Instruction;
    type IntoIter = std::vec::IntoIter<Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

impl std::str::FromStr for Program {
    type Err = crate::parse::ParseError;
    fn from_str(s: &str) -> Result<Program, Self::Err> {
        crate::parse::parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::build;
    use crate::reg::{Gpr, Width};

    #[test]
    fn latency_sums() {
        let mut p = Program::new();
        assert_eq!(p.static_latency(), 0);
        p.push(build::movq(Gpr::Rdi.full(), Gpr::Rax.full()));
        p.push(build::addq(Gpr::Rsi.full(), Gpr::Rax.full()));
        assert_eq!(p.static_latency(), 2);
        p.push(build::mulq(Gpr::Rsi.view(Width::Q)));
        assert!(p.static_latency() > 2);
    }

    #[test]
    fn display_then_parse_roundtrip() {
        let mut p = Program::new();
        p.push(build::movq(Gpr::Rdi.full(), Gpr::Rax.full()));
        p.push(build::addq(Operand::from(5i64), Gpr::Rax.full()));
        let text = p.to_string();
        let q: Program = text.parse().unwrap();
        assert_eq!(p, q);
    }

    use crate::operand::Operand;

    #[test]
    fn collect_from_iterator() {
        let p: Program = vec![
            build::movq(Gpr::Rdi.full(), Gpr::Rax.full()),
            build::addq(Gpr::Rsi.full(), Gpr::Rax.full()),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
    }
}
