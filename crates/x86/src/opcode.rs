//! The modelled 64-bit x86 opcode set.
//!
//! STOKE's search operates over a large subset of the x86-64 instruction
//! set. This module defines the subset modelled by this reproduction: the
//! general purpose ALU (including the widening multiplies central to the
//! Montgomery-multiplication result), data movement, conditional moves and
//! sets, bit-manipulation instructions, and the fixed-point SSE vector
//! instructions needed for the SAXPY vectorization result.
//!
//! Every opcode carries the metadata the rest of the system needs:
//! operand-slot signatures (for instruction validation and for the MCMC
//! opcode/operand equivalence classes), implicit register uses and
//! definitions, condition-flag effects, and an average latency used by the
//! `perf(·)` term of the cost function.

use crate::operand::SlotSpec;
use crate::reg::{Flag, Gpr, Width};
use std::fmt;

/// A condition code, as used by `set{cc}`, `cmov{cc}` (and, in real x86,
/// `j{cc}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (ZF).
    E,
    /// Not equal (!ZF).
    Ne,
    /// Unsigned above (!CF && !ZF).
    A,
    /// Unsigned above or equal (!CF).
    Ae,
    /// Unsigned below (CF).
    B,
    /// Unsigned below or equal (CF || ZF).
    Be,
    /// Signed greater (!(SF^OF) && !ZF).
    G,
    /// Signed greater or equal (!(SF^OF)).
    Ge,
    /// Signed less (SF^OF).
    L,
    /// Signed less or equal ((SF^OF) || ZF).
    Le,
    /// Sign set (SF).
    S,
    /// Sign not set (!SF).
    Ns,
}

impl Cond {
    /// All modelled condition codes.
    pub const ALL: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::A,
        Cond::Ae,
        Cond::B,
        Cond::Be,
        Cond::G,
        Cond::Ge,
        Cond::L,
        Cond::Le,
        Cond::S,
        Cond::Ns,
    ];

    /// The mnemonic suffix (`e`, `ne`, `a`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// Parse a condition suffix.
    pub fn parse(s: &str) -> Option<Cond> {
        Cond::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The flags read when evaluating this condition.
    pub fn flags_read(self) -> &'static [Flag] {
        match self {
            Cond::E | Cond::Ne => &[Flag::Zf],
            Cond::A | Cond::Be => &[Flag::Cf, Flag::Zf],
            Cond::Ae | Cond::B => &[Flag::Cf],
            Cond::G | Cond::Le => &[Flag::Sf, Flag::Of, Flag::Zf],
            Cond::Ge | Cond::L => &[Flag::Sf, Flag::Of],
            Cond::S | Cond::Ns => &[Flag::Sf],
        }
    }

    /// Evaluate the condition from concrete flag values.
    pub fn eval(self, cf: bool, zf: bool, sf: bool, of: bool) -> bool {
        match self {
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::A => !cf && !zf,
            Cond::Ae => !cf,
            Cond::B => cf,
            Cond::Be => cf || zf,
            Cond::G => (sf == of) && !zf,
            Cond::Ge => sf == of,
            Cond::L => sf != of,
            Cond::Le => (sf != of) || zf,
            Cond::S => sf,
            Cond::Ns => !sf,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Two-operand ALU operations sharing the `op src, dst` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum AluOp {
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
}

/// One-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum UnOp {
    Neg,
    Not,
    Inc,
    Dec,
}

/// Shift and rotate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
}

/// Scalar bit-manipulation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum BitOp {
    Popcnt,
    Bsf,
    Bsr,
    Bswap,
}

/// Packed (SSE) integer binary operations. The element width is part of
/// the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum SseBinOp {
    Paddb,
    Paddw,
    Paddd,
    Paddq,
    Psubb,
    Psubw,
    Psubd,
    Psubq,
    Pmullw,
    Pmulld,
    Pmuludq,
    Pand,
    Por,
    Pxor,
    Pandn,
}

impl SseBinOp {
    /// The mnemonic for this operation.
    pub fn name(self) -> &'static str {
        match self {
            SseBinOp::Paddb => "paddb",
            SseBinOp::Paddw => "paddw",
            SseBinOp::Paddd => "paddd",
            SseBinOp::Paddq => "paddq",
            SseBinOp::Psubb => "psubb",
            SseBinOp::Psubw => "psubw",
            SseBinOp::Psubd => "psubd",
            SseBinOp::Psubq => "psubq",
            SseBinOp::Pmullw => "pmullw",
            SseBinOp::Pmulld => "pmulld",
            SseBinOp::Pmuludq => "pmuludq",
            SseBinOp::Pand => "pand",
            SseBinOp::Por => "por",
            SseBinOp::Pxor => "pxor",
            SseBinOp::Pandn => "pandn",
        }
    }

    /// All packed binary operations.
    pub const ALL: [SseBinOp; 15] = [
        SseBinOp::Paddb,
        SseBinOp::Paddw,
        SseBinOp::Paddd,
        SseBinOp::Paddq,
        SseBinOp::Psubb,
        SseBinOp::Psubw,
        SseBinOp::Psubd,
        SseBinOp::Psubq,
        SseBinOp::Pmullw,
        SseBinOp::Pmulld,
        SseBinOp::Pmuludq,
        SseBinOp::Pand,
        SseBinOp::Por,
        SseBinOp::Pxor,
        SseBinOp::Pandn,
    ];
}

/// Packed (SSE) shift-by-immediate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum SseShiftOp {
    Psllw,
    Pslld,
    Psllq,
    Psrlw,
    Psrld,
    Psrlq,
}

impl SseShiftOp {
    /// The mnemonic for this operation.
    pub fn name(self) -> &'static str {
        match self {
            SseShiftOp::Psllw => "psllw",
            SseShiftOp::Pslld => "pslld",
            SseShiftOp::Psllq => "psllq",
            SseShiftOp::Psrlw => "psrlw",
            SseShiftOp::Psrld => "psrld",
            SseShiftOp::Psrlq => "psrlq",
        }
    }

    /// All packed shift operations.
    pub const ALL: [SseShiftOp; 6] = [
        SseShiftOp::Psllw,
        SseShiftOp::Pslld,
        SseShiftOp::Psllq,
        SseShiftOp::Psrlw,
        SseShiftOp::Psrld,
        SseShiftOp::Psrlq,
    ];
}

/// Kinds of 128-bit SSE register/memory moves (all modelled identically:
/// alignment faults are not simulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum SseMov128 {
    Movdqa,
    Movdqu,
    Movups,
    Movaps,
}

impl SseMov128 {
    /// The mnemonic for this move.
    pub fn name(self) -> &'static str {
        match self {
            SseMov128::Movdqa => "movdqa",
            SseMov128::Movdqu => "movdqu",
            SseMov128::Movups => "movups",
            SseMov128::Movaps => "movaps",
        }
    }

    /// All 128-bit move flavours.
    pub const ALL: [SseMov128; 4] = [
        SseMov128::Movdqa,
        SseMov128::Movdqu,
        SseMov128::Movups,
        SseMov128::Movaps,
    ];
}

/// An opcode in the modelled x86-64 subset.
///
/// Width-parametric opcodes carry their operand [`Width`]; condition-code
/// parametric opcodes carry their [`Cond`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // -- data movement -------------------------------------------------
    /// `mov{bwlq} src, dst`
    Mov(Width),
    /// `movabsq imm64, r64`
    Movabs,
    /// `movslq r/m32, r64` (sign extension)
    Movslq,
    /// `movsbq r/m8, r64`
    Movsbq,
    /// `movsbl r/m8, r32`
    Movsbl,
    /// `movzbq r/m8, r64`
    Movzbq,
    /// `movzbl r/m8, r32`
    Movzbl,
    /// `lea{lq} mem, reg`
    Lea(Width),
    /// `xchg{lq} reg, reg`
    Xchg(Width),
    /// `pushq r64`
    Push,
    /// `popq r64`
    Pop,
    /// `cmov{cc}{lq} r/m, reg`
    Cmov(Cond, Width),
    /// `set{cc} r8`
    Set(Cond),

    // -- integer ALU ----------------------------------------------------
    /// Two operand ALU: `op{blq} src, dst`
    Alu(AluOp, Width),
    /// `cmp{blq} src, dst` (subtraction, flags only)
    Cmp(Width),
    /// `test{blq} src, dst` (conjunction, flags only)
    Test(Width),
    /// One operand ALU: `op{lq} dst`
    Un(UnOp, Width),
    /// Two operand signed multiply: `imul{lq} src, dst`
    Imul2(Width),
    /// One operand widening signed multiply into rdx:rax (edx:eax).
    Imul1(Width),
    /// One operand widening unsigned multiply into rdx:rax (edx:eax).
    Mul1(Width),
    /// One operand unsigned divide of rdx:rax (edx:eax).
    Div(Width),
    /// One operand signed divide of rdx:rax (edx:eax).
    Idiv(Width),
    /// Shift / rotate: `op{lq} count, dst` where count is imm8 or an 8-bit register.
    Shift(ShiftOp, Width),
    /// Bit manipulation (`popcnt`, `bsf`, `bsr` take `src, dst`; `bswap` takes `dst`).
    Bits(BitOp, Width),
    /// `cqto`: sign-extend rax into rdx:rax.
    Cqto,
    /// `cltq`: sign-extend eax into rax.
    Cltq,
    /// `cltd`: sign-extend eax into edx:eax.
    Cltd,
    /// `nop`
    Nop,

    // -- SSE (fixed point) ----------------------------------------------
    /// `movd r32, xmm`
    MovdToXmm,
    /// `movd xmm, r32`
    MovdFromXmm,
    /// `movq r64, xmm`
    MovqToXmm,
    /// `movq xmm, r64`
    MovqFromXmm,
    /// 128-bit load/store/register move.
    Mov128(SseMov128),
    /// Packed integer binary operation: `op xmm/m128, xmm`
    SseBin(SseBinOp),
    /// Packed shift by immediate: `op imm8, xmm`
    SseShift(SseShiftOp),
    /// `pshufd imm8, xmm/m128, xmm`
    Pshufd,
    /// `shufps imm8, xmm/m128, xmm`
    Shufps,
    /// `punpckldq xmm/m128, xmm`
    Punpckldq,
    /// `punpcklqdq xmm/m128, xmm`
    Punpcklqdq,
}

impl Opcode {
    /// The complete list of opcodes considered by the search.
    ///
    /// This is the pool sampled by the MCMC `Instruction` move, and the
    /// universe from which opcode equivalence classes are drawn.
    pub fn all() -> Vec<Opcode> {
        let mut v = Vec::with_capacity(200);
        use Width::{B, L, Q};
        // Data movement.
        for w in [B, L, Q] {
            v.push(Opcode::Mov(w));
        }
        v.push(Opcode::Movabs);
        v.extend([
            Opcode::Movslq,
            Opcode::Movsbq,
            Opcode::Movsbl,
            Opcode::Movzbq,
            Opcode::Movzbl,
        ]);
        for w in [L, Q] {
            v.push(Opcode::Lea(w));
            v.push(Opcode::Xchg(w));
        }
        v.push(Opcode::Push);
        v.push(Opcode::Pop);
        for c in Cond::ALL {
            for w in [L, Q] {
                v.push(Opcode::Cmov(c, w));
            }
            v.push(Opcode::Set(c));
        }
        // ALU.
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
            for w in [B, L, Q] {
                v.push(Opcode::Alu(op, w));
            }
        }
        for op in [AluOp::Adc, AluOp::Sbb] {
            for w in [L, Q] {
                v.push(Opcode::Alu(op, w));
            }
        }
        for w in [B, L, Q] {
            v.push(Opcode::Cmp(w));
            v.push(Opcode::Test(w));
        }
        for op in [UnOp::Neg, UnOp::Not, UnOp::Inc, UnOp::Dec] {
            for w in [L, Q] {
                v.push(Opcode::Un(op, w));
            }
        }
        for w in [L, Q] {
            v.push(Opcode::Imul2(w));
            v.push(Opcode::Imul1(w));
            v.push(Opcode::Mul1(w));
            v.push(Opcode::Div(w));
            v.push(Opcode::Idiv(w));
        }
        for op in [
            ShiftOp::Shl,
            ShiftOp::Shr,
            ShiftOp::Sar,
            ShiftOp::Rol,
            ShiftOp::Ror,
        ] {
            for w in [L, Q] {
                v.push(Opcode::Shift(op, w));
            }
        }
        for op in [BitOp::Popcnt, BitOp::Bsf, BitOp::Bsr, BitOp::Bswap] {
            for w in [L, Q] {
                v.push(Opcode::Bits(op, w));
            }
        }
        v.extend([Opcode::Cqto, Opcode::Cltq, Opcode::Cltd, Opcode::Nop]);
        // SSE.
        v.extend([
            Opcode::MovdToXmm,
            Opcode::MovdFromXmm,
            Opcode::MovqToXmm,
            Opcode::MovqFromXmm,
        ]);
        for m in SseMov128::ALL {
            v.push(Opcode::Mov128(m));
        }
        for op in SseBinOp::ALL {
            v.push(Opcode::SseBin(op));
        }
        for op in SseShiftOp::ALL {
            v.push(Opcode::SseShift(op));
        }
        v.extend([
            Opcode::Pshufd,
            Opcode::Shufps,
            Opcode::Punpckldq,
            Opcode::Punpcklqdq,
        ]);
        v
    }

    /// The operand width for scalar opcodes, if meaningful.
    pub fn width(&self) -> Option<Width> {
        match *self {
            Opcode::Mov(w)
            | Opcode::Lea(w)
            | Opcode::Xchg(w)
            | Opcode::Cmov(_, w)
            | Opcode::Alu(_, w)
            | Opcode::Cmp(w)
            | Opcode::Test(w)
            | Opcode::Un(_, w)
            | Opcode::Imul2(w)
            | Opcode::Imul1(w)
            | Opcode::Mul1(w)
            | Opcode::Div(w)
            | Opcode::Idiv(w)
            | Opcode::Shift(_, w)
            | Opcode::Bits(_, w) => Some(w),
            Opcode::Movabs
            | Opcode::Push
            | Opcode::Pop
            | Opcode::MovqToXmm
            | Opcode::MovqFromXmm => Some(Width::Q),
            Opcode::Movslq | Opcode::Movsbq | Opcode::Movzbq => Some(Width::Q),
            Opcode::Movsbl | Opcode::Movzbl | Opcode::MovdToXmm | Opcode::MovdFromXmm => {
                Some(Width::L)
            }
            Opcode::Set(_) => Some(Width::B),
            _ => None,
        }
    }

    /// Operand slot specifications, in AT&T order (sources before the
    /// destination). An empty slice means the opcode takes no operands.
    pub fn signature(&self) -> Vec<SlotSpec> {
        use Width::{B, L, Q};
        match *self {
            Opcode::Mov(w) => vec![SlotSpec::reg_imm_mem(w), SlotSpec::reg_mem(w)],
            Opcode::Movabs => vec![SlotSpec::imm(), SlotSpec::reg(Q)],
            Opcode::Movslq => vec![SlotSpec::reg_mem(L), SlotSpec::reg(Q)],
            Opcode::Movsbq | Opcode::Movzbq => vec![SlotSpec::reg_mem(B), SlotSpec::reg(Q)],
            Opcode::Movsbl | Opcode::Movzbl => vec![SlotSpec::reg_mem(B), SlotSpec::reg(L)],
            Opcode::Lea(w) => vec![SlotSpec::mem(), SlotSpec::reg(w)],
            Opcode::Xchg(w) => vec![SlotSpec::reg(w), SlotSpec::reg(w)],
            Opcode::Push => vec![SlotSpec::reg(Q)],
            Opcode::Pop => vec![SlotSpec::reg(Q)],
            Opcode::Cmov(_, w) => vec![SlotSpec::reg_mem(w), SlotSpec::reg(w)],
            Opcode::Set(_) => vec![SlotSpec::reg_mem(B)],
            Opcode::Alu(_, w) | Opcode::Cmp(w) | Opcode::Test(w) => {
                vec![SlotSpec::reg_imm_mem(w), SlotSpec::reg_mem(w)]
            }
            Opcode::Un(_, w) => vec![SlotSpec::reg_mem(w)],
            // `imul imm, reg` is accepted as shorthand for the three-operand
            // immediate form with source == destination.
            Opcode::Imul2(w) => vec![SlotSpec::reg_imm_mem(w), SlotSpec::reg(w)],
            Opcode::Imul1(w) | Opcode::Mul1(w) | Opcode::Div(w) | Opcode::Idiv(w) => {
                vec![SlotSpec::reg_mem(w)]
            }
            Opcode::Shift(_, w) => vec![SlotSpec::reg_imm(B), SlotSpec::reg_mem(w)],
            Opcode::Bits(BitOp::Bswap, w) => vec![SlotSpec::reg(w)],
            Opcode::Bits(_, w) => vec![SlotSpec::reg_mem(w), SlotSpec::reg(w)],
            Opcode::Cqto | Opcode::Cltq | Opcode::Cltd | Opcode::Nop => vec![],
            Opcode::MovdToXmm => vec![SlotSpec::reg(L), SlotSpec::xmm()],
            Opcode::MovdFromXmm => vec![SlotSpec::xmm(), SlotSpec::reg(L)],
            Opcode::MovqToXmm => vec![SlotSpec::reg(Q), SlotSpec::xmm()],
            Opcode::MovqFromXmm => vec![SlotSpec::xmm(), SlotSpec::reg(Q)],
            Opcode::Mov128(_) => vec![SlotSpec::xmm_mem(), SlotSpec::xmm_mem()],
            Opcode::SseBin(_) | Opcode::Punpckldq | Opcode::Punpcklqdq => {
                vec![SlotSpec::xmm_mem(), SlotSpec::xmm()]
            }
            Opcode::SseShift(_) => vec![SlotSpec::imm(), SlotSpec::xmm()],
            Opcode::Pshufd | Opcode::Shufps => {
                vec![SlotSpec::imm(), SlotSpec::xmm_mem(), SlotSpec::xmm()]
            }
        }
    }

    /// Number of operands the opcode takes.
    pub fn arity(&self) -> usize {
        self.signature().len()
    }

    /// Implicit general purpose registers read by the opcode (beyond its
    /// explicit operands).
    pub fn implicit_uses(&self) -> &'static [Gpr] {
        match self {
            Opcode::Imul1(_) | Opcode::Mul1(_) => &[Gpr::Rax],
            Opcode::Div(_) | Opcode::Idiv(_) => &[Gpr::Rax, Gpr::Rdx],
            Opcode::Cqto | Opcode::Cltq | Opcode::Cltd => &[Gpr::Rax],
            Opcode::Push | Opcode::Pop => &[Gpr::Rsp],
            _ => &[],
        }
    }

    /// Implicit general purpose registers written by the opcode.
    pub fn implicit_defs(&self) -> &'static [Gpr] {
        match self {
            Opcode::Imul1(_) | Opcode::Mul1(_) | Opcode::Div(_) | Opcode::Idiv(_) => {
                &[Gpr::Rax, Gpr::Rdx]
            }
            Opcode::Cqto => &[Gpr::Rdx],
            Opcode::Cltq => &[Gpr::Rax],
            Opcode::Cltd => &[Gpr::Rdx],
            Opcode::Push | Opcode::Pop => &[Gpr::Rsp],
            _ => &[],
        }
    }

    /// Condition flags written by the opcode.
    pub fn flags_written(&self) -> &'static [Flag] {
        const ARITH: &[Flag] = &[Flag::Cf, Flag::Zf, Flag::Sf, Flag::Of, Flag::Pf];
        const LOGIC: &[Flag] = ARITH; // CF/OF cleared, still written
        const SHIFT: &[Flag] = ARITH;
        const ROT: &[Flag] = &[Flag::Cf, Flag::Of];
        const INCDEC: &[Flag] = &[Flag::Zf, Flag::Sf, Flag::Of, Flag::Pf];
        match self {
            Opcode::Alu(op, _) => match op {
                AluOp::And | AluOp::Or | AluOp::Xor => LOGIC,
                _ => ARITH,
            },
            Opcode::Cmp(_) | Opcode::Test(_) => ARITH,
            Opcode::Un(UnOp::Neg, _) => ARITH,
            Opcode::Un(UnOp::Not, _) => &[],
            Opcode::Un(UnOp::Inc, _) | Opcode::Un(UnOp::Dec, _) => INCDEC,
            Opcode::Imul2(_) | Opcode::Imul1(_) | Opcode::Mul1(_) => &[Flag::Cf, Flag::Of],
            Opcode::Div(_) | Opcode::Idiv(_) => ARITH, // undefined in hardware; modelled as written
            Opcode::Shift(ShiftOp::Rol, _) | Opcode::Shift(ShiftOp::Ror, _) => ROT,
            Opcode::Shift(_, _) => SHIFT,
            Opcode::Bits(BitOp::Popcnt, _) => ARITH,
            Opcode::Bits(BitOp::Bsf, _) | Opcode::Bits(BitOp::Bsr, _) => &[Flag::Zf],
            _ => &[],
        }
    }

    /// Condition flags read by the opcode.
    pub fn flags_read(&self) -> &'static [Flag] {
        match self {
            Opcode::Alu(AluOp::Adc, _) | Opcode::Alu(AluOp::Sbb, _) => &[Flag::Cf],
            Opcode::Cmov(c, _) | Opcode::Set(c) => c.flags_read(),
            _ => &[],
        }
    }

    /// Whether the opcode writes its last (destination) operand.
    ///
    /// `cmp` and `test` only set flags; stores write memory rather than a
    /// register destination but are still considered to write their last
    /// operand.
    pub fn writes_dst(&self) -> bool {
        !matches!(
            self,
            Opcode::Cmp(_)
                | Opcode::Test(_)
                | Opcode::Push
                | Opcode::Nop
                | Opcode::Cqto
                | Opcode::Cltq
                | Opcode::Cltd
                // The one-operand multiply/divide family reads its explicit
                // operand and writes only the implicit rdx:rax pair.
                | Opcode::Imul1(_)
                | Opcode::Mul1(_)
                | Opcode::Div(_)
                | Opcode::Idiv(_)
        ) && self.arity() > 0
    }

    /// Whether the destination operand is also read (read-modify-write).
    pub fn dst_is_also_src(&self) -> bool {
        matches!(
            self,
            Opcode::Alu(_, _)
                | Opcode::Un(_, _)
                | Opcode::Imul2(_)
                | Opcode::Shift(_, _)
                | Opcode::Xchg(_)
                | Opcode::SseBin(_)
                | Opcode::SseShift(_)
                | Opcode::Shufps
                | Opcode::Punpckldq
                | Opcode::Punpcklqdq
                | Opcode::Bits(BitOp::Bswap, _)
        )
    }

    /// Average instruction latency in cycles, following the static
    /// approximation of §4.2 of the paper (`H(f) = Σ LATENCY(i)`).
    ///
    /// The values are representative of a Nehalem/Sandy-Bridge class core;
    /// the absolute numbers matter less than their relative ordering.
    pub fn latency(&self) -> u32 {
        match self {
            Opcode::Nop => 0,
            Opcode::Mov(_) | Opcode::Movabs => 1,
            Opcode::Movslq | Opcode::Movsbq | Opcode::Movsbl | Opcode::Movzbq | Opcode::Movzbl => 1,
            Opcode::Lea(_) => 1,
            Opcode::Xchg(_) => 2,
            Opcode::Push | Opcode::Pop => 2,
            Opcode::Cmov(_, _) => 2,
            Opcode::Set(_) => 1,
            Opcode::Alu(_, _) | Opcode::Cmp(_) | Opcode::Test(_) | Opcode::Un(_, _) => 1,
            Opcode::Imul2(_) => 3,
            Opcode::Imul1(_) | Opcode::Mul1(_) => 4,
            Opcode::Div(Width::L) | Opcode::Idiv(Width::L) => 22,
            Opcode::Div(_) | Opcode::Idiv(_) => 40,
            Opcode::Shift(_, _) => 1,
            Opcode::Bits(BitOp::Popcnt, _) => 3,
            Opcode::Bits(BitOp::Bsf, _) | Opcode::Bits(BitOp::Bsr, _) => 3,
            Opcode::Bits(BitOp::Bswap, _) => 1,
            Opcode::Cqto | Opcode::Cltq | Opcode::Cltd => 1,
            Opcode::MovdToXmm | Opcode::MovdFromXmm | Opcode::MovqToXmm | Opcode::MovqFromXmm => 2,
            Opcode::Mov128(_) => 1,
            Opcode::SseBin(op) => match op {
                SseBinOp::Pmullw | SseBinOp::Pmulld | SseBinOp::Pmuludq => 5,
                _ => 1,
            },
            Opcode::SseShift(_) => 1,
            Opcode::Pshufd | Opcode::Shufps | Opcode::Punpckldq | Opcode::Punpcklqdq => 1,
        }
    }

    /// The AT&T mnemonic used when printing the opcode.
    pub fn name(&self) -> String {
        match self {
            Opcode::Mov(w) => format!("mov{}", w.suffix()),
            Opcode::Movabs => "movabsq".to_string(),
            Opcode::Movslq => "movslq".to_string(),
            Opcode::Movsbq => "movsbq".to_string(),
            Opcode::Movsbl => "movsbl".to_string(),
            Opcode::Movzbq => "movzbq".to_string(),
            Opcode::Movzbl => "movzbl".to_string(),
            Opcode::Lea(w) => format!("lea{}", w.suffix()),
            Opcode::Xchg(w) => format!("xchg{}", w.suffix()),
            Opcode::Push => "pushq".to_string(),
            Opcode::Pop => "popq".to_string(),
            Opcode::Cmov(c, w) => format!("cmov{}{}", c.name(), w.suffix()),
            Opcode::Set(c) => format!("set{}", c.name()),
            Opcode::Alu(op, w) => {
                let base = match op {
                    AluOp::Add => "add",
                    AluOp::Adc => "adc",
                    AluOp::Sub => "sub",
                    AluOp::Sbb => "sbb",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                };
                format!("{}{}", base, w.suffix())
            }
            Opcode::Cmp(w) => format!("cmp{}", w.suffix()),
            Opcode::Test(w) => format!("test{}", w.suffix()),
            Opcode::Un(op, w) => {
                let base = match op {
                    UnOp::Neg => "neg",
                    UnOp::Not => "not",
                    UnOp::Inc => "inc",
                    UnOp::Dec => "dec",
                };
                format!("{}{}", base, w.suffix())
            }
            Opcode::Imul2(w) | Opcode::Imul1(w) => format!("imul{}", w.suffix()),
            Opcode::Mul1(w) => format!("mul{}", w.suffix()),
            Opcode::Div(w) => format!("div{}", w.suffix()),
            Opcode::Idiv(w) => format!("idiv{}", w.suffix()),
            Opcode::Shift(op, w) => {
                let base = match op {
                    ShiftOp::Shl => "shl",
                    ShiftOp::Shr => "shr",
                    ShiftOp::Sar => "sar",
                    ShiftOp::Rol => "rol",
                    ShiftOp::Ror => "ror",
                };
                format!("{}{}", base, w.suffix())
            }
            Opcode::Bits(op, w) => {
                let base = match op {
                    BitOp::Popcnt => "popcnt",
                    BitOp::Bsf => "bsf",
                    BitOp::Bsr => "bsr",
                    BitOp::Bswap => "bswap",
                };
                format!("{}{}", base, w.suffix())
            }
            Opcode::Cqto => "cqto".to_string(),
            Opcode::Cltq => "cltq".to_string(),
            Opcode::Cltd => "cltd".to_string(),
            Opcode::Nop => "nop".to_string(),
            Opcode::MovdToXmm | Opcode::MovdFromXmm => "movd".to_string(),
            Opcode::MovqToXmm | Opcode::MovqFromXmm => "movq".to_string(),
            Opcode::Mov128(m) => m.name().to_string(),
            Opcode::SseBin(op) => op.name().to_string(),
            Opcode::SseShift(op) => op.name().to_string(),
            Opcode::Pshufd => "pshufd".to_string(),
            Opcode::Shufps => "shufps".to_string(),
            Opcode::Punpckldq => "punpckldq".to_string(),
            Opcode::Punpcklqdq => "punpcklqdq".to_string(),
        }
    }

    /// Whether this opcode may read memory through an explicit memory
    /// operand. `lea` computes an address without dereferencing it and is
    /// therefore excluded.
    pub fn may_load(&self) -> bool {
        if matches!(self, Opcode::Lea(_)) {
            return false;
        }
        self.signature()
            .iter()
            .take(self.arity().saturating_sub(usize::from(self.writes_dst())))
            .any(|s| s.mem)
            || (self.dst_is_also_src() && self.signature().last().is_some_and(|s| s.mem))
            || matches!(self, Opcode::Pop)
    }

    /// Whether this opcode may write memory through its destination
    /// operand.
    pub fn may_store(&self) -> bool {
        (self.writes_dst() && self.signature().last().is_some_and(|s| s.mem))
            || matches!(self, Opcode::Push)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_universe_size() {
        let all = Opcode::all();
        // The paper quotes "nearly 400" opcodes for the full ISA; our
        // modelled subset is deliberately smaller but must stay large
        // enough to make enumeration-based superoptimization hopeless.
        assert!(all.len() >= 140, "only {} opcodes modelled", all.len());
        // No duplicates.
        let mut dedup = all.clone();
        dedup.sort_by_key(|o| format!("{:?}", o));
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn names_unique_per_signature_arity() {
        // The textual assembly syntax must be unambiguous: a mnemonic may
        // only be shared by opcodes that are distinguished by operand
        // kinds (e.g. movd to/from xmm) or arity (imul 1-op vs 2-op).
        use std::collections::HashMap;
        let mut seen: HashMap<(String, usize, Vec<bool>), Opcode> = HashMap::new();
        for op in Opcode::all() {
            let key = (
                op.name(),
                op.arity(),
                // disambiguator: which slots accept an xmm register
                op.signature().iter().map(|s| s.xmm).collect::<Vec<_>>(),
            );
            if let Some(prev) = seen.get(&key) {
                panic!("ambiguous mnemonic {:?} for {:?} and {:?}", key, prev, op);
            }
            seen.insert(key, op);
        }
    }

    #[test]
    fn cond_eval_matches_flags() {
        // cmp 3, 5 (i.e. 5 - 3): no carry, non-zero, positive.
        assert!(Cond::A.eval(false, false, false, false));
        assert!(Cond::Ne.eval(false, false, false, false));
        assert!(!Cond::E.eval(false, false, false, false));
        assert!(Cond::G.eval(false, false, false, false));
        // Equal case.
        assert!(Cond::E.eval(false, true, false, false));
        assert!(Cond::Le.eval(false, true, false, false));
        assert!(!Cond::A.eval(false, true, false, false));
        // Signed less: SF != OF.
        assert!(Cond::L.eval(false, false, true, false));
        assert!(Cond::L.eval(false, false, false, true));
        assert!(!Cond::L.eval(false, false, true, true));
    }

    #[test]
    fn signatures_are_consistent() {
        for op in Opcode::all() {
            let sig = op.signature();
            assert_eq!(sig.len(), op.arity());
            if op.writes_dst() {
                assert!(!sig.is_empty(), "{} writes dst but has no operands", op);
            }
        }
    }

    #[test]
    fn implicit_regs() {
        assert!(Opcode::Mul1(Width::Q).implicit_defs().contains(&Gpr::Rdx));
        assert!(Opcode::Mul1(Width::Q).implicit_uses().contains(&Gpr::Rax));
        assert!(Opcode::Div(Width::Q).implicit_uses().contains(&Gpr::Rdx));
        assert!(Opcode::Cqto.implicit_defs().contains(&Gpr::Rdx));
        assert!(Opcode::Alu(AluOp::Add, Width::Q).implicit_defs().is_empty());
    }

    #[test]
    fn flag_effects() {
        assert!(Opcode::Alu(AluOp::Adc, Width::Q)
            .flags_read()
            .contains(&Flag::Cf));
        assert!(Opcode::Alu(AluOp::Add, Width::Q)
            .flags_written()
            .contains(&Flag::Cf));
        assert!(Opcode::Un(UnOp::Not, Width::Q).flags_written().is_empty());
        assert!(Opcode::Cmov(Cond::E, Width::Q)
            .flags_read()
            .contains(&Flag::Zf));
        assert!(Opcode::Mov(Width::Q).flags_written().is_empty());
        // inc/dec preserve CF.
        assert!(!Opcode::Un(UnOp::Inc, Width::Q)
            .flags_written()
            .contains(&Flag::Cf));
    }

    #[test]
    fn latency_ordering() {
        // Division is much slower than multiplication which is slower
        // than simple ALU operations.
        let alu = Opcode::Alu(AluOp::Add, Width::Q).latency();
        let mul = Opcode::Mul1(Width::Q).latency();
        let div = Opcode::Div(Width::Q).latency();
        assert!(alu < mul && mul < div);
    }

    #[test]
    fn load_store_classification() {
        assert!(Opcode::Mov(Width::Q).may_load());
        assert!(Opcode::Mov(Width::Q).may_store());
        assert!(Opcode::Lea(Width::Q).signature()[0].mem);
        assert!(!Opcode::Lea(Width::Q).may_store());
        assert!(Opcode::Push.may_store());
        assert!(Opcode::Pop.may_load());
        assert!(!Opcode::Set(Cond::E).may_load());
    }
}
