//! Instruction operands: register, immediate and memory operands, together
//! with the operand *kind* lattice used to validate instructions and to
//! drive the MCMC operand / opcode proposal moves.

use crate::reg::{Gpr, Reg, Width, Xmm};
use std::fmt;

/// Memory address scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing
pub enum Scale {
    S1,
    S2,
    S4,
    S8,
}

impl Scale {
    /// All scale factors.
    pub const ALL: [Scale; 4] = [Scale::S1, Scale::S2, Scale::S4, Scale::S8];

    /// The numeric multiplier.
    pub fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// Parse a scale factor from its numeric value.
    pub fn from_factor(f: u64) -> Option<Scale> {
        match f {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.factor())
    }
}

/// A memory operand of the form `disp(base, index, scale)`.
///
/// The effective address is `base + index * scale + disp` where absent
/// components contribute zero. The access width is determined by the
/// opcode, not by the operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register (64-bit), if any.
    pub base: Option<Gpr>,
    /// Index register (64-bit), if any.
    pub index: Option<Gpr>,
    /// Scale applied to the index register.
    pub scale: Scale,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl Mem {
    /// A base-register-only address: `(base)`.
    pub fn base(base: Gpr) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            scale: Scale::S1,
            disp: 0,
        }
    }

    /// A base + displacement address: `disp(base)`.
    pub fn base_disp(base: Gpr, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            scale: Scale::S1,
            disp,
        }
    }

    /// A fully general scaled-index address: `disp(base, index, scale)`.
    pub fn base_index(base: Gpr, index: Gpr, scale: Scale, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        write!(f, "(")?;
        if let Some(b) = self.base {
            write!(f, "{}", b.name64())?;
        }
        if let Some(i) = self.index {
            write!(f, ",{},{}", i.name64(), self.scale)?;
        }
        write!(f, ")")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general purpose register view.
    Reg(Reg),
    /// An SSE register.
    Xmm(Xmm),
    /// An immediate constant (stored sign-extended to 64 bits).
    Imm(i64),
    /// A memory reference.
    Mem(Mem),
}

impl Operand {
    /// The kind of this operand (used for signature validation).
    pub fn kind(&self) -> OperandKind {
        match self {
            Operand::Reg(r) => OperandKind::Reg(r.width()),
            Operand::Xmm(_) => OperandKind::Xmm,
            Operand::Imm(_) => OperandKind::Imm,
            Operand::Mem(_) => OperandKind::Mem,
        }
    }

    /// The register, if this is a GPR operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The SSE register, if this is an XMM operand.
    pub fn as_xmm(&self) -> Option<Xmm> {
        match self {
            Operand::Xmm(x) => Some(*x),
            _ => None,
        }
    }

    /// The immediate value, if this is an immediate operand.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(*i),
            _ => None,
        }
    }

    /// The memory reference, if this is a memory operand.
    pub fn as_mem(&self) -> Option<Mem> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether this operand is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{}", r),
            Operand::Xmm(x) => write!(f, "{}", x),
            Operand::Imm(i) => write!(f, "{}", i),
            Operand::Mem(m) => write!(f, "{}", m),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Xmm> for Operand {
    fn from(x: Xmm) -> Operand {
        Operand::Xmm(x)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

/// The concrete kind of an operand, used to match operands against opcode
/// signatures and to define the operand equivalence classes of the MCMC
/// `Operand` move (an operand is only ever replaced by another operand of
/// the same kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// A GPR view of the given width.
    Reg(Width),
    /// An SSE register.
    Xmm,
    /// An immediate.
    Imm,
    /// A memory reference.
    Mem,
}

/// What an opcode accepts in a particular operand slot.
///
/// This is a small set over [`OperandKind`]: e.g. the source slot of `addq`
/// accepts a 64-bit register, an immediate or a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotSpec {
    /// Accepts a GPR of this width.
    pub reg: Option<Width>,
    /// Accepts an immediate.
    pub imm: bool,
    /// Accepts a memory reference.
    pub mem: bool,
    /// Accepts an SSE register.
    pub xmm: bool,
}

impl SlotSpec {
    /// A slot that only accepts a GPR of width `w`.
    pub const fn reg(w: Width) -> SlotSpec {
        SlotSpec {
            reg: Some(w),
            imm: false,
            mem: false,
            xmm: false,
        }
    }

    /// A slot that accepts a GPR of width `w` or a memory reference.
    pub const fn reg_mem(w: Width) -> SlotSpec {
        SlotSpec {
            reg: Some(w),
            imm: false,
            mem: true,
            xmm: false,
        }
    }

    /// A slot that accepts a GPR of width `w`, an immediate or a memory
    /// reference (a typical ALU source slot).
    pub const fn reg_imm_mem(w: Width) -> SlotSpec {
        SlotSpec {
            reg: Some(w),
            imm: true,
            mem: true,
            xmm: false,
        }
    }

    /// A slot that accepts a GPR of width `w` or an immediate.
    pub const fn reg_imm(w: Width) -> SlotSpec {
        SlotSpec {
            reg: Some(w),
            imm: true,
            mem: false,
            xmm: false,
        }
    }

    /// A slot that only accepts an immediate.
    pub const fn imm() -> SlotSpec {
        SlotSpec {
            reg: None,
            imm: true,
            mem: false,
            xmm: false,
        }
    }

    /// A slot that only accepts a memory reference.
    pub const fn mem() -> SlotSpec {
        SlotSpec {
            reg: None,
            imm: false,
            mem: true,
            xmm: false,
        }
    }

    /// A slot that only accepts an SSE register.
    pub const fn xmm() -> SlotSpec {
        SlotSpec {
            reg: None,
            imm: false,
            mem: false,
            xmm: true,
        }
    }

    /// A slot that accepts an SSE register or a memory reference.
    pub const fn xmm_mem() -> SlotSpec {
        SlotSpec {
            reg: None,
            imm: false,
            mem: true,
            xmm: true,
        }
    }

    /// Whether an operand of kind `k` is allowed in this slot.
    pub fn accepts(&self, k: OperandKind) -> bool {
        match k {
            OperandKind::Reg(w) => self.reg == Some(w),
            OperandKind::Imm => self.imm,
            OperandKind::Mem => self.mem,
            OperandKind::Xmm => self.xmm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_display() {
        let m = Mem::base_disp(Gpr::Rsp, -8);
        assert_eq!(m.to_string(), "-8(rsp)");
        let m = Mem::base_index(Gpr::Rsi, Gpr::Rcx, Scale::S4, 0);
        assert_eq!(m.to_string(), "(rsi,rcx,4)");
        let m = Mem::base_index(Gpr::Rdx, Gpr::R9, Scale::S4, 16);
        assert_eq!(m.to_string(), "16(rdx,r9,4)");
        let m = Mem::base(Gpr::Rdi);
        assert_eq!(m.to_string(), "(rdi)");
    }

    #[test]
    fn slot_spec_accepts() {
        let s = SlotSpec::reg_imm_mem(Width::Q);
        assert!(s.accepts(OperandKind::Reg(Width::Q)));
        assert!(!s.accepts(OperandKind::Reg(Width::L)));
        assert!(s.accepts(OperandKind::Imm));
        assert!(s.accepts(OperandKind::Mem));
        assert!(!s.accepts(OperandKind::Xmm));

        let x = SlotSpec::xmm_mem();
        assert!(x.accepts(OperandKind::Xmm));
        assert!(x.accepts(OperandKind::Mem));
        assert!(!x.accepts(OperandKind::Imm));
    }

    #[test]
    fn operand_kinds() {
        assert_eq!(Operand::Imm(3).kind(), OperandKind::Imm);
        assert_eq!(
            Operand::Reg(Reg::new(Gpr::Rax, Width::L)).kind(),
            OperandKind::Reg(Width::L)
        );
        assert_eq!(Operand::Xmm(Xmm(3)).kind(), OperandKind::Xmm);
        assert_eq!(Operand::Mem(Mem::base(Gpr::Rdi)).kind(), OperandKind::Mem);
    }

    #[test]
    fn mem_regs_iter() {
        let m = Mem::base_index(Gpr::Rsi, Gpr::Rcx, Scale::S4, 0);
        let regs: Vec<_> = m.regs().collect();
        assert_eq!(regs, vec![Gpr::Rsi, Gpr::Rcx]);
        let m = Mem::base(Gpr::Rdi);
        assert_eq!(m.regs().count(), 1);
    }

    #[test]
    fn scale_roundtrip() {
        for s in Scale::ALL {
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_factor(3), None);
    }
}
