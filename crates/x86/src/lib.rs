//! # stoke-x86
//!
//! The x86-64 instruction-set model underlying the STOKE reproduction:
//! registers, operands, the modelled opcode subset with its metadata
//! (operand signatures, implicit registers, flag effects, latencies), a
//! parser and printer for the AT&T-flavoured syntax used in the paper's
//! figures, dataflow/liveness analysis, and the opcode/operand equivalence
//! classes that drive the MCMC proposal distribution.
//!
//! ## Quick example
//!
//! ```
//! use stoke_x86::{Program, flow::{live_inputs, LocSet}, Gpr};
//!
//! let program: Program = "
//!     movq rdi, rax
//!     addq rsi, rax
//! ".parse().unwrap();
//!
//! assert_eq!(program.len(), 2);
//! // With rax live out, both rdi and rsi are live inputs.
//! let live_in = live_inputs(&program, &LocSet::from_gprs([Gpr::Rax]));
//! assert!(live_in.gprs.contains(&Gpr::Rdi));
//! assert!(live_in.gprs.contains(&Gpr::Rsi));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canon;
pub mod classes;
pub mod flow;
pub mod instr;
pub mod opcode;
pub mod operand;
pub mod parse;
pub mod program;
pub mod reg;

pub use canon::{canonical_renaming, canonicalize, normalize_immediates, Renaming};
pub use classes::OpcodeClasses;
pub use instr::{build, InstrError, Instruction};
pub use opcode::{AluOp, BitOp, Cond, Opcode, ShiftOp, SseBinOp, SseMov128, SseShiftOp, UnOp};
pub use operand::{Mem, Operand, OperandKind, Scale, SlotSpec};
pub use parse::{parse_instruction, parse_program, ParseError};
pub use program::Program;
pub use reg::{Flag, Gpr, Reg, Width, Xmm};
