//! Dataflow over straight-line code: register/flag definition and use
//! sets, and backward liveness analysis.
//!
//! Liveness is computed at the granularity of 64-bit architectural
//! registers (a use of `eax` is a use of `rax`), which is the granularity
//! at which the cost function and the validator compare machine states.

use crate::instr::Instruction;
use crate::program::Program;
use crate::reg::{Flag, Gpr, Xmm};
use std::collections::BTreeSet;

/// A set of live locations: general purpose registers, SSE registers and
/// flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocSet {
    /// Live general purpose registers (at 64-bit granularity).
    pub gprs: BTreeSet<Gpr>,
    /// Live SSE registers.
    pub xmms: BTreeSet<Xmm>,
    /// Live flags.
    pub flags: BTreeSet<Flag>,
}

impl LocSet {
    /// An empty location set.
    pub fn new() -> LocSet {
        LocSet::default()
    }

    /// A set containing only the given general purpose registers.
    pub fn from_gprs(gprs: impl IntoIterator<Item = Gpr>) -> LocSet {
        LocSet {
            gprs: gprs.into_iter().collect(),
            ..LocSet::default()
        }
    }

    /// Whether no location is live.
    pub fn is_empty(&self) -> bool {
        self.gprs.is_empty() && self.xmms.is_empty() && self.flags.is_empty()
    }

    /// Number of live locations.
    pub fn len(&self) -> usize {
        self.gprs.len() + self.xmms.len() + self.flags.len()
    }

    /// Insert all locations from `other`.
    pub fn union_with(&mut self, other: &LocSet) {
        self.gprs.extend(other.gprs.iter().copied());
        self.xmms.extend(other.xmms.iter().copied());
        self.flags.extend(other.flags.iter().copied());
    }
}

/// The locations read by an instruction (at 64-bit register granularity).
pub fn uses(instr: &Instruction) -> LocSet {
    let mut s = LocSet::new();
    for r in instr.gpr_uses() {
        s.gprs.insert(r.parent());
    }
    for x in instr.xmm_uses() {
        s.xmms.insert(x);
    }
    for f in instr.flag_uses() {
        s.flags.insert(*f);
    }
    s
}

/// The locations written by an instruction.
///
/// A write to a 32-bit register view counts as a definition of the full
/// 64-bit register (the upper half is zeroed); writes to 8-bit views do
/// *not* kill the parent register (the upper bits are preserved), so they
/// are not included in the kill set used by liveness, but they are still
/// definitions. The `partial` flag distinguishes the two.
pub fn defs(instr: &Instruction) -> (LocSet, LocSet) {
    let mut full = LocSet::new();
    let mut partial = LocSet::new();
    for r in instr.gpr_defs() {
        match r.width() {
            crate::reg::Width::B | crate::reg::Width::W => {
                partial.gprs.insert(r.parent());
            }
            _ => {
                full.gprs.insert(r.parent());
            }
        }
    }
    for x in instr.xmm_defs() {
        full.xmms.insert(x);
    }
    for f in instr.flag_defs() {
        full.flags.insert(*f);
    }
    (full, partial)
}

/// Backward liveness over a straight-line program.
///
/// Returns, for each instruction index, the set of locations live
/// *before* that instruction; index `len()` (conceptually) corresponds to
/// `live_out` itself. The returned vector has `program.len() + 1` entries
/// with the last entry equal to `live_out`.
pub fn liveness(program: &Program, live_out: &LocSet) -> Vec<LocSet> {
    let n = program.len();
    let mut live = vec![LocSet::new(); n + 1];
    live[n] = live_out.clone();
    for i in (0..n).rev() {
        let instr = &program.instrs()[i];
        let mut cur = live[i + 1].clone();
        let (full_defs, _partial) = defs(instr);
        for g in &full_defs.gprs {
            cur.gprs.remove(g);
        }
        for x in &full_defs.xmms {
            cur.xmms.remove(x);
        }
        for f in &full_defs.flags {
            cur.flags.remove(f);
        }
        cur.union_with(&uses(instr));
        live[i] = cur;
    }
    live
}

/// The live-in set of a program given its live-out set: the locations
/// whose initial values may influence the live outputs. This is the
/// paper's "live inputs with respect to the target".
pub fn live_inputs(program: &Program, live_out: &LocSet) -> LocSet {
    liveness(program, live_out)
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// Instruction indices whose results cannot influence the live outputs
/// (dead code). Useful for sanity checks on generated baselines.
pub fn dead_instructions(program: &Program, live_out: &LocSet) -> Vec<usize> {
    let live = liveness(program, live_out);
    let mut dead = Vec::new();
    for (i, instr) in program.instrs().iter().enumerate() {
        if instr.stores() {
            continue; // stores are always observable
        }
        let after = &live[i + 1];
        let (full, partial) = defs(instr);
        let writes_live = full
            .gprs
            .iter()
            .chain(partial.gprs.iter())
            .any(|g| after.gprs.contains(g))
            || full.xmms.iter().any(|x| after.xmms.contains(x))
            || full.flags.iter().any(|f| after.flags.contains(f));
        if !writes_live && instr.opcode().writes_dst() {
            dead.push(i);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::build;
    use crate::opcode::{AluOp, Cond};
    use crate::reg::Width;

    fn live_rax() -> LocSet {
        LocSet::from_gprs([Gpr::Rax])
    }

    #[test]
    fn straight_line_liveness() {
        // movq rdi, rax ; addq rsi, rax   with rax live out
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let live = liveness(&p, &live_rax());
        assert!(live[0].gprs.contains(&Gpr::Rdi));
        assert!(live[0].gprs.contains(&Gpr::Rsi));
        assert!(
            !live[0].gprs.contains(&Gpr::Rax),
            "rax is killed by the first mov"
        );
        assert!(live[1].gprs.contains(&Gpr::Rax));
    }

    #[test]
    fn flag_liveness_through_adc() {
        // addq rsi, rax sets CF which adcq consumes.
        let p: Program = "addq rsi, rax\nadcq 0, rdx".parse().unwrap();
        let live = liveness(&p, &LocSet::from_gprs([Gpr::Rax, Gpr::Rdx]));
        assert!(live[1].flags.contains(&Flag::Cf));
        assert!(!live[0].flags.contains(&Flag::Cf), "CF defined by addq");
    }

    #[test]
    fn cmov_reads_flags() {
        let p: Program = "cmpl edi, ecx\ncmovel esi, ecx".parse().unwrap();
        let live = liveness(&p, &LocSet::from_gprs([Gpr::Rcx]));
        assert!(live[1].flags.contains(&Flag::Zf));
        assert!(live[0].gprs.contains(&Gpr::Rdi));
        assert!(live[0].gprs.contains(&Gpr::Rsi));
        assert!(live[0].gprs.contains(&Gpr::Rcx));
    }

    #[test]
    fn byte_write_does_not_kill() {
        // sete dl only writes the low byte of rdx, so rdx stays live above.
        let p: Program = "sete dl".parse().unwrap();
        let live = liveness(&p, &LocSet::from_gprs([Gpr::Rdx]));
        assert!(live[0].gprs.contains(&Gpr::Rdx));
        assert!(live[0].flags.contains(&Flag::Zf));
    }

    #[test]
    fn live_inputs_montgomery() {
        // The Montgomery multiplication rewrite reads rsi, rcx, rdx, rdi, r8.
        let text = "
            shlq 32, rcx
            mov edx, edx
            xorq rdx, rcx
            movq rcx, rax
            mulq rsi
            addq r8, rdi
            adcq 0, rdx
            addq rdi, rax
            adcq 0, rdx
            movq rdx, r8
            movq rax, rdi
        ";
        let p: Program = text.parse().unwrap();
        let ins = live_inputs(&p, &LocSet::from_gprs([Gpr::Rdi, Gpr::R8]));
        for g in [Gpr::Rsi, Gpr::Rcx, Gpr::Rdx, Gpr::Rdi, Gpr::R8] {
            assert!(ins.gprs.contains(&g), "{:?} should be a live input", g);
        }
        assert!(!ins.gprs.contains(&Gpr::Rax));
    }

    #[test]
    fn dead_code_detection() {
        let p: Program = "movq rdi, rbx\nmovq rsi, rax".parse().unwrap();
        let dead = dead_instructions(&p, &live_rax());
        assert_eq!(dead, vec![0]);
        // Stores are never dead.
        let p: Program = "movq rdi, (rsp)\nmovq rsi, rax".parse().unwrap();
        assert!(dead_instructions(&p, &live_rax()).is_empty());
    }

    #[test]
    fn defs_partial_vs_full() {
        let i = build::setcc(Cond::E, crate::reg::Reg::new(Gpr::Rdx, Width::B));
        let (full, partial) = defs(&i);
        assert!(full.gprs.is_empty());
        assert!(partial.gprs.contains(&Gpr::Rdx));

        let i = build::alu(
            AluOp::Add,
            Width::L,
            Gpr::Rsi.view(Width::L),
            Gpr::Rax.view(Width::L),
        );
        let (full, _) = defs(&i);
        assert!(
            full.gprs.contains(&Gpr::Rax),
            "32-bit write zeroes the upper half: full def"
        );
    }
}
