//! A parser for the AT&T-flavoured assembly syntax used throughout the
//! paper (and by this repository's printer).
//!
//! The accepted syntax is the one the paper's figures use:
//!
//! ```text
//! .set c0 0xffffffff          # named constants
//! .L0                         # labels (ignored)
//! movq rsi, r9                # registers may be written with or without %
//! shrq 32, rsi                # immediates without $
//! andl c1, r9d                # named constants as immediates
//! movl (rsi,rcx,4), eax       # base/index/scale/displacement addressing
//! movq -8(rsp), rdi
//! ```
//!
//! Immediate operands may also be written with a leading `$`, and `#`
//! starts a comment. The parser is intentionally strict about everything
//! else: unknown mnemonics and malformed operands are errors, because the
//! benchmarks in `stoke-workloads` must only use modelled instructions.

use crate::instr::{InstrError, Instruction};
use crate::opcode::{AluOp, BitOp, Cond, Opcode, ShiftOp, SseBinOp, SseMov128, SseShiftOp, UnOp};
use crate::operand::{Mem, Operand, Scale};
use crate::program::Program;
use crate::reg::{Reg, Width, Xmm};
use std::collections::HashMap;
use std::fmt;

/// An error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a whole program. See the module documentation for the accepted
/// syntax.
///
/// # Errors
/// Returns a [`ParseError`] naming the offending line on malformed input.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut constants: HashMap<String, i64> = HashMap::new();
    let mut program = Program::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let stripped = stripped.trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = stripped.strip_prefix(".set") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(line, ".set requires a name and a value"))?
                .trim_end_matches(',');
            let value = parts
                .next()
                .ok_or_else(|| err(line, ".set requires a value"))?;
            let value = parse_int(value)
                .ok_or_else(|| err(line, format!("bad constant value '{}'", value)))?;
            constants.insert(name.to_string(), value);
            continue;
        }
        if stripped.starts_with('.') || stripped.ends_with(':') {
            // Label or directive: ignored (programs are loop-free).
            continue;
        }
        let instr = parse_instruction(stripped, &constants).map_err(|m| err(line, m))?;
        program.push(instr);
    }
    Ok(program)
}

/// Parse a single instruction (no labels, comments already stripped).
pub fn parse_instruction(
    text: &str,
    constants: &HashMap<String, i64>,
) -> Result<Instruction, String> {
    let text = text.trim();
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let operands = parse_operands(rest, constants)?;
    let opcode = resolve_opcode(mnemonic, &operands)?;
    Instruction::new(opcode, operands).map_err(|e: InstrError| e.to_string())
}

fn parse_operands(text: &str, constants: &HashMap<String, i64>) -> Result<Vec<Operand>, String> {
    if text.is_empty() {
        return Ok(vec![]);
    }
    split_operands(text)
        .into_iter()
        .map(|t| parse_operand(t.trim(), constants))
        .collect()
}

/// Split an operand list on commas that are not inside parentheses.
fn split_operands(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

fn parse_int(text: &str) -> Option<i64> {
    let text = text.trim();
    let (neg, text) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else {
        // Parse through u64 so that full-width unsigned constants work.
        text.parse::<i64>()
            .ok()
            .or_else(|| text.parse::<u64>().ok().map(|v| v as i64))?
    };
    Some(if neg { value.wrapping_neg() } else { value })
}

fn parse_operand(text: &str, constants: &HashMap<String, i64>) -> Result<Operand, String> {
    if text.is_empty() {
        return Err("empty operand".to_string());
    }
    // Memory operand?
    if text.contains('(') {
        return parse_mem(text, constants).map(Operand::Mem);
    }
    // Immediate with $ prefix.
    if let Some(imm) = text.strip_prefix('$') {
        return resolve_imm(imm, constants);
    }
    // Register?
    if let Some(r) = Reg::parse(text) {
        return Ok(Operand::Reg(r));
    }
    if let Some(x) = Xmm::parse(text) {
        return Ok(Operand::Xmm(x));
    }
    // Bare integer or named constant.
    resolve_imm(text, constants)
}

fn resolve_imm(text: &str, constants: &HashMap<String, i64>) -> Result<Operand, String> {
    if let Some(v) = parse_int(text) {
        return Ok(Operand::Imm(v));
    }
    if let Some(v) = constants.get(text) {
        return Ok(Operand::Imm(*v));
    }
    Err(format!("unknown operand '{}'", text))
}

fn parse_mem(text: &str, constants: &HashMap<String, i64>) -> Result<Mem, String> {
    let open = text.find('(').ok_or("expected '('")?;
    let close = text.rfind(')').ok_or("expected ')'")?;
    if close < open {
        return Err(format!("malformed memory operand '{}'", text));
    }
    let disp_text = text[..open].trim();
    let disp = if disp_text.is_empty() {
        0
    } else if let Some(v) = parse_int(disp_text) {
        v
    } else if let Some(v) = constants.get(disp_text) {
        *v
    } else {
        return Err(format!("bad displacement '{}'", disp_text));
    };
    let disp = i32::try_from(disp).map_err(|_| format!("displacement '{}' out of range", disp))?;
    let inner = &text[open + 1..close];
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() > 3 {
        return Err(format!("too many address components in '{}'", text));
    }
    let parse_base = |t: &str| -> Result<Option<crate::reg::Gpr>, String> {
        if t.is_empty() {
            return Ok(None);
        }
        let r = Reg::parse(t).ok_or_else(|| format!("bad address register '{}'", t))?;
        if r.width() != Width::Q {
            return Err(format!("address register '{}' must be 64-bit", t));
        }
        Ok(Some(r.parent()))
    };
    let base = parse_base(parts.first().copied().unwrap_or(""))?;
    let index = parse_base(parts.get(1).copied().unwrap_or(""))?;
    let scale = match parts.get(2) {
        None | Some(&"") => Scale::S1,
        Some(s) => {
            let f = parse_int(s).ok_or_else(|| format!("bad scale '{}'", s))?;
            Scale::from_factor(f as u64).ok_or_else(|| format!("bad scale '{}'", s))?
        }
    };
    Ok(Mem {
        base,
        index,
        scale,
        disp,
    })
}

/// Resolve a mnemonic, using operand kinds to disambiguate (e.g. `movd`
/// to/from XMM, one- vs two-operand `imul`).
fn resolve_opcode(mnemonic: &str, operands: &[Operand]) -> Result<Opcode, String> {
    use Width::{B, L, Q};
    let m = mnemonic.to_ascii_lowercase();
    // Width inferred from the register operands, for suffix-less mnemonics
    // like the paper's `mov edx, edx`.
    let inferred_width = operands
        .iter()
        .rev()
        .find_map(Operand::as_reg)
        .map(Reg::width)
        .unwrap_or(Q);
    // Width-suffixed scalar mnemonics; a bare mnemonic takes the width of
    // its register operands.
    let with_width = |base: &str, f: &dyn Fn(Width) -> Opcode| -> Option<Opcode> {
        for (suffix, w) in [("b", B), ("l", L), ("q", Q)] {
            if m == format!("{}{}", base, suffix) {
                return Some(f(w));
            }
        }
        if m == base {
            return Some(f(inferred_width));
        }
        None
    };
    // SSE / fixed mnemonics first.
    match m.as_str() {
        "movabsq" | "movabs" => return Ok(Opcode::Movabs),
        "movslq" => return Ok(Opcode::Movslq),
        "movsbq" => return Ok(Opcode::Movsbq),
        "movsbl" => return Ok(Opcode::Movsbl),
        "movzbq" => return Ok(Opcode::Movzbq),
        "movzbl" => return Ok(Opcode::Movzbl),
        "pushq" | "push" => return Ok(Opcode::Push),
        "popq" | "pop" => return Ok(Opcode::Pop),
        "cqto" | "cqo" => return Ok(Opcode::Cqto),
        "cltq" | "cdqe" => return Ok(Opcode::Cltq),
        "cltd" | "cdq" => return Ok(Opcode::Cltd),
        "nop" => return Ok(Opcode::Nop),
        "pshufd" => return Ok(Opcode::Pshufd),
        "shufps" => return Ok(Opcode::Shufps),
        "punpckldq" => return Ok(Opcode::Punpckldq),
        "punpcklqdq" => return Ok(Opcode::Punpcklqdq),
        "movd" => {
            return Ok(match operands.first() {
                Some(Operand::Xmm(_)) => Opcode::MovdFromXmm,
                _ => Opcode::MovdToXmm,
            })
        }
        _ => {}
    }
    for sse in SseMov128::ALL {
        if m == sse.name() {
            return Ok(Opcode::Mov128(sse));
        }
    }
    for op in SseBinOp::ALL {
        if m == op.name() {
            return Ok(Opcode::SseBin(op));
        }
    }
    for op in SseShiftOp::ALL {
        if m == op.name() {
            return Ok(Opcode::SseShift(op));
        }
    }
    // movq is ambiguous between the GPR move and the GPR<->XMM move.
    if m == "movq" {
        let has_xmm = operands.iter().any(|o| matches!(o, Operand::Xmm(_)));
        if has_xmm {
            return Ok(match operands.first() {
                Some(Operand::Xmm(_)) => Opcode::MovqFromXmm,
                _ => Opcode::MovqToXmm,
            });
        }
        return Ok(Opcode::Mov(Q));
    }
    if let Some(op) = with_width("mov", &Opcode::Mov) {
        return Ok(op);
    }
    if let Some(op) = with_width("lea", &Opcode::Lea) {
        return Ok(op);
    }
    if let Some(op) = with_width("xchg", &Opcode::Xchg) {
        return Ok(op);
    }
    for (name, alu) in [
        ("add", AluOp::Add),
        ("adc", AluOp::Adc),
        ("sub", AluOp::Sub),
        ("sbb", AluOp::Sbb),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
    ] {
        if let Some(op) = with_width(name, &|w| Opcode::Alu(alu, w)) {
            return Ok(op);
        }
    }
    if let Some(op) = with_width("cmp", &Opcode::Cmp) {
        return Ok(op);
    }
    if let Some(op) = with_width("test", &Opcode::Test) {
        return Ok(op);
    }
    for (name, un) in [
        ("neg", UnOp::Neg),
        ("not", UnOp::Not),
        ("inc", UnOp::Inc),
        ("dec", UnOp::Dec),
    ] {
        if let Some(op) = with_width(name, &|w| Opcode::Un(un, w)) {
            return Ok(op);
        }
    }
    if let Some(op) = with_width("imul", &|w| {
        if operands.len() == 1 {
            Opcode::Imul1(w)
        } else {
            Opcode::Imul2(w)
        }
    }) {
        return Ok(op);
    }
    if let Some(op) = with_width("mul", &Opcode::Mul1) {
        return Ok(op);
    }
    if let Some(op) = with_width("div", &Opcode::Div) {
        return Ok(op);
    }
    if let Some(op) = with_width("idiv", &Opcode::Idiv) {
        return Ok(op);
    }
    for (name, sh) in [
        ("shl", ShiftOp::Shl),
        ("sal", ShiftOp::Shl),
        ("shr", ShiftOp::Shr),
        ("sar", ShiftOp::Sar),
        ("rol", ShiftOp::Rol),
        ("ror", ShiftOp::Ror),
    ] {
        if let Some(op) = with_width(name, &|w| Opcode::Shift(sh, w)) {
            return Ok(op);
        }
    }
    for (name, bit) in [
        ("popcnt", BitOp::Popcnt),
        ("bsf", BitOp::Bsf),
        ("bsr", BitOp::Bsr),
        ("bswap", BitOp::Bswap),
    ] {
        if let Some(op) = with_width(name, &|w| Opcode::Bits(bit, w)) {
            return Ok(op);
        }
    }
    // cmov{cc}{w} and set{cc}.
    if let Some(rest) = m.strip_prefix("cmov") {
        // Try to strip a width suffix; default to the destination width.
        for (suffix, w) in [("q", Q), ("l", L)] {
            if let Some(cc) = rest.strip_suffix(suffix) {
                if let Some(c) = Cond::parse(cc) {
                    return Ok(Opcode::Cmov(c, w));
                }
            }
        }
        if let Some(c) = Cond::parse(rest) {
            let w = operands
                .last()
                .and_then(Operand::as_reg)
                .map(Reg::width)
                .unwrap_or(Q);
            return Ok(Opcode::Cmov(c, w));
        }
    }
    if let Some(rest) = m.strip_prefix("set") {
        if let Some(c) = Cond::parse(rest) {
            return Ok(Opcode::Set(c));
        }
    }
    Err(format!("unknown mnemonic '{}'", mnemonic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;

    #[test]
    fn parses_montgomery_stoke_rewrite() {
        // The STOKE rewrite from Figure 1 (right column).
        let text = "
            .L0
            shlq 32, rcx
            mov edx, edx
            xorq rdx, rcx
            movq rcx, rax
            mulq rsi
            addq r8, rdi
            adcq 0, rdx
            addq rdi, rax
            adcq 0, rdx
            movq rdx, r8
            movq rax, rdi
        ";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.len(), 11);
        assert_eq!(p.instrs()[4].opcode(), Opcode::Mul1(Width::Q));
        assert_eq!(p.instrs()[0].to_string(), "shlq 32, rcx");
        // `mov edx, edx` has no width suffix in the paper; it parses from
        // the operands as a 32-bit move.
        assert_eq!(p.instrs()[1].opcode(), Opcode::Mov(Width::L));
    }

    #[test]
    fn parses_set_directive_constants() {
        let text = "
            .set c0 0xffffffff
            .set c1, 0x100000000
            andl c0, r9d
            movabsq c1, rdx
        ";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.instrs()[0].operands()[0], Operand::Imm(0xffff_ffff));
        assert_eq!(p.instrs()[1].operands()[0], Operand::Imm(0x1_0000_0000));
    }

    #[test]
    fn parses_memory_operands() {
        let text = "
            movslq ecx, rcx
            leaq (rsi,rcx,4), r8
            movl (r8), eax
            imull edi, eax
            addl (rdx,rcx,4), eax
            movl eax, (r8)
            movq -8(rsp), rdi
        ";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.len(), 7);
        let lea = &p.instrs()[1];
        let mem = lea.mem_operand().unwrap();
        assert_eq!(mem.base, Some(Gpr::Rsi));
        assert_eq!(mem.index, Some(Gpr::Rcx));
        assert_eq!(mem.scale, Scale::S4);
        let last = &p.instrs()[6];
        assert_eq!(last.mem_operand().unwrap().disp, -8);
    }

    #[test]
    fn parses_sse_saxpy_rewrite() {
        // Figure 14 (bottom): the STOKE SSE rewrite of SAXPY.
        let text = "
            movd edi, xmm0
            shufps 0, xmm0, xmm0
            movups (rsi,rcx,4), xmm1
            pmullw xmm1, xmm0
            movups (rdx,rcx,4), xmm1
            paddw xmm1, xmm0
            movups xmm0, (rsi,rcx,4)
        ";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p.instrs()[0].opcode(), Opcode::MovdToXmm);
        assert_eq!(p.instrs()[1].opcode(), Opcode::Shufps);
        assert_eq!(p.instrs()[6].opcode(), Opcode::Mov128(SseMov128::Movups));
    }

    #[test]
    fn parses_cmov_and_setcc() {
        let text = "
            cmpl edi, ecx
            cmovel esi, ecx
            sete dl
            cmovne rax, rbx
        ";
        let p: Program = text.parse().unwrap();
        assert_eq!(p.instrs()[1].opcode(), Opcode::Cmov(Cond::E, Width::L));
        assert_eq!(p.instrs()[2].opcode(), Opcode::Set(Cond::E));
        assert_eq!(p.instrs()[3].opcode(), Opcode::Cmov(Cond::Ne, Width::Q));
    }

    #[test]
    fn accepts_percent_and_dollar_prefixes() {
        let p: Program = "movq $5, %rax\naddq %rdi, %rax".parse().unwrap();
        assert_eq!(p.instrs()[0].operands()[0], Operand::Imm(5));
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let e = "frobnicate rax, rbx".parse::<Program>().unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_bad_operand_width() {
        let e = "addq eax, rbx".parse::<Program>().unwrap_err();
        assert!(e.message.contains("does not accept"));
    }

    #[test]
    fn rejects_narrow_address_register() {
        let e = "movl (ecx), eax".parse::<Program>().unwrap_err();
        assert!(e.message.contains("64-bit"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p: Program = "# a comment\n\nmovq rdi, rax   # trailing\n"
            .parse()
            .unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn one_op_imul_vs_two_op() {
        let p: Program = "imulq rsi\nimulq rsi, rax".parse().unwrap();
        assert_eq!(p.instrs()[0].opcode(), Opcode::Imul1(Width::Q));
        assert_eq!(p.instrs()[1].opcode(), Opcode::Imul2(Width::Q));
    }

    #[test]
    fn salq_is_shlq() {
        let p: Program = "salq 32, rdx".parse().unwrap();
        assert_eq!(
            p.instrs()[0].opcode(),
            Opcode::Shift(ShiftOp::Shl, Width::Q)
        );
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p: Program = "addq -16, rsp\nmovabsq 0xffffffffffffffff, rax"
            .parse()
            .unwrap();
        assert_eq!(p.instrs()[0].operands()[0], Operand::Imm(-16));
        assert_eq!(p.instrs()[1].operands()[0], Operand::Imm(-1));
    }
}
