//! Register model: general purpose registers (with 8/16/32/64-bit views),
//! SSE registers and status flags.
//!
//! A [`Gpr`] names one of the sixteen 64-bit architectural registers. A
//! [`Reg`] is a *view* of a `Gpr` at a particular [`Width`] (e.g. `eax` is
//! the 32-bit view of `rax`). Widths follow the AT&T suffix convention:
//! `B` = 8, `W` = 16, `L` = 32, `Q` = 64 bits.

use std::fmt;

/// Operand width, named after the AT&T mnemonic suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit (`b` suffix).
    B,
    /// 16-bit (`w` suffix).
    W,
    /// 32-bit (`l` suffix).
    L,
    /// 64-bit (`q` suffix).
    Q,
}

impl Width {
    /// Number of bits in the width.
    pub fn bits(self) -> u32 {
        match self {
            Width::B => 8,
            Width::W => 16,
            Width::L => 32,
            Width::Q => 64,
        }
    }

    /// Number of bytes in the width.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits()) / 8
    }

    /// Bit mask selecting the low `bits()` bits of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::Q => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// The AT&T instruction suffix character.
    pub fn suffix(self) -> char {
        match self {
            Width::B => 'b',
            Width::W => 'w',
            Width::L => 'l',
            Width::Q => 'q',
        }
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::B, Width::W, Width::L, Width::Q];

    /// Truncate a 64-bit value to this width (upper bits cleared).
    pub fn truncate(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extend the low `bits()` bits of `v` to 64 bits.
    pub fn sign_extend(self, v: u64) -> u64 {
        let b = self.bits();
        if b == 64 {
            v
        } else {
            let shift = 64 - b;
            (((v << shift) as i64) >> shift) as u64
        }
    }

    /// The sign bit position (bits - 1).
    pub fn sign_bit(self, v: u64) -> bool {
        (v >> (self.bits() - 1)) & 1 == 1
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// One of the sixteen 64-bit general purpose architectural registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // variant names are self-describing
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen general purpose registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Hardware encoding index (0..16).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Construct from a hardware encoding index.
    ///
    /// # Panics
    /// Panics if `idx >= 16`.
    pub fn from_index(idx: usize) -> Gpr {
        Self::ALL[idx]
    }

    /// The full 64-bit view of this register.
    pub fn full(self) -> Reg {
        Reg::new(self, Width::Q)
    }

    /// A view of this register at the given width.
    pub fn view(self, width: Width) -> Reg {
        Reg::new(self, width)
    }

    /// The AT&T name of the 64-bit view (e.g. `rax`).
    pub fn name64(self) -> &'static str {
        GPR_NAMES[self.index()][3]
    }
}

/// Names indexed by `[gpr][width as ordinal]` where ordinal 0=B,1=W,2=L,3=Q.
const GPR_NAMES: [[&str; 4]; 16] = [
    ["al", "ax", "eax", "rax"],
    ["cl", "cx", "ecx", "rcx"],
    ["dl", "dx", "edx", "rdx"],
    ["bl", "bx", "ebx", "rbx"],
    ["spl", "sp", "esp", "rsp"],
    ["bpl", "bp", "ebp", "rbp"],
    ["sil", "si", "esi", "rsi"],
    ["dil", "di", "edi", "rdi"],
    ["r8b", "r8w", "r8d", "r8"],
    ["r9b", "r9w", "r9d", "r9"],
    ["r10b", "r10w", "r10d", "r10"],
    ["r11b", "r11w", "r11d", "r11"],
    ["r12b", "r12w", "r12d", "r12"],
    ["r13b", "r13w", "r13d", "r13"],
    ["r14b", "r14w", "r14d", "r14"],
    ["r15b", "r15w", "r15d", "r15"],
];

fn width_ordinal(w: Width) -> usize {
    match w {
        Width::B => 0,
        Width::W => 1,
        Width::L => 2,
        Width::Q => 3,
    }
}

/// A view of a general purpose register at a particular width.
///
/// ```
/// use stoke_x86::{Gpr, Reg, Width};
/// let eax = Reg::new(Gpr::Rax, Width::L);
/// assert_eq!(eax.to_string(), "eax");
/// assert_eq!(eax.parent(), Gpr::Rax);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    gpr: Gpr,
    width: Width,
}

impl Reg {
    /// Create a view of `gpr` at `width`.
    pub fn new(gpr: Gpr, width: Width) -> Reg {
        Reg { gpr, width }
    }

    /// The underlying 64-bit architectural register.
    pub fn parent(self) -> Gpr {
        self.gpr
    }

    /// The width of the view.
    pub fn width(self) -> Width {
        self.width
    }

    /// The AT&T register name (`rax`, `eax`, `ax`, `al`, ...).
    pub fn name(self) -> &'static str {
        GPR_NAMES[self.gpr.index()][width_ordinal(self.width)]
    }

    /// Parse an AT&T register name, with or without a leading `%`.
    ///
    /// Returns `None` if the name is not a recognized register.
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.strip_prefix('%').unwrap_or(name);
        for (gi, names) in GPR_NAMES.iter().enumerate() {
            for (wi, n) in names.iter().enumerate() {
                if *n == name {
                    let w = Width::ALL[wi];
                    return Some(Reg::new(Gpr::from_index(gi), w));
                }
            }
        }
        None
    }

    /// Whether writing this view zeroes the upper half of the parent
    /// register (true for 32-bit destinations on x86-64).
    pub fn write_zeroes_upper(self) -> bool {
        self.width == Width::L
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<Gpr> for Reg {
    fn from(g: Gpr) -> Reg {
        g.full()
    }
}

/// One of the sixteen 128-bit SSE registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    /// All sixteen SSE registers.
    pub const ALL: [Xmm; 16] = [
        Xmm(0),
        Xmm(1),
        Xmm(2),
        Xmm(3),
        Xmm(4),
        Xmm(5),
        Xmm(6),
        Xmm(7),
        Xmm(8),
        Xmm(9),
        Xmm(10),
        Xmm(11),
        Xmm(12),
        Xmm(13),
        Xmm(14),
        Xmm(15),
    ];

    /// Hardware encoding index (0..16).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parse `xmm0`..`xmm15`, with or without a leading `%`.
    pub fn parse(name: &str) -> Option<Xmm> {
        let name = name.strip_prefix('%').unwrap_or(name);
        let rest = name.strip_prefix("xmm")?;
        let idx: u8 = rest.parse().ok()?;
        if idx < 16 {
            Some(Xmm(idx))
        } else {
            None
        }
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

/// The status flags modelled by the emulator and the validator.
///
/// The auxiliary-carry flag is not modelled; none of the modelled opcodes
/// read it and the paper's benchmarks never depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Flag {
    /// Carry flag.
    Cf = 0,
    /// Zero flag.
    Zf = 1,
    /// Sign flag.
    Sf = 2,
    /// Overflow flag.
    Of = 3,
    /// Parity flag (parity of the low byte of a result).
    Pf = 4,
}

impl Flag {
    /// All modelled flags.
    pub const ALL: [Flag; 5] = [Flag::Cf, Flag::Zf, Flag::Sf, Flag::Of, Flag::Pf];

    /// Dense index (0..5).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Conventional one-letter-ish name.
    pub fn name(self) -> &'static str {
        match self {
            Flag::Cf => "cf",
            Flag::Zf => "zf",
            Flag::Sf => "sf",
            Flag::Of => "of",
            Flag::Pf => "pf",
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks() {
        assert_eq!(Width::B.mask(), 0xff);
        assert_eq!(Width::W.mask(), 0xffff);
        assert_eq!(Width::L.mask(), 0xffff_ffff);
        assert_eq!(Width::Q.mask(), u64::MAX);
    }

    #[test]
    fn width_sign_extend() {
        assert_eq!(Width::B.sign_extend(0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(Width::B.sign_extend(0x7f), 0x7f);
        assert_eq!(Width::L.sign_extend(0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(Width::Q.sign_extend(0x1234), 0x1234);
    }

    #[test]
    fn reg_names_roundtrip() {
        for g in Gpr::ALL {
            for w in Width::ALL {
                let r = g.view(w);
                assert_eq!(Reg::parse(r.name()), Some(r), "roundtrip {}", r);
                let pct = format!("%{}", r.name());
                assert_eq!(Reg::parse(&pct), Some(r));
            }
        }
    }

    #[test]
    fn reg_parse_rejects_garbage() {
        assert_eq!(Reg::parse("foo"), None);
        assert_eq!(Reg::parse("xmm1"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn xmm_roundtrip() {
        for x in Xmm::ALL {
            assert_eq!(Xmm::parse(&x.to_string()), Some(x));
        }
        assert_eq!(Xmm::parse("xmm16"), None);
        assert_eq!(Xmm::parse("rax"), None);
    }

    #[test]
    fn l_writes_zero_upper() {
        assert!(Reg::new(Gpr::Rdx, Width::L).write_zeroes_upper());
        assert!(!Reg::new(Gpr::Rdx, Width::Q).write_zeroes_upper());
        assert!(!Reg::new(Gpr::Rdx, Width::B).write_zeroes_upper());
    }

    #[test]
    fn sign_bit() {
        assert!(Width::L.sign_bit(0x8000_0000));
        assert!(!Width::L.sign_bit(0x7fff_ffff));
        assert!(Width::B.sign_bit(0x80));
    }
}
