//! Instructions: an [`Opcode`] plus its operands, with validation against
//! the opcode's operand signature and def/use information used by the
//! liveness analysis, the emulator and the symbolic validator.

use crate::opcode::{BitOp, Opcode};
use crate::operand::{Mem, Operand, OperandKind};
use crate::reg::{Flag, Gpr, Reg, Width, Xmm};
use std::fmt;

/// An error produced when constructing an ill-formed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum InstrError {
    /// The number of operands does not match the opcode's arity.
    WrongArity {
        opcode: Opcode,
        expected: usize,
        found: usize,
    },
    /// An operand is of a kind not accepted by its slot.
    BadOperand {
        opcode: Opcode,
        slot: usize,
        found: OperandKind,
    },
    /// More than one operand is a memory reference.
    TwoMemoryOperands { opcode: Opcode },
}

impl fmt::Display for InstrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrError::WrongArity {
                opcode,
                expected,
                found,
            } => write!(
                f,
                "opcode {} expects {} operands, found {}",
                opcode, expected, found
            ),
            InstrError::BadOperand {
                opcode,
                slot,
                found,
            } => {
                write!(
                    f,
                    "opcode {} does not accept {:?} in slot {}",
                    opcode, found, slot
                )
            }
            InstrError::TwoMemoryOperands { opcode } => {
                write!(f, "opcode {} given more than one memory operand", opcode)
            }
        }
    }
}

impl std::error::Error for InstrError {}

/// A single x86-64 instruction: opcode plus operands in AT&T order
/// (sources first, destination last).
///
/// ```
/// use stoke_x86::{Instruction, Opcode, Operand, Reg, Gpr, Width, AluOp};
/// let add = Instruction::new(
///     Opcode::Alu(AluOp::Add, Width::Q),
///     vec![
///         Operand::Reg(Reg::new(Gpr::Rdi, Width::Q)),
///         Operand::Reg(Reg::new(Gpr::Rax, Width::Q)),
///     ],
/// ).unwrap();
/// assert_eq!(add.to_string(), "addq rdi, rax");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    opcode: Opcode,
    operands: Vec<Operand>,
}

impl Instruction {
    /// Construct a validated instruction.
    ///
    /// # Errors
    /// Returns an [`InstrError`] if the operands do not match the opcode's
    /// signature, or if more than one operand is a memory reference.
    pub fn new(opcode: Opcode, operands: Vec<Operand>) -> Result<Instruction, InstrError> {
        let sig = opcode.signature();
        if sig.len() != operands.len() {
            return Err(InstrError::WrongArity {
                opcode,
                expected: sig.len(),
                found: operands.len(),
            });
        }
        for (slot, (spec, opnd)) in sig.iter().zip(&operands).enumerate() {
            if !spec.accepts(opnd.kind()) {
                return Err(InstrError::BadOperand {
                    opcode,
                    slot,
                    found: opnd.kind(),
                });
            }
        }
        if operands.iter().filter(|o| o.is_mem()).count() > 1 {
            return Err(InstrError::TwoMemoryOperands { opcode });
        }
        Ok(Instruction { opcode, operands })
    }

    /// Construct without validation (used by the proposal moves, which
    /// sample operands from the correct equivalence classes by
    /// construction).
    ///
    /// # Panics
    /// Panics in debug builds if the instruction is invalid.
    pub fn new_unchecked(opcode: Opcode, operands: Vec<Operand>) -> Instruction {
        debug_assert!(Instruction::new(opcode, operands.clone()).is_ok());
        Instruction { opcode, operands }
    }

    /// A zero-operand instruction.
    pub fn nullary(opcode: Opcode) -> Instruction {
        Instruction::new(opcode, vec![]).expect("nullary opcode")
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The operands, in AT&T order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Replace the opcode, keeping the operands (caller must ensure the
    /// new opcode accepts them; used by the MCMC opcode move which samples
    /// from the compatible equivalence class).
    pub fn with_opcode(&self, opcode: Opcode) -> Instruction {
        Instruction::new_unchecked(opcode, self.operands.clone())
    }

    /// Replace operand `slot`, keeping everything else.
    pub fn with_operand(&self, slot: usize, operand: Operand) -> Instruction {
        let mut operands = self.operands.clone();
        operands[slot] = operand;
        Instruction::new_unchecked(self.opcode, operands)
    }

    /// The destination operand, if the opcode writes one.
    pub fn dst(&self) -> Option<&Operand> {
        if self.opcode.writes_dst() {
            self.operands.last()
        } else {
            None
        }
    }

    /// The memory operand, if any (at most one by construction).
    pub fn mem_operand(&self) -> Option<Mem> {
        self.operands.iter().find_map(|o| o.as_mem())
    }

    /// Whether this instruction reads memory.
    pub fn loads(&self) -> bool {
        if matches!(self.opcode, Opcode::Lea(_)) {
            return false;
        }
        if matches!(self.opcode, Opcode::Pop) {
            return true;
        }
        let Some(mem_slot) = self.operands.iter().position(|o| o.is_mem()) else {
            return false;
        };
        let is_dst_slot = self.opcode.writes_dst() && mem_slot == self.operands.len() - 1;
        !is_dst_slot || self.opcode.dst_is_also_src()
    }

    /// Whether this instruction writes memory.
    pub fn stores(&self) -> bool {
        if matches!(self.opcode, Opcode::Push) {
            return true;
        }
        if !self.opcode.writes_dst() {
            return false;
        }
        self.operands.last().is_some_and(Operand::is_mem)
    }

    /// The memory access width in bytes for loads/stores performed by this
    /// instruction (None if it does not access memory).
    pub fn mem_width_bytes(&self) -> Option<u64> {
        if matches!(self.opcode, Opcode::Lea(_)) {
            return None;
        }
        if matches!(self.opcode, Opcode::Push | Opcode::Pop) {
            return Some(8);
        }
        self.mem_operand()?;
        Some(match self.opcode {
            Opcode::Mov128(_)
            | Opcode::SseBin(_)
            | Opcode::Pshufd
            | Opcode::Shufps
            | Opcode::Punpckldq
            | Opcode::Punpcklqdq => 16,
            Opcode::Movslq => 4,
            Opcode::Movsbq | Opcode::Movsbl | Opcode::Movzbq | Opcode::Movzbl => 1,
            op => op.width().map(Width::bytes).unwrap_or(8),
        })
    }

    /// General purpose registers read by this instruction, as (register,
    /// width) views. Includes address registers of memory operands and
    /// implicit uses.
    pub fn gpr_uses(&self) -> Vec<Reg> {
        let mut uses = Vec::new();
        self.gpr_uses_into(&mut uses);
        uses
    }

    /// Append this instruction's GPR uses to `out` (same elements, same
    /// order as [`gpr_uses`](Instruction::gpr_uses)) without allocating —
    /// the evaluation backends prepare whole programs into one flattened
    /// use list per proposal, where a fresh `Vec` per instruction would
    /// dominate the prepare step.
    pub fn gpr_uses_into(&self, out: &mut Vec<Reg>) {
        let start = out.len();
        let arity = self.operands.len();
        for (slot, opnd) in self.operands.iter().enumerate() {
            let is_dst_slot = self.opcode.writes_dst() && slot == arity - 1;
            match opnd {
                Operand::Reg(r) => {
                    if !is_dst_slot || self.opcode.dst_is_also_src() {
                        out.push(*r);
                    } else if r.width() == Width::B || r.width() == Width::W {
                        // Narrow destination writes merge into the parent
                        // register, so the old value is also read.
                        out.push(r.parent().full());
                    }
                }
                Operand::Mem(m) => {
                    out.extend(m.regs().map(Gpr::full));
                }
                Operand::Xmm(_) | Operand::Imm(_) => {}
            }
        }
        for g in self.opcode.implicit_uses() {
            out.push(g.view(self.opcode.width().unwrap_or(Width::Q)));
        }
        // xchg reads both of its operands.
        if matches!(self.opcode, Opcode::Xchg(_)) {
            for opnd in &self.operands {
                if let Operand::Reg(r) = opnd {
                    if !out[start..].contains(r) {
                        out.push(*r);
                    }
                }
            }
        }
    }

    /// General purpose registers written by this instruction (as views).
    pub fn gpr_defs(&self) -> Vec<Reg> {
        let mut defs = Vec::new();
        if self.opcode.writes_dst() {
            if let Some(Operand::Reg(r)) = self.operands.last() {
                defs.push(*r);
            }
        }
        if matches!(self.opcode, Opcode::Xchg(_)) {
            if let Some(Operand::Reg(r)) = self.operands.first() {
                defs.push(*r);
            }
        }
        for g in self.opcode.implicit_defs() {
            let w = self.opcode.width().unwrap_or(Width::Q);
            let w = match self.opcode {
                Opcode::Cqto | Opcode::Cltq => Width::Q,
                Opcode::Cltd => Width::L,
                _ => w,
            };
            defs.push(g.view(w));
        }
        defs
    }

    /// SSE registers read by this instruction.
    pub fn xmm_uses(&self) -> Vec<Xmm> {
        let mut uses = Vec::new();
        self.xmm_uses_into(&mut uses);
        uses
    }

    /// Append this instruction's SSE uses to `out` without allocating (see
    /// [`gpr_uses_into`](Instruction::gpr_uses_into)).
    pub fn xmm_uses_into(&self, out: &mut Vec<Xmm>) {
        let arity = self.operands.len();
        for (slot, opnd) in self.operands.iter().enumerate() {
            if let Operand::Xmm(x) = opnd {
                let is_dst_slot = self.opcode.writes_dst() && slot == arity - 1;
                if !is_dst_slot || self.opcode.dst_is_also_src() {
                    out.push(*x);
                }
            }
        }
    }

    /// SSE registers written by this instruction.
    pub fn xmm_defs(&self) -> Vec<Xmm> {
        if !self.opcode.writes_dst() {
            return vec![];
        }
        match self.operands.last() {
            Some(Operand::Xmm(x)) => vec![*x],
            _ => vec![],
        }
    }

    /// Condition flags read by this instruction.
    pub fn flag_uses(&self) -> &'static [Flag] {
        self.opcode.flags_read()
    }

    /// Condition flags written by this instruction.
    pub fn flag_defs(&self) -> &'static [Flag] {
        self.opcode.flags_written()
    }

    /// The latency of the instruction: the opcode's base latency plus a
    /// memory-access penalty when an operand references memory. This is
    /// the `LATENCY(i)` of the paper's Equation 13.
    pub fn latency(&self) -> u32 {
        let mut l = self.opcode.latency();
        if self.loads() {
            l += 3;
        }
        if self.stores() {
            l += 3;
        }
        l
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.name())?;
        for (i, opnd) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{}", opnd)?;
        }
        Ok(())
    }
}

/// Convenience helpers for building common instructions in tests,
/// examples and the mini-compiler's code generators.
pub mod build {
    use super::*;
    use crate::opcode::{AluOp, Cond, ShiftOp, UnOp};

    /// `mov{w} src, dst`
    pub fn mov(w: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Mov(w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `movq src, dst`
    pub fn movq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        mov(Width::Q, src, dst)
    }

    /// `movl src, dst`
    pub fn movl(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        mov(Width::L, src, dst)
    }

    /// A two operand ALU instruction `op src, dst`.
    pub fn alu(
        op: AluOp,
        w: Width,
        src: impl Into<Operand>,
        dst: impl Into<Operand>,
    ) -> Instruction {
        Instruction::new(Opcode::Alu(op, w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `addq src, dst`
    pub fn addq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        alu(AluOp::Add, Width::Q, src, dst)
    }

    /// `subq src, dst`
    pub fn subq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        alu(AluOp::Sub, Width::Q, src, dst)
    }

    /// `andq src, dst`
    pub fn andq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        alu(AluOp::And, Width::Q, src, dst)
    }

    /// `xorq src, dst`
    pub fn xorq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        alu(AluOp::Xor, Width::Q, src, dst)
    }

    /// `orq src, dst`
    pub fn orq(src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        alu(AluOp::Or, Width::Q, src, dst)
    }

    /// A shift instruction `op count, dst`.
    pub fn shift(
        op: ShiftOp,
        w: Width,
        count: impl Into<Operand>,
        dst: impl Into<Operand>,
    ) -> Instruction {
        Instruction::new(Opcode::Shift(op, w), vec![count.into(), dst.into()]).unwrap()
    }

    /// A one-operand ALU instruction.
    pub fn unary(op: UnOp, w: Width, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Un(op, w), vec![dst.into()]).unwrap()
    }

    /// `cmp{w} src, dst`
    pub fn cmp(w: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Cmp(w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `test{w} src, dst`
    pub fn test(w: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Test(w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `set{cc} dst`
    pub fn setcc(c: Cond, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Set(c), vec![dst.into()]).unwrap()
    }

    /// `cmov{cc}{w} src, dst`
    pub fn cmov(
        c: Cond,
        w: Width,
        src: impl Into<Operand>,
        dst: impl Into<Operand>,
    ) -> Instruction {
        Instruction::new(Opcode::Cmov(c, w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `imul{w} src, dst` (two operand form)
    pub fn imul2(w: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Imul2(w), vec![src.into(), dst.into()]).unwrap()
    }

    /// `mulq src` (widening unsigned multiply)
    pub fn mulq(src: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Mul1(Width::Q), vec![src.into()]).unwrap()
    }

    /// `leaq mem, dst`
    pub fn leaq(mem: Mem, dst: impl Into<Operand>) -> Instruction {
        Instruction::new(Opcode::Lea(Width::Q), vec![Operand::Mem(mem), dst.into()]).unwrap()
    }

    /// `bits op src, dst` (popcnt / bsf / bsr)
    pub fn bits(
        op: BitOp,
        w: Width,
        src: impl Into<Operand>,
        dst: impl Into<Operand>,
    ) -> Instruction {
        Instruction::new(Opcode::Bits(op, w), vec![src.into(), dst.into()]).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::opcode::{AluOp, Cond, ShiftOp};
    use crate::operand::Scale;

    fn r(g: Gpr, w: Width) -> Operand {
        Operand::Reg(Reg::new(g, w))
    }

    #[test]
    fn validation_rejects_wrong_arity() {
        let err = Instruction::new(Opcode::Mov(Width::Q), vec![r(Gpr::Rax, Width::Q)]);
        assert!(matches!(err, Err(InstrError::WrongArity { .. })));
    }

    #[test]
    fn validation_rejects_width_mismatch() {
        let err = Instruction::new(
            Opcode::Alu(AluOp::Add, Width::Q),
            vec![r(Gpr::Rax, Width::L), r(Gpr::Rbx, Width::Q)],
        );
        assert!(matches!(err, Err(InstrError::BadOperand { slot: 0, .. })));
    }

    #[test]
    fn validation_rejects_two_memory_operands() {
        let m = Operand::Mem(Mem::base(Gpr::Rdi));
        let err = Instruction::new(Opcode::Mov(Width::Q), vec![m, m]);
        assert!(matches!(err, Err(InstrError::TwoMemoryOperands { .. })));
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            movq(r(Gpr::Rsi, Width::Q), r(Gpr::R9, Width::Q)).to_string(),
            "movq rsi, r9"
        );
        assert_eq!(
            shift(ShiftOp::Shr, Width::Q, 32i64, r(Gpr::Rsi, Width::Q)).to_string(),
            "shrq 32, rsi"
        );
        assert_eq!(
            mov(
                Width::L,
                Operand::Mem(Mem::base_index(Gpr::Rsi, Gpr::Rcx, Scale::S4, 0)),
                r(Gpr::Rax, Width::L)
            )
            .to_string(),
            "movl (rsi,rcx,4), eax"
        );
        assert_eq!(setcc(Cond::E, r(Gpr::Rdx, Width::B)).to_string(), "sete dl");
        assert_eq!(Instruction::nullary(Opcode::Cqto).to_string(), "cqto");
    }

    #[test]
    fn def_use_explicit() {
        let i = addq(r(Gpr::Rdi, Width::Q), r(Gpr::Rax, Width::Q));
        let uses = i.gpr_uses();
        assert!(uses.contains(&Gpr::Rdi.full()));
        assert!(
            uses.contains(&Gpr::Rax.full()),
            "read-modify-write dst is also read"
        );
        assert_eq!(i.gpr_defs(), vec![Gpr::Rax.full()]);
        assert!(i.flag_defs().contains(&Flag::Cf));
    }

    #[test]
    fn def_use_mov_dst_not_read() {
        let i = movq(r(Gpr::Rdi, Width::Q), r(Gpr::Rax, Width::Q));
        assert!(!i.gpr_uses().contains(&Gpr::Rax.full()));
        assert_eq!(i.gpr_defs(), vec![Gpr::Rax.full()]);
    }

    #[test]
    fn def_use_implicit_mul() {
        let i = mulq(r(Gpr::Rsi, Width::Q));
        let uses = i.gpr_uses();
        assert!(uses.contains(&Gpr::Rax.view(Width::Q)));
        let defs = i.gpr_defs();
        assert!(defs.contains(&Gpr::Rax.view(Width::Q)));
        assert!(defs.contains(&Gpr::Rdx.view(Width::Q)));
    }

    #[test]
    fn def_use_memory_addressing() {
        let m = Mem::base_index(Gpr::Rsi, Gpr::Rcx, Scale::S4, 0);
        let i = movl(Operand::Mem(m), r(Gpr::Rax, Width::L));
        let uses = i.gpr_uses();
        assert!(uses.contains(&Gpr::Rsi.full()));
        assert!(uses.contains(&Gpr::Rcx.full()));
        assert!(i.loads());
        assert!(!i.stores());

        let st = movl(r(Gpr::Rax, Width::L), Operand::Mem(m));
        assert!(st.stores());
        assert!(!st.loads());
        assert!(st.gpr_uses().contains(&Gpr::Rax.view(Width::L)));
    }

    #[test]
    fn byte_dest_write_merges() {
        // sete dl writes only the low byte, so the rest of rdx is preserved
        // (i.e. the old value is an input).
        let i = setcc(Cond::E, r(Gpr::Rdx, Width::B));
        assert!(i.gpr_uses().contains(&Gpr::Rdx.full()));
    }

    #[test]
    fn lea_does_not_load() {
        let i = leaq(Mem::base_disp(Gpr::Rsp, -8), r(Gpr::Rax, Width::Q));
        assert!(!i.loads());
        assert!(!i.stores());
        assert_eq!(i.mem_width_bytes(), None);
    }

    #[test]
    fn rmw_memory_both_loads_and_stores() {
        let m = Operand::Mem(Mem::base(Gpr::Rdi));
        let i = Instruction::new(
            Opcode::Shift(ShiftOp::Shl, Width::L),
            vec![Operand::Imm(1), m],
        )
        .unwrap();
        assert!(i.loads());
        assert!(i.stores());
        assert_eq!(i.mem_width_bytes(), Some(4));
    }

    #[test]
    fn latency_includes_memory_penalty() {
        let reg = addq(r(Gpr::Rdi, Width::Q), r(Gpr::Rax, Width::Q));
        let mem = Instruction::new(
            Opcode::Alu(AluOp::Add, Width::Q),
            vec![Operand::Mem(Mem::base(Gpr::Rdi)), r(Gpr::Rax, Width::Q)],
        )
        .unwrap();
        assert!(mem.latency() > reg.latency());
    }

    #[test]
    fn xchg_defs_and_uses_both() {
        let i = Instruction::new(
            Opcode::Xchg(Width::Q),
            vec![r(Gpr::Rax, Width::Q), r(Gpr::Rbx, Width::Q)],
        )
        .unwrap();
        let defs = i.gpr_defs();
        let uses = i.gpr_uses();
        assert!(defs.contains(&Gpr::Rax.full()) && defs.contains(&Gpr::Rbx.full()));
        assert!(uses.contains(&Gpr::Rax.full()) && uses.contains(&Gpr::Rbx.full()));
    }

    #[test]
    fn xmm_def_use() {
        use crate::opcode::SseBinOp;
        let i = Instruction::new(
            Opcode::SseBin(SseBinOp::Paddd),
            vec![Operand::Xmm(Xmm(1)), Operand::Xmm(Xmm(0))],
        )
        .unwrap();
        assert_eq!(i.xmm_uses(), vec![Xmm(1), Xmm(0)]);
        assert_eq!(i.xmm_defs(), vec![Xmm(0)]);
    }
}
