//! Canonicalization of loop-free programs for cache keying.
//!
//! A rewrite cache must recognise that two submissions differing only in
//! register naming (or in immediates the machine masks anyway) are the same
//! search problem. This module provides the pieces:
//!
//! * [`Renaming`] — a total, invertible permutation of the sixteen general
//!   purpose registers, applied structurally to operands (memory base/index
//!   registers included, widths preserved).
//! * [`canonical_renaming`] — the alpha-renaming that maps a program (plus
//!   an ordered tail of interface registers that may not appear in its
//!   body) onto a canonical register order: registers are numbered by first
//!   appearance, while *pinned* registers (`rsp` and any register an
//!   opcode in the program reads or writes implicitly, like `rax`/`rdx`
//!   for `mulq`) stay fixed so the renaming is semantics-preserving.
//! * [`normalize_immediates`] — rewrites immediates to the representative
//!   the emulator actually observes (shift counts masked to the width's
//!   count mask, width-typed ALU immediates sign-extended from the operand
//!   width).
//!
//! The defining property, exercised by property tests in `stoke-serve`: for
//! any renaming π that fixes the pinned registers,
//! `canonicalize(π(p)) == canonicalize(p)`.

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::operand::{Mem, Operand};
use crate::program::Program;
use crate::reg::{Gpr, Reg, Width};

/// A total permutation of the sixteen general purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renaming {
    map: [Gpr; 16],
}

impl Renaming {
    /// The identity renaming.
    pub fn identity() -> Renaming {
        Renaming { map: Gpr::ALL }
    }

    /// Build a renaming from an explicit 16-entry map (`map[i]` is the
    /// image of `Gpr::from_index(i)`). Returns `None` if the map is not a
    /// permutation.
    pub fn from_map(map: [Gpr; 16]) -> Option<Renaming> {
        let mut seen = [false; 16];
        for g in map {
            if seen[g.index()] {
                return None;
            }
            seen[g.index()] = true;
        }
        Some(Renaming { map })
    }

    /// The image of a single register.
    pub fn apply_gpr(&self, g: Gpr) -> Gpr {
        self.map[g.index()]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Renaming {
        let mut inv = Gpr::ALL;
        for (i, g) in self.map.iter().enumerate() {
            inv[g.index()] = Gpr::from_index(i);
        }
        Renaming { map: inv }
    }

    /// Apply the renaming to one operand, preserving widths.
    pub fn apply_operand(&self, op: &Operand) -> Operand {
        match op {
            Operand::Reg(r) => Operand::Reg(Reg::new(self.apply_gpr(r.parent()), r.width())),
            Operand::Mem(m) => Operand::Mem(Mem {
                base: m.base.map(|b| self.apply_gpr(b)),
                index: m.index.map(|i| self.apply_gpr(i)),
                scale: m.scale,
                disp: m.disp,
            }),
            other => *other,
        }
    }

    /// Apply the renaming to one instruction.
    pub fn apply_instruction(&self, instr: &Instruction) -> Instruction {
        let operands = instr
            .operands()
            .iter()
            .map(|op| self.apply_operand(op))
            .collect();
        // Operand kinds and widths are unchanged, so validity is preserved.
        Instruction::new_unchecked(instr.opcode(), operands)
    }

    /// Apply the renaming to every instruction of a program.
    pub fn apply_program(&self, program: &Program) -> Program {
        program.iter().map(|i| self.apply_instruction(i)).collect()
    }
}

/// The registers a renaming of `program` must keep fixed: `rsp` (the
/// sandboxed stack) plus every register some opcode in the program reads
/// or writes implicitly (renaming those would change semantics without
/// rewriting the opcode itself).
pub fn pinned_registers(program: &Program) -> [bool; 16] {
    let mut pinned = [false; 16];
    pinned[Gpr::Rsp.index()] = true;
    for instr in program.iter() {
        for g in instr.opcode().implicit_uses() {
            pinned[g.index()] = true;
        }
        for g in instr.opcode().implicit_defs() {
            pinned[g.index()] = true;
        }
    }
    pinned
}

/// The alpha-renaming mapping `program` onto canonical register order.
///
/// Pinned registers (see [`pinned_registers`]) map to themselves. The
/// remaining registers are assigned canonical names (the non-pinned
/// registers in encoding order) by first appearance: first scanning the
/// program's explicit operands in order (memory base before index), then
/// the `tail` of interface registers in the order given, then any register
/// never mentioned at all. The result is always a total permutation, so it
/// can be inverted to map cached results back into the submitter's
/// register space.
///
/// For any renaming π fixing the pinned registers,
/// `canonical_renaming(π(p), π(tail)) ∘ π == canonical_renaming(p, tail)`
/// — which is what makes the canonical form rename-invariant.
pub fn canonical_renaming(program: &Program, tail: &[Gpr]) -> Renaming {
    let pinned = pinned_registers(program);
    // Canonical names available to non-pinned registers, in encoding order.
    let free: Vec<Gpr> = Gpr::ALL
        .iter()
        .copied()
        .filter(|g| !pinned[g.index()])
        .collect();
    let mut map: [Option<Gpr>; 16] = [None; 16];
    for g in Gpr::ALL {
        if pinned[g.index()] {
            map[g.index()] = Some(g);
        }
    }
    let mut next = 0usize;
    let mut assign = |map: &mut [Option<Gpr>; 16], g: Gpr| {
        if map[g.index()].is_none() {
            map[g.index()] = Some(free[next]);
            next += 1;
        }
    };
    for instr in program.iter() {
        for op in instr.operands() {
            match op {
                Operand::Reg(r) => assign(&mut map, r.parent()),
                Operand::Mem(m) => {
                    if let Some(b) = m.base {
                        assign(&mut map, b);
                    }
                    if let Some(i) = m.index {
                        assign(&mut map, i);
                    }
                }
                _ => {}
            }
        }
    }
    for &g in tail {
        assign(&mut map, g);
    }
    for g in Gpr::ALL {
        assign(&mut map, g);
    }
    let mut out = Gpr::ALL;
    for (i, g) in map.iter().enumerate() {
        out[i] = g.expect("every register assigned");
    }
    Renaming { map: out }
}

/// Rewrite immediates to the representative the emulator observes.
///
/// Two normalizations are applied, both justified by the execution
/// semantics in `stoke-emu` (and mirrored by the symbolic validator):
///
/// * shift counts are masked to the hardware count mask (`0x3f` at 64
///   bits, `0x1f` below) before use;
/// * immediates of width-typed data ops (`mov`, ALU ops, `cmp`, `test`,
///   `imul`) are read at the operand width, so they are replaced by the
///   sign-extension of their low `width` bits.
///
/// Opcodes whose immediate semantics are not width-typed (e.g. SSE shuffle
/// controls) are left untouched.
pub fn normalize_immediates(program: &Program) -> Program {
    program
        .iter()
        .map(|instr| {
            let norm = |imm: i64| -> Option<i64> {
                match instr.opcode() {
                    Opcode::Shift(_, w) => {
                        let mask = if w == Width::Q { 0x3f } else { 0x1f };
                        Some(imm & mask)
                    }
                    Opcode::Mov(w)
                    | Opcode::Alu(_, w)
                    | Opcode::Cmp(w)
                    | Opcode::Test(w)
                    | Opcode::Imul2(w) => Some(w.sign_extend(w.truncate(imm as u64)) as i64),
                    _ => None,
                }
            };
            let operands = instr
                .operands()
                .iter()
                .map(|op| match op {
                    Operand::Imm(v) => Operand::Imm(norm(*v).unwrap_or(*v)),
                    other => *other,
                })
                .collect();
            Instruction::new_unchecked(instr.opcode(), operands)
        })
        .collect()
}

/// Canonicalize a program: normalize immediates, then alpha-rename into
/// canonical register order. Returns the canonical program together with
/// the renaming that produced it (apply [`Renaming::inverse`] to map
/// results computed in canonical space back to the original registers).
pub fn canonicalize(program: &Program, tail: &[Gpr]) -> (Program, Renaming) {
    let normalized = normalize_immediates(program);
    let renaming = canonical_renaming(&normalized, tail);
    (renaming.apply_program(&normalized), renaming)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::build;
    use crate::opcode::AluOp;

    fn parse(src: &str) -> Program {
        src.parse().expect("well-formed program")
    }

    #[test]
    fn renaming_roundtrips_through_inverse() {
        let mut map = Gpr::ALL;
        map.swap(0, 7); // rax <-> rdi
        map.swap(1, 6); // rcx <-> rsi
        let pi = Renaming::from_map(map).unwrap();
        let p = parse("movq rdi, rax\naddq rsi, rax");
        let renamed = pi.apply_program(&p);
        assert_ne!(renamed.to_string(), p.to_string());
        assert_eq!(
            pi.inverse().apply_program(&renamed).to_string(),
            p.to_string()
        );
    }

    #[test]
    fn from_map_rejects_non_permutation() {
        let mut map = Gpr::ALL;
        map[0] = Gpr::Rcx; // rax and rcx both map to rcx
        assert!(Renaming::from_map(map).is_none());
    }

    #[test]
    fn canonical_form_is_rename_invariant() {
        let p = parse("movq rdi, rbx\nmovq rbx, rax\naddq rsi, rax");
        let tail = [Gpr::Rdi, Gpr::Rsi, Gpr::Rax];
        let (canon, _) = canonicalize(&p, &tail);

        // Rename rdi->r9, rsi->r10, rbx->r11, rax->r12 (fixing rsp).
        let mut map = Gpr::ALL;
        map.swap(Gpr::Rdi.index(), Gpr::R9.index());
        map.swap(Gpr::Rsi.index(), Gpr::R10.index());
        map.swap(Gpr::Rbx.index(), Gpr::R11.index());
        map.swap(Gpr::Rax.index(), Gpr::R12.index());
        let pi = Renaming::from_map(map).unwrap();
        let renamed = pi.apply_program(&p);
        let renamed_tail: Vec<Gpr> = tail.iter().map(|&g| pi.apply_gpr(g)).collect();
        let (canon2, _) = canonicalize(&renamed, &renamed_tail);
        assert_eq!(canon.to_string(), canon2.to_string());
    }

    #[test]
    fn implicit_registers_stay_pinned() {
        // mulq reads rax and writes rax:rdx implicitly; the canonical form
        // must keep both in place.
        let p = parse("movq rdi, rax\nmulq rsi");
        let (canon, renaming) = canonicalize(&p, &[]);
        assert_eq!(renaming.apply_gpr(Gpr::Rax), Gpr::Rax);
        assert_eq!(renaming.apply_gpr(Gpr::Rdx), Gpr::Rdx);
        assert_eq!(renaming.apply_gpr(Gpr::Rsp), Gpr::Rsp);
        assert!(canon.to_string().contains("rax"));
    }

    #[test]
    fn canonical_renaming_maps_results_back() {
        let p = parse("movq r8, r9\naddq r10, r9");
        let (canon, renaming) = canonicalize(&p, &[]);
        assert_eq!(
            renaming.inverse().apply_program(&canon).to_string(),
            p.to_string()
        );
    }

    #[test]
    fn shift_counts_and_wide_immediates_normalize() {
        let shl = build::shift(
            crate::opcode::ShiftOp::Shl,
            Width::Q,
            67,
            Gpr::Rax.view(Width::Q),
        );
        let addl = build::alu(
            AluOp::Add,
            Width::L,
            Gpr::Rcx.view(Width::L),
            Gpr::Rax.view(Width::L),
        );
        let addl = addl.with_operand(0, Operand::Imm(0xffff_ffff));
        let p = Program::from_instrs(vec![shl, addl]);
        let n = normalize_immediates(&p);
        assert_eq!(n.instrs()[0].operands()[0], Operand::Imm(3)); // 67 & 0x3f
        assert_eq!(n.instrs()[1].operands()[0], Operand::Imm(-1)); // sign-extended
    }

    #[test]
    fn mem_operands_are_renamed() {
        let p = parse("movq (rdi,rsi,8), rax");
        let mut map = Gpr::ALL;
        map.swap(Gpr::Rdi.index(), Gpr::R8.index());
        let pi = Renaming::from_map(map).unwrap();
        let renamed = pi.apply_program(&p);
        assert_eq!(renamed.to_string().trim(), "movq (r8,rsi,8), rax");
    }
}
