//! Property-based tests for the ISA model: printing and re-parsing any
//! well-formed instruction is the identity, and width arithmetic obeys its
//! algebraic laws.

use proptest::prelude::*;
use stoke_x86::{
    build, AluOp, Cond, Gpr, Instruction, Mem, Opcode, Operand, Program, Scale, ShiftOp, Width,
};

fn any_gpr() -> impl Strategy<Value = Gpr> {
    (0..16usize).prop_map(Gpr::from_index)
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::L), Just(Width::Q)]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Adc),
        Just(AluOp::Sub),
        Just(AluOp::Sbb),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
    ]
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

/// A strategy over a representative slice of well-formed instructions.
fn any_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        // Register-register ALU at any width (the search universe only
        // carries adc/sbb at 32/64 bits, so the strategy mirrors that).
        (any_alu_op(), any_width(), any_gpr(), any_gpr())
            .prop_filter(
                "adc/sbb are modelled at 32/64 bits only",
                |(op, w, _, _)| { !(matches!(op, AluOp::Adc | AluOp::Sbb) && *w == Width::B) }
            )
            .prop_map(|(op, w, a, b)| build::alu(op, w, a.view(w), b.view(w))),
        // Immediate-register moves.
        (any_width(), any::<i32>(), any_gpr()).prop_map(|(w, imm, r)| build::mov(
            w,
            i64::from(imm),
            r.view(w)
        )),
        // Loads with base + index + scale + displacement addressing.
        (any_gpr(), any_gpr(), -64i32..64, any_gpr()).prop_map(|(base, index, disp, dst)| {
            build::movq(
                Operand::Mem(Mem::base_index(base, index, Scale::S8, disp)),
                dst.view(Width::Q),
            )
        }),
        // Shifts by immediate.
        (
            any_width().prop_filter("shift widths", |w| *w != Width::B),
            0i64..64,
            any_gpr()
        )
            .prop_map(|(w, c, r)| build::shift(ShiftOp::Shr, w, c, r.view(w))),
        // Conditional set / move.
        (any_cond(), any_gpr()).prop_map(|(c, r)| build::setcc(c, r.view(Width::B))),
        (any_cond(), any_gpr(), any_gpr()).prop_map(|(c, a, b)| build::cmov(
            c,
            Width::Q,
            a.view(Width::Q),
            b.view(Width::Q)
        )),
        // Widening multiply and lea.
        any_gpr().prop_map(|r| build::mulq(r.view(Width::Q))),
        (any_gpr(), -32i32..32, any_gpr())
            .prop_map(|(b, d, dst)| build::leaq(Mem::base_disp(b, d), dst.view(Width::Q))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing any instruction and parsing it back yields the same
    /// instruction (the printer and parser are inverses on the modelled
    /// subset).
    #[test]
    fn print_parse_roundtrip(instrs in proptest::collection::vec(any_instruction(), 1..20)) {
        let program = Program::from_instrs(instrs);
        let text = program.to_string();
        let reparsed: Program = text.parse().expect("printed program must re-parse");
        prop_assert_eq!(program, reparsed);
    }

    /// Truncation and sign extension are consistent: sign-extending a
    /// truncated value and truncating again is the identity, and the
    /// extension only changes bits above the width.
    #[test]
    fn width_truncate_sign_extend_laws(v in any::<u64>(), w in any_width()) {
        let t = w.truncate(v);
        prop_assert_eq!(w.truncate(w.sign_extend(t)), t);
        prop_assert_eq!(w.sign_extend(t) & w.mask(), t);
        if w == Width::Q {
            prop_assert_eq!(w.sign_extend(v), v);
        }
    }

    /// The latency heuristic is monotone in program concatenation.
    #[test]
    fn static_latency_is_additive(
        a in proptest::collection::vec(any_instruction(), 0..10),
        b in proptest::collection::vec(any_instruction(), 0..10),
    ) {
        let pa = Program::from_instrs(a.clone());
        let pb = Program::from_instrs(b.clone());
        let mut joined = a;
        joined.extend(b);
        let pj = Program::from_instrs(joined);
        prop_assert_eq!(pj.static_latency(), pa.static_latency() + pb.static_latency());
    }

    /// Every instruction the strategy produces validates against its own
    /// opcode signature, and every opcode's equivalence class (for the
    /// MCMC opcode move) contains the original opcode.
    #[test]
    fn equivalence_classes_contain_self(instr in any_instruction()) {
        prop_assert!(Instruction::new(instr.opcode(), instr.operands().to_vec()).is_ok());
        let mut classes = stoke_x86::OpcodeClasses::new();
        let class: Vec<Opcode> = classes.class_of(&instr).to_vec();
        prop_assert!(class.contains(&instr.opcode()));
    }
}
