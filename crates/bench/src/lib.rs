//! # stoke-bench
//!
//! The experiment harness: helpers shared by the Criterion benches and the
//! `experiments` binary that regenerates every figure and table of the
//! paper's evaluation (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::Arc;
use stoke::{Config, InputSpec, SearchObserver, Session, StokeResult, TargetSpec};
use stoke_obs::{MetricsRegistry, TraceSink};
use stoke_workloads::{Kernel, ParamKind};
use stoke_x86::Gpr;

/// System V parameter registers, in order.
pub const PARAM_REGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

/// Build a [`TargetSpec`] for a kernel's `llvm -O0`-style target.
pub fn spec_for(kernel: &Kernel) -> TargetSpec {
    let inputs: Vec<InputSpec> = kernel
        .params
        .iter()
        .enumerate()
        .map(|(i, kind)| match kind {
            ParamKind::Value32 => InputSpec::value32(PARAM_REGS[i]),
            ParamKind::Value64 => InputSpec::value64(PARAM_REGS[i]),
            // Keep buffer elements small so 16-bit-lane vector rewrites
            // (Figure 14) agree with the scalar semantics.
            ParamKind::Pointer(len) => InputSpec::pointer_masked(PARAM_REGS[i], *len, 0x3fff),
        })
        .collect();
    TargetSpec::new(kernel.target_o0(), inputs, kernel.live_out.clone())
}

/// A search configuration scaled to finish a whole 28-kernel sweep on a
/// laptop in minutes rather than the paper's 40-node-cluster half hours.
pub fn sweep_config(iterations: u64, threads: usize) -> Config {
    Config {
        ell: 24,
        num_testcases: 16,
        synthesis_iterations: iterations / 4,
        optimization_iterations: iterations,
        threads,
        ..Config::default()
    }
}

/// Run STOKE on one kernel with the sweep configuration.
pub fn run_kernel(kernel: &Kernel, iterations: u64, threads: usize) -> StokeResult {
    run_kernel_observed(kernel, iterations, threads, Arc::new(stoke::NullObserver))
}

/// Run STOKE on one kernel, streaming pipeline events to `observer` (used
/// by the `experiments` binary to report per-phase progress).
pub fn run_kernel_observed(
    kernel: &Kernel,
    iterations: u64,
    threads: usize,
    observer: Arc<dyn SearchObserver>,
) -> StokeResult {
    run_kernel_instrumented(kernel, iterations, threads, observer, None, None)
}

/// Run STOKE on one kernel with optional observability attached: a
/// metrics registry recording the `stoke_*` families and/or a structured
/// trace sink. Both are passive — fixed-seed results are bit-identical
/// with and without them.
pub fn run_kernel_instrumented(
    kernel: &Kernel,
    iterations: u64,
    threads: usize,
    observer: Arc<dyn SearchObserver>,
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<dyn TraceSink>>,
) -> StokeResult {
    let spec = spec_for(kernel);
    let mut session = Session::new(sweep_config(iterations, threads)).with_observer(observer);
    if let Some(registry) = metrics {
        session = session.with_metrics(registry);
    }
    if let Some(sink) = trace {
        session = session.with_trace(sink);
    }
    session
        .run(&spec)
        .expect("kernel sweep targets are non-empty and the sweep config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_workloads::hackers_delight;

    #[test]
    fn spec_for_maps_parameters_to_registers() {
        let spec = spec_for(&hackers_delight::p14());
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.inputs[0].reg, Gpr::Rdi);
        assert_eq!(spec.inputs[1].reg, Gpr::Rsi);
        assert!(!spec.program.is_empty());
    }

    #[test]
    fn run_kernel_quickly_improves_p01() {
        let result = run_kernel(&hackers_delight::p01(), 10_000, 1);
        assert!(result.rewrite_latency <= result.target_latency);
    }
}
