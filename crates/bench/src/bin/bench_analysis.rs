//! Regenerates `BENCH_analysis.json`: median per-call times of the static
//! analyses that the security-aware pipeline runs on every scored or
//! verified candidate — forward taint + constant-time scan, backward
//! liveness + dead-code report, and the relative leakage check — on the
//! Montgomery and p01 kernels. These numbers bound the overhead the
//! analyses add per proposal/verification, so they are tracked across
//! releases like the backend throughput numbers.
//!
//! ```text
//! cargo run --release -p stoke-bench --bin bench-analysis -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sample count to a smoke-test size (used by CI to
//! keep the harness from rotting); `--out` overrides the output path
//! (default `BENCH_analysis.json` in the current directory).

use std::time::Instant;
use stoke_analysis::{
    constant_time_violations, dead_code_report, introduces_new_leaks, taint_analysis,
};
use stoke_bench::spec_for;
use stoke_workloads::{hackers_delight, kernels, Kernel};
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Instruction};

struct Measurement {
    analysis: &'static str,
    median_ns_per_call: f64,
    calls_per_sec: f64,
}

/// Median nanoseconds per call: `samples` timed batches of `iters` calls
/// each, median of the per-call means. The closure folds a value into the
/// sink so the analysis cannot be optimized away.
fn measure(mut call: impl FnMut() -> u64, iters: u32, samples: usize, sink: &mut u64) -> f64 {
    for _ in 0..iters {
        *sink = sink.wrapping_add(call());
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                *sink = sink.wrapping_add(call());
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    per_call[samples / 2]
}

fn bench_kernel(kernel: &Kernel, iters: u32, samples: usize, sink: &mut u64) -> Vec<Measurement> {
    let spec = spec_for(kernel);
    // Pretend the first parameter is the secret: the analyses' cost is
    // dominated by program length, not by which register seeds the taint.
    let secrets = LocSet::from_gprs([Gpr::Rdi]);
    let live_out = spec.live_out.clone();
    let instrs: Vec<Instruction> = spec.program.iter().cloned().collect();
    let refs: Vec<&Instruction> = instrs.iter().collect();
    let mut out = Vec::new();
    let median = measure(
        || taint_analysis(&refs, &secrets).exit().locs.len() as u64,
        iters,
        samples,
        sink,
    );
    out.push(Measurement {
        analysis: "taint",
        median_ns_per_call: median,
        calls_per_sec: 1e9 / median,
    });
    let median = measure(
        || constant_time_violations(refs.iter().copied(), &secrets).len() as u64,
        iters,
        samples,
        sink,
    );
    out.push(Measurement {
        analysis: "constant_time",
        median_ns_per_call: median,
        calls_per_sec: 1e9 / median,
    });
    let median = measure(
        || dead_code_report(&refs, &live_out).len() as u64,
        iters,
        samples,
        sink,
    );
    out.push(Measurement {
        analysis: "dead_code",
        median_ns_per_call: median,
        calls_per_sec: 1e9 / median,
    });
    let median = measure(
        || introduces_new_leaks(refs.iter().copied(), refs.iter().copied(), &secrets).len() as u64,
        iters,
        samples,
        sink,
    );
    out.push(Measurement {
        analysis: "relative_leakage",
        median_ns_per_call: median,
        calls_per_sec: 1e9 / median,
    });
    out
}

fn json_for(kernel: &Kernel, measurements: &[Measurement]) -> String {
    let mut out = format!(
        "    {{\n      \"kernel\": \"{}\",\n      \"instructions\": {},\n",
        kernel.name,
        kernel.target_o0().len()
    );
    let last = measurements.len() - 1;
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {{ \"median_ns_per_call\": {:.1}, \"calls_per_sec\": {:.1} }}{}\n",
            m.analysis,
            m.median_ns_per_call,
            m.calls_per_sec,
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("    }");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_analysis.json".to_string());
    let (iters, samples) = if quick { (50, 3) } else { (5_000, 15) };
    let mut sink = 0u64;
    let kernels = [kernels::montgomery(), hackers_delight::p01()];
    let mut entries = Vec::new();
    for kernel in &kernels {
        eprintln!("benchmarking static analyses on {}...", kernel.name);
        let measurements = bench_kernel(kernel, iters, samples, &mut sink);
        for m in &measurements {
            eprintln!(
                "  {:<17} {:>9.1} ns/call  {:>13.1} calls/s",
                m.analysis, m.median_ns_per_call, m.calls_per_sec
            );
        }
        entries.push(json_for(kernel, &measurements));
    }
    let json = format!(
        "{{\n  \"description\": \"median per-call time of the stoke-analysis static \
         analyses (taint + constant-time scan, dead-code report, relative leakage \
         check); regenerate with: cargo run --release -p stoke-bench --bin \
         bench-analysis\",\n  \"quick\": {quick},\n  \"samples_per_analysis\": {samples},\n  \
         \"calls_per_sample\": {iters},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path} (sink {sink:x})");
}
