//! Regenerate the figures and tables of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p stoke-bench --bin experiments -- <figure> [iterations]
//! cargo run --release -p stoke-bench --bin experiments -- fig10 2000 \
//!     --metrics --trace results/sweep.jsonl
//! ```
//!
//! `<figure>` is one of `fig01`, `fig02`, `fig03`, `fig05`, `fig06`,
//! `fig07`, `fig08`, `fig10`, `fig11`, `fig12`, `fig13`, `fig14`, `fig15`
//! or `all`. Results are printed as tables and written as CSV files into
//! `results/`. Budgets are scaled down from the paper's 30-minute,
//! 40-machine cluster runs; pass a larger iteration count for closer
//! reproduction.
//!
//! `--metrics` attaches a fresh [`stoke_obs::MetricsRegistry`] to every
//! kernel of the fig10 sweep and emits a per-kernel search-diagnostics
//! report (`results/obs_report.md` + `results/obs_report.json`).
//! `--trace <path>` streams every sweep session's structured span/event
//! records to one JSONL file.

use std::fs;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use stoke::{
    generate_testcases, Chain, ChainProgress, CollectingObserver, Config, CostFn, EqMetric,
    MoveStats, Phase, Rewrite, SearchEvent, SearchObserver, StokeResult, ValidationVerdict,
};
use stoke_bench::{run_kernel_instrumented, spec_for, sweep_config};
use stoke_emu::{run as emulate, TimingModel};
use stoke_obs::{JsonlSink, MetricsRegistry, TraceSink};
use stoke_verify::Validator;
use stoke_workloads::{all_kernels, hackers_delight, kernels};
use stoke_x86::Program;

/// Streams pipeline events to stderr as they happen and delegates storage
/// to a [`CollectingObserver`] for the per-kernel summary printed after
/// each run.
struct StreamingProgress {
    kernel: String,
    collected: CollectingObserver,
}

impl StreamingProgress {
    /// Cap on retained events: each run's summary only counts event
    /// kinds, so old events are evicted (and counted) instead of letting
    /// a long sweep grow the buffer without bound.
    const EVENT_CAPACITY: usize = 4096;

    fn new(kernel: &str) -> StreamingProgress {
        StreamingProgress {
            kernel: kernel.to_string(),
            collected: CollectingObserver::with_capacity(Self::EVENT_CAPACITY),
        }
    }

    /// One line summarizing the collected events of the finished run.
    /// Draining (rather than cloning) the buffer keeps the progress loop
    /// O(events) overall instead of O(events²).
    fn summary(&self) -> String {
        let dropped = self.collected.dropped();
        let events = self.collected.drain();
        let phases = events
            .iter()
            .filter(|e| matches!(e, SearchEvent::PhaseStart { .. }))
            .count();
        let candidates = events
            .iter()
            .filter(|e| matches!(e, SearchEvent::Candidate { .. }))
            .count();
        let proven = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SearchEvent::Validation {
                        verdict: ValidationVerdict::Proven,
                        ..
                    }
                )
            })
            .count();
        let tail = if dropped > 0 {
            format!(" ({dropped} early events evicted)")
        } else {
            String::new()
        };
        format!("{phases} phases, {candidates} candidates re-ranked, {proven} proven{tail}")
    }
}

impl SearchObserver for StreamingProgress {
    fn on_phase_start(&self, target: usize, phase: Phase) {
        eprintln!("  [{}] phase {:?}", self.kernel, phase);
        self.collected.on_phase_start(target, phase);
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        // The incremental-backend counters are cumulative per cost
        // function and zero on every other backend, so only print them
        // when they carry signal.
        let incremental = if progress.checkpoint_restores > 0 {
            format!(
                ", {} instrs skipped over {} restores{}",
                progress.instructions_skipped,
                progress.checkpoint_restores,
                if progress.columns_reordered > 0 {
                    format!(" ({} reorders)", progress.columns_reordered)
                } else {
                    String::new()
                }
            )
        } else {
            String::new()
        };
        eprintln!(
            "  [{}] {:?} chain {}: {}/{} proposals, best cost {:.1} (current eq' {:.1} + perf {:.1}){}",
            self.kernel,
            progress.phase,
            progress.chain,
            progress.proposals,
            progress.iterations,
            progress.best_cost,
            progress.correctness,
            progress.performance,
            incremental
        );
        self.collected.on_chain_progress(progress);
    }

    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        eprintln!(
            "  [{}] candidate: {} instructions, cost {:.1}",
            self.kernel,
            candidate.len(),
            cost
        );
        self.collected.on_candidate(target, candidate, cost);
    }

    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        eprintln!("  [{}] validation: {:?}", self.kernel, verdict);
        self.collected.on_validation(target, verdict);
    }
}

fn results_file(name: &str) -> fs::File {
    fs::create_dir_all("results").expect("create results dir");
    fs::File::create(format!("results/{}", name)).expect("create results file")
}

/// Figure 1: the Montgomery multiplication case study.
fn fig01() {
    println!("== Figure 1: Montgomery multiplication ==");
    let kernel = kernels::montgomery();
    let o0 = kernel.target_o0();
    let gcc: Program = kernels::MONT_GCC_O3.parse().unwrap();
    let stoke_code: Program = kernels::MONT_STOKE.parse().unwrap();
    let t = TimingModel::default();
    println!(
        "{:<18}{:>8}{:>10}{:>10}",
        "code", "instrs", "H (lat)", "cycles"
    );
    for (name, p) in [
        ("llvm -O0 (ours)", &o0),
        ("gcc -O3 (paper)", &gcc),
        ("STOKE (paper)", &stoke_code),
    ] {
        println!(
            "{:<18}{:>8}{:>10}{:>10}",
            name,
            p.len(),
            p.static_latency(),
            t.cycles(p)
        );
    }
    println!(
        "speedup of the STOKE code over the gcc -O3 code: {:.2}x (paper: 1.6x)",
        t.cycles(&gcc) as f64 / t.cycles(&stoke_code) as f64
    );
}

/// Figure 2: validations per second and test-case evaluations per second.
fn fig02() {
    println!("== Figure 2: validator vs emulator throughput ==");
    let mut csv = results_file("fig02_throughput.csv");
    writeln!(csv, "kernel,validations_per_sec,testcases_per_sec").unwrap();
    let mut vals = Vec::new();
    let mut evals = Vec::new();
    for kernel in [
        hackers_delight::p01(),
        hackers_delight::p14(),
        hackers_delight::p21(),
    ] {
        let target = kernel.baseline_o3();
        // Validation throughput: prove the target against itself repeatedly.
        let validator = Validator::new(kernel.live_out.clone());
        let n = 5;
        let t0 = Instant::now();
        for _ in 0..n {
            let _ = validator.prove(&target, &target);
        }
        let per_sec = n as f64 / t0.elapsed().as_secs_f64();
        // Test-case evaluation throughput.
        let spec = spec_for(&kernel);
        let suite = generate_testcases(&spec, 32, 7);
        let o0 = kernel.target_o0();
        let t0 = Instant::now();
        let mut count = 0u64;
        for _ in 0..200 {
            for case in &suite.cases {
                let _ = emulate(&o0, &case.input);
                count += 1;
            }
        }
        let evals_per_sec = count as f64 / t0.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>12.1} validations/s {:>14.0} testcases/s",
            kernel.name, per_sec, evals_per_sec
        );
        writeln!(csv, "{},{:.1},{:.0}", kernel.name, per_sec, evals_per_sec).unwrap();
        vals.push(per_sec);
        evals.push(evals_per_sec);
    }
    let gap = evals.iter().sum::<f64>() / vals.iter().sum::<f64>();
    println!(
        "emulator / validator throughput ratio: {:.0}x (paper: >1000x)",
        gap
    );
}

/// Figure 3: static latency heuristic vs the timing model.
fn fig03() {
    println!("== Figure 3: predicted (static latency) vs actual (timing model) runtime ==");
    let mut csv = results_file("fig03_latency_correlation.csv");
    writeln!(csv, "kernel,level,predicted,actual").unwrap();
    let t = TimingModel::default();
    let mut points = Vec::new();
    for kernel in all_kernels() {
        for (level, program) in [
            ("O0", kernel.target_o0()),
            ("O2", kernel.baseline_o2()),
            ("O3", kernel.baseline_o3()),
        ] {
            let predicted = program.static_latency();
            let actual = t.cycles(&program);
            writeln!(csv, "{},{},{},{}", kernel.name, level, predicted, actual).unwrap();
            points.push((predicted as f64, actual as f64));
        }
    }
    // Pearson correlation.
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
    let vx = points
        .iter()
        .map(|p| (p.0 - mx).powi(2))
        .sum::<f64>()
        .sqrt();
    let vy = points
        .iter()
        .map(|p| (p.1 - my).powi(2))
        .sum::<f64>()
        .sqrt();
    println!(
        "{} points, Pearson r = {:.3} (paper shows a strong but outlier-bearing correlation)",
        points.len(),
        cov / (vx * vy)
    );
}

/// Figure 5: proposal throughput with and without early termination.
fn fig05(iterations: u64) {
    println!("== Figure 5: early-termination acceptance (proposals/s, testcases/proposal) ==");
    let kernel = kernels::montgomery();
    let spec = spec_for(&kernel);
    let mut csv = results_file("fig05_early_termination.csv");
    writeln!(
        csv,
        "early_termination,proposals_per_sec,testcases_per_proposal"
    )
    .unwrap();
    for early in [false, true] {
        let mut config = sweep_config(iterations, 1);
        config.early_termination = early;
        let suite = generate_testcases(&spec, config.num_testcases, config.seed);
        let mut cost = CostFn::new(config.clone(), suite, spec.program.static_latency());
        let mut chain = Chain::new(&mut cost, 1, false);
        let start = chain.proposer_mut().random_rewrite();
        let t0 = Instant::now();
        let result = chain.run(start, iterations);
        let secs = t0.elapsed().as_secs_f64();
        let per_proposal = result.testcases_run as f64 / result.proposals as f64;
        println!(
            "early_termination={:<5} {:>10.0} proposals/s {:>6.2} testcases/proposal",
            early,
            result.proposals as f64 / secs,
            per_proposal
        );
        writeln!(
            csv,
            "{},{:.0},{:.2}",
            early,
            result.proposals as f64 / secs,
            per_proposal
        )
        .unwrap();
    }
}

/// Figure 6/7: strict vs improved cost function during synthesis.
fn fig07(iterations: u64) {
    println!("== Figure 7: strict vs improved synthesis cost functions ==");
    let kernel = hackers_delight::p14();
    let spec = spec_for(&kernel);
    let mut csv = results_file("fig07_cost_functions.csv");
    writeln!(csv, "metric,iteration,cost").unwrap();
    for (name, metric) in [
        ("strict", EqMetric::Strict),
        ("improved", EqMetric::Improved),
    ] {
        let mut config = sweep_config(iterations, 1);
        config.eq_metric = metric;
        let suite = generate_testcases(&spec, config.num_testcases, config.seed);
        let mut cost = CostFn::new(config, suite, spec.program.static_latency());
        let mut chain = Chain::new(&mut cost, 42, false);
        chain.trace_every = (iterations / 50).max(1);
        let start = chain.proposer_mut().random_rewrite();
        let result = chain.run(start, iterations);
        for point in &result.trace {
            writeln!(csv, "{},{},{}", name, point.iteration, point.cost).unwrap();
        }
        println!(
            "{:<9} best cost {:>8.1} after {} proposals (zero-cost found: {})",
            name,
            result.best_cost,
            result.proposals,
            result.best_cost == 0.0
        );
    }
}

/// Figure 8: cost vs fraction of the final rewrite discovered.
fn fig08(iterations: u64) {
    println!("== Figure 8: cost function vs percentage of final code during synthesis ==");
    let kernel = hackers_delight::p01();
    let spec = spec_for(&kernel);
    let config = sweep_config(iterations, 1);
    let suite = generate_testcases(&spec, config.num_testcases, config.seed);
    let mut cost = CostFn::new(config, suite, spec.program.static_latency());
    let mut chain = Chain::new(&mut cost, 99, false);
    chain.trace_every = (iterations / 60).max(1);
    let start = Rewrite::empty(24);
    let result = chain.run(start, iterations);
    let final_instrs: Vec<String> = result
        .best
        .to_program()
        .iter()
        .map(|i| i.to_string())
        .collect();
    let mut csv = results_file("fig08_incremental.csv");
    writeln!(csv, "iteration,cost,instructions").unwrap();
    for point in &result.trace {
        writeln!(
            csv,
            "{},{},{}",
            point.iteration, point.cost, point.instructions
        )
        .unwrap();
    }
    println!(
        "synthesis reached cost {:.1}; final rewrite has {} instructions",
        result.best_cost,
        final_instrs.len()
    );
}

/// Observability options threaded through the fig10 sweep.
struct ObsMode {
    /// Attach a fresh registry per kernel and emit `results/obs_report.*`.
    metrics: bool,
    /// Stream every sweep session's trace records to one JSONL sink.
    trace: Option<Arc<dyn TraceSink>>,
}

/// One kernel's worth of search diagnostics for the `--metrics` report.
struct ObsRow {
    name: String,
    speedup: f64,
    result: StokeResult,
    snapshot: stoke_obs::Snapshot,
}

/// Figure 10 and Figure 12: the full kernel sweep (speedups and runtimes).
fn fig10(iterations: u64, threads: usize, obs: &ObsMode) {
    println!("== Figure 10 / Figure 12: speedups over llvm -O0 and search runtimes ==");
    let mut csv = results_file("fig10_speedups.csv");
    writeln!(
        csv,
        "kernel,star,o2_speedup,o3_speedup,stoke_speedup,synthesis_s,optimization_s,verified,\
         opcode_accept,operand_accept,swap_accept,instruction_accept"
    )
    .unwrap();
    let t = TimingModel::default();
    println!(
        "{:<8}{:>6}{:>10}{:>10}{:>10}{:>12}{:>12}  verified",
        "kernel", "star", "icc -O3", "gcc -O3", "STOKE", "synth (s)", "opt (s)"
    );
    let mut report = Vec::new();
    for kernel in all_kernels() {
        let o0 = t.cycles(&kernel.target_o0()).max(1);
        let o2 = t.cycles(&kernel.baseline_o2()).max(1);
        let o3 = t.cycles(&kernel.baseline_o3()).max(1);
        // Pipeline events stream to stderr live as the search runs; the
        // collected copy becomes the one-line summary below.
        let observer = Arc::new(StreamingProgress::new(kernel.name));
        let registry = if obs.metrics {
            Some(Arc::new(MetricsRegistry::new()))
        } else {
            None
        };
        let result = run_kernel_instrumented(
            &kernel,
            iterations,
            threads,
            observer.clone(),
            registry.clone(),
            obs.trace.clone(),
        );
        eprintln!("  [{}] {}", kernel.name, observer.summary());
        let stoke_speedup = o0 as f64 / result.rewrite_cycles.max(1) as f64;
        println!(
            "{:<8}{:>6}{:>10.2}{:>10.2}{:>10.2}{:>12.2}{:>12.2}  {:?}",
            kernel.name,
            if kernel.star { "*" } else { "" },
            o0 as f64 / o2 as f64,
            o0 as f64 / o3 as f64,
            stoke_speedup,
            result.stats.synthesis_time.as_secs_f64(),
            result.stats.optimization_time.as_secs_f64(),
            result.verification
        );
        // Per-move acceptance rates: the Figure 10 mixing diagnostics.
        let rates: Vec<String> = MoveStats::KINDS
            .iter()
            .map(|k| format!("{:.4}", result.stats.moves.acceptance_rate(*k)))
            .collect();
        writeln!(
            csv,
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:?},{}",
            kernel.name,
            kernel.star,
            o0 as f64 / o2 as f64,
            o0 as f64 / o3 as f64,
            stoke_speedup,
            result.stats.synthesis_time.as_secs_f64(),
            result.stats.optimization_time.as_secs_f64(),
            result.verification,
            rates.join(",")
        )
        .unwrap();
        if let Some(registry) = registry {
            report.push(ObsRow {
                name: kernel.name.to_string(),
                speedup: stoke_speedup,
                snapshot: registry.snapshot(),
                result,
            });
        }
    }
    if obs.metrics {
        write_obs_report(&report);
    }
    if let Some(sink) = &obs.trace {
        sink.flush();
    }
}

/// Emit the per-kernel search-diagnostics report in markdown and JSON.
fn write_obs_report(rows: &[ObsRow]) {
    let mut md = results_file("obs_report.md");
    writeln!(md, "# Kernel sweep search diagnostics\n").unwrap();
    writeln!(
        md,
        "| kernel | proposals | accept % | proposals/s | testcases | early-term % | \
         validations (proven/refuted) | speedup | verified |"
    )
    .unwrap();
    writeln!(md, "|---|---|---|---|---|---|---|---|---|").unwrap();
    for row in rows {
        let stats = &row.result.stats;
        let snap = &row.snapshot;
        let proposals = stats.total_proposals();
        let secs = stats.total_time.as_secs_f64();
        let evals = snap.counter("stoke_evaluations_total");
        let early = snap.counter("stoke_early_terminations_total");
        writeln!(
            md,
            "| {} | {} | {:.1} | {:.0} | {} | {:.1} | {}/{} | {:.2}x | {:?} |",
            row.name,
            proposals,
            100.0 * stats.moves.total_accepted() as f64 / proposals.max(1) as f64,
            proposals as f64 / secs.max(1e-9),
            snap.counter("stoke_testcases_total"),
            100.0 * early as f64 / evals.max(1) as f64,
            snap.counter(r#"stoke_validations_total{verdict="proven"}"#),
            snap.counter(r#"stoke_validations_total{verdict="refuted"}"#),
            row.speedup,
            row.result.verification
        )
        .unwrap();
    }
    writeln!(md, "\n## Acceptance rate by move kind\n").unwrap();
    writeln!(md, "| kernel | opcode | operand | swap | instruction |").unwrap();
    writeln!(md, "|---|---|---|---|---|").unwrap();
    for row in rows {
        let cells: Vec<String> = MoveStats::KINDS
            .iter()
            .map(|k| {
                format!(
                    "{:.1}% ({}/{})",
                    100.0 * row.result.stats.moves.acceptance_rate(*k),
                    row.result.stats.moves.accepted(*k),
                    row.result.stats.moves.proposed(*k)
                )
            })
            .collect();
        writeln!(md, "| {} | {} |", row.name, cells.join(" | ")).unwrap();
    }

    let mut json = results_file("obs_report.json");
    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            let stats = &row.result.stats;
            let snap = &row.snapshot;
            let moves: Vec<String> = MoveStats::KINDS
                .iter()
                .map(|k| {
                    format!(
                        r#"{{"kind":"{:?}","proposed":{},"accepted":{}}}"#,
                        k,
                        stats.moves.proposed(*k),
                        stats.moves.accepted(*k)
                    )
                })
                .collect();
            format!(
                concat!(
                    r#"{{"kernel":"{}","speedup":{:.4},"verified":"{:?}","#,
                    r#""proposals":{},"accepted":{},"total_s":{:.4},"#,
                    r#""synthesis_s":{:.4},"optimization_s":{:.4},"#,
                    r#""testcases":{},"evaluations":{},"early_terminations":{},"#,
                    r#""instructions_skipped":{},"checkpoint_restores":{},"#,
                    r#""counterexamples":{},"leakage_rejections":{},"#,
                    r#""validations_proven":{},"validations_refuted":{},"moves":[{}]}}"#
                ),
                row.name,
                row.speedup,
                row.result.verification,
                stats.total_proposals(),
                stats.moves.total_accepted(),
                stats.total_time.as_secs_f64(),
                stats.synthesis_time.as_secs_f64(),
                stats.optimization_time.as_secs_f64(),
                snap.counter("stoke_testcases_total"),
                snap.counter("stoke_evaluations_total"),
                snap.counter("stoke_early_terminations_total"),
                snap.counter("stoke_instructions_skipped_total"),
                snap.counter("stoke_checkpoint_restores_total"),
                snap.counter("stoke_counterexamples_total"),
                snap.counter("stoke_leakage_rejections_total"),
                snap.counter(r#"stoke_validations_total{verdict="proven"}"#),
                snap.counter(r#"stoke_validations_total{verdict="refuted"}"#),
                moves.join(",")
            )
        })
        .collect();
    writeln!(json, "[{}]", entries.join(",\n ")).unwrap();
    println!("search diagnostics written to results/obs_report.md and results/obs_report.json");
}

/// Figure 11: the MCMC parameter table.
fn fig11() {
    println!("== Figure 11: MCMC parameters ==");
    let c = Config::default();
    println!("wsf {:<6} pc {:<6} pu {:<6}", c.wsf, c.pc, c.pu);
    println!("wfp {:<6} po {:<6} beta {:<6}", c.wfp, c.po, c.beta);
    println!("wur {:<6} ps {:<6} ell {:<6}", c.wur, c.ps, c.ell);
    println!(
        "wm  {:<6} pi {:<6} testcases {}",
        c.wm, c.pi, c.num_testcases
    );
}

/// Figures 13/14/15: the case-study code listings.
fn fig13_14_15() {
    println!("== Figure 13: p21 (cycle through three values) ==");
    let p21 = hackers_delight::p21();
    println!("gcc -O3 stand-in:\n{}", p21.baseline_o3());
    println!(
        "STOKE rewrite (paper):\n{}",
        hackers_delight::P21_STOKE.trim()
    );
    println!("\n== Figure 14: SAXPY ==");
    let saxpy = kernels::saxpy();
    println!("gcc -O3 stand-in:\n{}", saxpy.baseline_o3());
    println!(
        "STOKE SSE rewrite (paper):\n{}",
        kernels::SAXPY_STOKE.trim()
    );
    println!("\n== Figure 15: linked-list traversal (loop-free fragment) ==");
    let list = kernels::linked_list();
    println!("llvm -O0 stand-in:\n{}", list.target_o0());
    println!("STOKE rewrite (paper):\n{}", kernels::LIST_STOKE.trim());
}

fn main() {
    let mut positional = Vec::new();
    let mut metrics = false;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            "--trace" => trace_path = Some(args.next().expect("--trace takes a path")),
            _ => positional.push(arg),
        }
    }
    let which = positional.first().map(String::as_str).unwrap_or("all");
    let iterations: u64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let threads = 2;
    let trace: Option<Arc<dyn TraceSink>> = trace_path.map(|path| {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).expect("create trace dir");
            }
        }
        let sink = JsonlSink::create(std::path::Path::new(&path), "experiments")
            .expect("trace file opens");
        Arc::new(sink) as Arc<dyn TraceSink>
    });
    let obs = ObsMode { metrics, trace };
    match which {
        "fig01" => fig01(),
        "fig02" => fig02(),
        "fig03" => fig03(),
        "fig05" => fig05(iterations),
        "fig06" | "fig07" => fig07(iterations),
        "fig08" => fig08(iterations),
        "fig10" | "fig12" => fig10(iterations, threads, &obs),
        "fig11" => fig11(),
        "fig13" | "fig14" | "fig15" => fig13_14_15(),
        "all" => {
            fig01();
            fig11();
            fig02();
            fig03();
            fig05(iterations);
            fig07(iterations);
            fig08(iterations);
            fig13_14_15();
            fig10(iterations, threads, &obs);
        }
        other => {
            eprintln!(
                "unknown experiment '{}'; see --help text in the source",
                other
            );
            std::process::exit(1);
        }
    }
}
