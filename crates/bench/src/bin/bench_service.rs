//! Regenerates `BENCH_service.json`: median end-to-end latency of a cold
//! search vs a canonical cache hit through `stoke-serve`, plus the queue
//! throughput when every job is served from the cache — the numbers
//! behind "solve once, serve forever".
//!
//! ```text
//! cargo run --release -p stoke-bench --bin bench-service -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sample counts to a smoke-test size (used by CI
//! to keep the harness from rotting); `--out` overrides the output path
//! (default `BENCH_service.json` in the current directory).

use std::sync::Arc;
use std::time::{Duration, Instant};
use stoke::{Budget, Config, InputSpec, TargetSpec, TestOnly};
use stoke_serve::{Disposition, ServeConfig, Service};
use stoke_workloads::kernels::MONT_GCC_O3;
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program};

/// The Montgomery kernel under the paper's register convention — the same
/// workload `bench-emulation` and the `serve` example use.
fn montgomery_spec() -> TargetSpec {
    let gcc: Program = MONT_GCC_O3.parse().expect("paper gcc code parses");
    TargetSpec::new(
        gcc,
        vec![
            InputSpec::value64(Gpr::Rsi),
            InputSpec::value32(Gpr::Rcx),
            InputSpec::value32(Gpr::Rdx),
            InputSpec::value64(Gpr::Rdi),
            InputSpec::value64(Gpr::R8),
        ],
        LocSet::from_gprs([Gpr::Rdi, Gpr::R8]),
    )
}

fn serve_config() -> ServeConfig {
    let config = Config::builder()
        .ell(30)
        .num_testcases(16)
        .synthesis_iterations(2_000)
        .optimization_iterations(10_000)
        .threads(2)
        .build()
        .expect("configuration is valid");
    let mut serve = ServeConfig::new(config);
    serve.job_budget = Budget::unlimited().with_wall_clock(Duration::from_secs(300));
    serve.verifier = Some(Arc::new(TestOnly));
    serve
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Median cold-search latency: each sample runs on a fresh service, so the
/// cache can never short-circuit it.
fn bench_cold(samples: usize) -> (Duration, u64) {
    let mut latencies = Vec::with_capacity(samples);
    let mut proposals = 0;
    for _ in 0..samples {
        let service = Service::start(serve_config()).expect("service starts");
        let t0 = Instant::now();
        let job = service.submit(montgomery_spec());
        let outcome = service.wait(job).expect("cold job completes");
        latencies.push(t0.elapsed());
        assert_eq!(outcome.disposition, Disposition::ColdSearch);
        proposals = outcome
            .result
            .expect("cold search succeeds")
            .stats
            .total_proposals();
        service.shutdown().expect("clean shutdown");
    }
    (median(latencies), proposals)
}

/// Median cache-hit latency: one service, solved once, then each sample is
/// a full submit/wait round trip served from the cache.
fn bench_hits(samples: usize) -> Duration {
    let service = Service::start(serve_config()).expect("service starts");
    let warm = service.submit(montgomery_spec());
    service
        .wait(warm)
        .expect("seed job completes")
        .result
        .expect("seed search succeeds");
    let mut latencies = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let job = service.submit(montgomery_spec());
        let outcome = service.wait(job).expect("hit completes");
        latencies.push(t0.elapsed());
        assert_eq!(outcome.disposition, Disposition::CacheHit);
    }
    service.shutdown().expect("clean shutdown");
    median(latencies)
}

/// Queue throughput on an all-hit workload: `jobs` submissions enqueued up
/// front, then drained; jobs per second of wall clock.
fn bench_throughput(jobs: usize) -> f64 {
    let service = Service::start(serve_config()).expect("service starts");
    let warm = service.submit(montgomery_spec());
    service
        .wait(warm)
        .expect("seed job completes")
        .result
        .expect("seed search succeeds");
    let t0 = Instant::now();
    let ids: Vec<_> = (0..jobs)
        .map(|_| service.submit(montgomery_spec()))
        .collect();
    for id in ids {
        service.wait(id).expect("queued job completes");
    }
    let elapsed = t0.elapsed();
    let stats = service.shutdown().expect("clean shutdown");
    assert_eq!(stats.cache_hits, jobs as u64);
    jobs as f64 / elapsed.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let (cold_samples, hit_samples, throughput_jobs) =
        if quick { (3, 20, 50) } else { (9, 200, 500) };

    eprintln!("benchmarking cold searches ({cold_samples} fresh services)...");
    let (cold, proposals) = bench_cold(cold_samples);
    eprintln!("  median {cold:?} ({proposals} proposals each)");
    eprintln!("benchmarking cache hits ({hit_samples} resubmissions)...");
    let hit = bench_hits(hit_samples);
    eprintln!("  median {hit:?}");
    eprintln!("benchmarking queue throughput ({throughput_jobs} enqueued jobs)...");
    let throughput = bench_throughput(throughput_jobs);
    eprintln!("  {throughput:.0} jobs/s");

    let speedup = cold.as_secs_f64() / hit.as_secs_f64().max(1e-12);
    let json = format!(
        "{{\n  \"description\": \"stoke-serve latency medians: cold pipeline search vs \
         canonical cache hit on the Montgomery kernel, plus all-hit queue throughput; \
         regenerate with: cargo run --release -p stoke-bench --bin bench-service\",\n  \
         \"quick\": {quick},\n  \"kernel\": \"mont\",\n  \
         \"cold_search\": {{ \"samples\": {cold_samples}, \"median_ms\": {:.3}, \
         \"proposals_per_search\": {proposals} }},\n  \
         \"cache_hit\": {{ \"samples\": {hit_samples}, \"median_us\": {:.1} }},\n  \
         \"speedup_hit_vs_cold\": {:.0},\n  \
         \"queue_throughput_jobs_per_sec\": {:.0}\n}}\n",
        cold.as_secs_f64() * 1e3,
        hit.as_secs_f64() * 1e6,
        speedup,
        throughput,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}
