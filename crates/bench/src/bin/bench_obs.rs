//! Regenerates `BENCH_obs.json`: the per-proposal overhead of attaching
//! the observability layer — [`stoke::MetricsObserver`] over a
//! [`stoke_obs::MetricsRegistry`] plus an in-memory trace ring — to a
//! fixed-seed MCMC replay of the Montgomery-multiplication kernel,
//! compared against the same replay under the [`stoke::NullObserver`].
//!
//! The replay doubles as the determinism check: both arms must produce
//! bit-identical chain results (proposals, acceptances, per-move counts,
//! best cost), proving the instrumentation changes zero search decisions.
//! The run aborts if they diverge.
//!
//! ```text
//! cargo run --release -p stoke-bench --bin bench-obs -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks iterations and sample counts to a CI smoke size and
//! relaxes the overhead gate (tiny samples are noisy); the full run
//! enforces the <5% observer-overhead budget recorded in the output
//! (default `BENCH_obs.json` in the current directory).

use std::sync::Arc;
use std::time::Instant;
use stoke::{
    generate_testcases, Chain, ChainControl, ChainResult, CostFn, MetricsObserver, NullObserver,
    Phase, SearchObserver,
};
use stoke_bench::{spec_for, sweep_config};
use stoke_obs::{MetricsRegistry, RingSink};
use stoke_workloads::kernels;

const SEED: u64 = 7;
const PROGRESS_EVERY: u64 = 512;

/// The decision-relevant digest of one chain replay. Two arms that agree
/// on every field made exactly the same accept/reject choices.
#[derive(PartialEq, Debug)]
struct Digest {
    proposals: u64,
    accepted: u64,
    best_cost_bits: u64,
    moves: stoke::MoveStats,
}

fn replay(iterations: u64, observer: &dyn SearchObserver) -> (Digest, f64) {
    let kernel = kernels::montgomery();
    let spec = spec_for(&kernel);
    let config = sweep_config(iterations, 1);
    let suite = generate_testcases(&spec, config.num_testcases, config.seed);
    let mut cost = CostFn::new(config, suite, spec.program.static_latency());
    let mut chain = Chain::new(&mut cost, SEED, false);
    let start = chain.proposer_mut().random_rewrite();
    let ctrl = ChainControl::new(Phase::Synthesis, 0, observer).with_progress_every(PROGRESS_EVERY);
    let t0 = Instant::now();
    let result: ChainResult = chain.run_controlled(start, iterations, &ctrl);
    let ns_per_proposal = t0.elapsed().as_nanos() as f64 / result.proposals.max(1) as f64;
    (
        Digest {
            proposals: result.proposals,
            accepted: result.accepted,
            best_cost_bits: result.best_cost.to_bits(),
            moves: result.moves,
        },
        ns_per_proposal,
    )
}

fn median(mut timings: Vec<f64>) -> f64 {
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    timings[timings.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let (iterations, samples) = if quick { (5_000, 3) } else { (60_000, 9) };

    let registry = MetricsRegistry::new();
    let ring = Arc::new(RingSink::new(64 * 1024));
    let instrumented = MetricsObserver::new(&registry).with_trace(ring.clone());

    // Warm-up pass per arm, which also pins the digests.
    eprintln!("replaying montgomery chain ({iterations} proposals), {samples} samples per arm...");
    let (base_digest, _) = replay(iterations, &NullObserver);
    let (obs_digest, _) = replay(iterations, &instrumented);
    assert_eq!(
        obs_digest, base_digest,
        "instrumented replay must be bit-identical to the baseline"
    );

    // Samples alternate arms so slow thermal/scheduler drift hits both
    // medians equally instead of biasing whichever arm ran last.
    let mut base_timings = Vec::with_capacity(samples);
    let mut obs_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (digest, ns) = replay(iterations, &NullObserver);
        assert_eq!(digest, base_digest, "fixed-seed replay must repeat");
        base_timings.push(ns);
        let (digest, ns) = replay(iterations, &instrumented);
        assert_eq!(digest, base_digest, "fixed-seed replay must repeat");
        obs_timings.push(ns);
    }
    let base_ns = median(base_timings);
    let obs_ns = median(obs_timings);
    eprintln!(
        "digests identical: {} proposals, {} accepted, best cost bits {:#x}",
        base_digest.proposals, base_digest.accepted, base_digest.best_cost_bits
    );

    let overhead_pct = 100.0 * (obs_ns - base_ns) / base_ns;
    eprintln!(
        "baseline {base_ns:.1} ns/proposal, instrumented {obs_ns:.1} ns/proposal \
         ({overhead_pct:+.2}% overhead)"
    );
    // The full run enforces the documented <5% budget; quick CI runs use
    // a loose gate because 3 small samples carry scheduler noise.
    let limit = if quick { 50.0 } else { 5.0 };
    assert!(
        overhead_pct < limit,
        "observer overhead {overhead_pct:.2}% exceeds the {limit}% budget"
    );

    let trace_records = ring.records().len() + ring.dropped() as usize;
    let json = format!(
        "{{\n  \"description\": \"per-proposal overhead of the metrics+trace observer on a \
         fixed-seed montgomery chain replay vs NullObserver; both arms bit-identical; \
         regenerate with: cargo run --release -p stoke-bench --bin bench-obs\",\n  \
         \"quick\": {quick},\n  \"iterations\": {iterations},\n  \"samples\": {samples},\n  \
         \"proposals\": {},\n  \"baseline_ns_per_proposal\": {base_ns:.1},\n  \
         \"instrumented_ns_per_proposal\": {obs_ns:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \"overhead_budget_pct\": 5.0,\n  \
         \"digest_identical\": true,\n  \"trace_records\": {trace_records}\n}}\n",
        base_digest.proposals
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}
