//! Regenerates `BENCH_emulation.json`: median `eq'` evaluation times for
//! the three execution backends (interp / prepared / batched) on the
//! Montgomery and p01 kernels at 32 test cases, so the perf trajectory is
//! tracked across releases instead of claimed once.
//!
//! ```text
//! cargo run --release -p stoke-bench --bin bench-emulation -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sample count to a smoke-test size (used by CI to
//! keep the harness from rotting); `--out` overrides the output path
//! (default `BENCH_emulation.json` in the current directory). The timing
//! is a hand-rolled median-of-samples loop rather than the criterion
//! harness, because the committed JSON needs stable medians and the
//! criterion wall-clock harness is a dev-dependency printing min/mean/max
//! only.

use std::time::Instant;
use stoke::{generate_testcases, BackendSpec, Config, CostFn};
use stoke_bench::spec_for;
use stoke_workloads::{hackers_delight, kernels, Kernel};
use stoke_x86::Instruction;

struct Measurement {
    backend: &'static str,
    median_ns_per_eval: f64,
    evals_per_sec: f64,
}

/// Median nanoseconds per `eq'` evaluation: `samples` timed batches of
/// `iters` evaluations each, median of the per-evaluation means. The
/// running total is folded into a sink so the evaluation cannot be
/// optimized away.
fn measure(
    cost: &mut CostFn,
    instrs: &[Instruction],
    iters: u32,
    samples: usize,
    sink: &mut u64,
) -> f64 {
    // Warm-up: populate scratch buffers and caches.
    for _ in 0..iters {
        *sink = sink.wrapping_add(cost.eq_prime(instrs));
    }
    let mut per_eval: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                *sink = sink.wrapping_add(cost.eq_prime(instrs));
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_eval.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    per_eval[samples / 2]
}

fn bench_kernel(kernel: &Kernel, iters: u32, samples: usize, sink: &mut u64) -> Vec<Measurement> {
    let spec = spec_for(kernel);
    let suite = generate_testcases(&spec, 32, 1);
    let instrs: Vec<Instruction> = spec.program.iter().cloned().collect();
    let backends = [
        ("interp", BackendSpec::Interp),
        ("prepared", BackendSpec::Prepared),
        ("batched", BackendSpec::Batched),
    ];
    // The backends must agree before being compared.
    let totals: Vec<u64> = backends
        .iter()
        .map(|(_, backend)| {
            CostFn::new(
                Config {
                    backend: *backend,
                    ..Config::default()
                },
                suite.clone(),
                spec.program.static_latency(),
            )
            .eq_prime(&instrs)
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "{}: backends disagree on eq' ({totals:?})",
        kernel.name
    );
    backends
        .iter()
        .map(|(name, backend)| {
            let mut cost = CostFn::new(
                Config {
                    backend: *backend,
                    ..Config::default()
                },
                suite.clone(),
                spec.program.static_latency(),
            );
            let median = measure(&mut cost, &instrs, iters, samples, sink);
            Measurement {
                backend: name,
                median_ns_per_eval: median,
                evals_per_sec: 1e9 / median,
            }
        })
        .collect()
}

fn json_for(kernel_name: &str, measurements: &[Measurement]) -> String {
    let by_name = |name: &str| {
        measurements
            .iter()
            .find(|m| m.backend == name)
            .expect("all backends measured")
    };
    let speedup = |a: &str, b: &str| by_name(b).median_ns_per_eval / by_name(a).median_ns_per_eval;
    let mut out = format!("    {{\n      \"kernel\": \"{kernel_name}\",\n");
    for m in measurements {
        out.push_str(&format!(
            "      \"{}\": {{ \"median_ns_per_eval\": {:.1}, \"evals_per_sec\": {:.1} }},\n",
            m.backend, m.median_ns_per_eval, m.evals_per_sec
        ));
    }
    out.push_str(&format!(
        "      \"speedup_batched_vs_prepared\": {:.2},\n",
        speedup("batched", "prepared")
    ));
    out.push_str(&format!(
        "      \"speedup_batched_vs_interp\": {:.2}\n    }}",
        speedup("batched", "interp")
    ));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_emulation.json".to_string());
    let (iters, samples) = if quick { (20, 3) } else { (2_000, 15) };
    let mut sink = 0u64;
    let kernels = [kernels::montgomery(), hackers_delight::p01()];
    let mut entries = Vec::new();
    for kernel in &kernels {
        eprintln!("benchmarking eq'/{} (32 test cases)...", kernel.name);
        let measurements = bench_kernel(kernel, iters, samples, &mut sink);
        for m in &measurements {
            eprintln!(
                "  {:<9} {:>10.1} ns/eval  {:>12.1} evals/s",
                m.backend, m.median_ns_per_eval, m.evals_per_sec
            );
        }
        entries.push(json_for(kernel.name, &measurements));
    }
    let json = format!(
        "{{\n  \"description\": \"median eq' suite-evaluation time per execution backend \
         (32 test cases); regenerate with: cargo run --release -p stoke-bench --bin \
         bench-emulation\",\n  \"quick\": {quick},\n  \"testcases\": 32,\n  \
         \"samples_per_backend\": {samples},\n  \"evals_per_sample\": {iters},\n  \
         \"kernels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path} (sink {sink:x})");
}
