//! Regenerates `BENCH_emulation.json`: median `eq'` evaluation times for
//! the execution backends (interp / prepared / batched) on the Montgomery
//! and p01 kernels at 32 test cases, plus a proposal-locality comparison
//! of the batched and incremental backends — random single-slot edits
//! replayed through the chain's hint/commit protocol, the workload the
//! prefix-checkpoint backend is built for — so the perf trajectory is
//! tracked across releases instead of claimed once.
//!
//! ```text
//! cargo run --release -p stoke-bench --bin bench-emulation -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sample count to a smoke-test size (used by CI to
//! keep the harness from rotting); `--out` overrides the output path
//! (default `BENCH_emulation.json` in the current directory). The timing
//! is a hand-rolled median-of-samples loop rather than the criterion
//! harness, because the committed JSON needs stable medians and the
//! criterion wall-clock harness is a dev-dependency printing min/mean/max
//! only.

use std::time::Instant;
use stoke::{generate_testcases, BackendSpec, Config, CostFn, Proposer};
use stoke_bench::spec_for;
use stoke_emu::PreparedProgram;
use stoke_workloads::{hackers_delight, kernels, Kernel};
use stoke_x86::Instruction;

struct Measurement {
    backend: &'static str,
    median_ns_per_eval: f64,
    evals_per_sec: f64,
}

/// Median nanoseconds per `eq'` evaluation: `samples` timed batches of
/// `iters` evaluations each, median of the per-evaluation means. The
/// running total is folded into a sink so the evaluation cannot be
/// optimized away.
fn measure(
    cost: &mut CostFn,
    instrs: &[Instruction],
    iters: u32,
    samples: usize,
    sink: &mut u64,
) -> f64 {
    // Warm-up: populate scratch buffers and caches.
    for _ in 0..iters {
        *sink = sink.wrapping_add(cost.eq_prime(instrs));
    }
    let mut per_eval: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                *sink = sink.wrapping_add(cost.eq_prime(instrs));
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_eval.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    per_eval[samples / 2]
}

fn bench_kernel(kernel: &Kernel, iters: u32, samples: usize, sink: &mut u64) -> Vec<Measurement> {
    let spec = spec_for(kernel);
    let suite = generate_testcases(&spec, 32, 1);
    let instrs: Vec<Instruction> = spec.program.iter().cloned().collect();
    let backends = [
        ("interp", BackendSpec::Interp),
        ("prepared", BackendSpec::Prepared),
        ("batched", BackendSpec::Batched),
    ];
    // The backends must agree before being compared.
    let totals: Vec<u64> = backends
        .iter()
        .map(|(_, backend)| {
            CostFn::new(
                Config {
                    backend: *backend,
                    ..Config::default()
                },
                suite.clone(),
                spec.program.static_latency(),
            )
            .eq_prime(&instrs)
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "{}: backends disagree on eq' ({totals:?})",
        kernel.name
    );
    backends
        .iter()
        .map(|(name, backend)| {
            let mut cost = CostFn::new(
                Config {
                    backend: *backend,
                    ..Config::default()
                },
                suite.clone(),
                spec.program.static_latency(),
            );
            let median = measure(&mut cost, &instrs, iters, samples, sink);
            Measurement {
                backend: name,
                median_ns_per_eval: median,
                evals_per_sec: 1e9 / median,
            }
        })
        .collect()
}

/// One step of the proposal-locality schedule: replace the instruction at
/// `slot` with `instr`, then accept or reject.
struct Edit {
    slot: usize,
    instr: Instruction,
    accept: bool,
}

/// A deterministic schedule of random single-slot edits over `base`, the
/// edit locality an MCMC chain exhibits (most proposals touch one slot;
/// roughly one in eight is accepted).
fn edit_schedule(base: &[Instruction], len: usize, seed: u64) -> Vec<Edit> {
    let mut proposer = Proposer::new(
        Config {
            ell: base.len(),
            ..Config::default()
        },
        seed,
    );
    // xorshift64* for slot/accept draws: tiny, deterministic, and keeps
    // this binary independent of any RNG crate.
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..len)
        .map(|_| {
            let r = next();
            Edit {
                slot: (r as usize) % base.len(),
                instr: proposer.random_instruction(),
                accept: (r >> 33) % 8 == 0,
            }
        })
        .collect()
}

/// Replay the schedule once through `cost`, driving the chain's
/// hint/commit protocol (both calls are no-ops for the batched backend),
/// and fold every `eq'` total into the sink.
fn replay(cost: &mut CostFn, base: &[Instruction], schedule: &[Edit], sink: &mut u64) {
    let mut current: Vec<Instruction> = base.to_vec();
    let mut candidate = current.clone();
    cost.commit_baseline(&PreparedProgram::new(&current), 0);
    for edit in schedule {
        candidate.clone_from(&current);
        candidate[edit.slot] = edit.instr.clone();
        cost.set_reuse_prefix(Some(edit.slot));
        *sink = sink.wrapping_add(cost.eq_prime(&candidate));
        if edit.accept {
            std::mem::swap(&mut current, &mut candidate);
            cost.commit_baseline(&PreparedProgram::new(&current), edit.slot);
        }
    }
}

/// Median nanoseconds per proposal at single-slot edit locality for one
/// backend: `samples` timed replays of the same deterministic schedule.
fn measure_proposals(
    kernel: &Kernel,
    backend: BackendSpec,
    iters: u32,
    samples: usize,
    sink: &mut u64,
) -> f64 {
    let spec = spec_for(kernel);
    let suite = generate_testcases(&spec, 32, 1);
    let instrs: Vec<Instruction> = spec.program.iter().cloned().collect();
    let schedule = edit_schedule(&instrs, iters as usize, 0x0ddba11);
    let mut cost = CostFn::new(
        Config {
            backend,
            ..Config::default()
        },
        suite,
        spec.program.static_latency(),
    );
    replay(&mut cost, &instrs, &schedule, sink);
    let mut per_proposal: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            replay(&mut cost, &instrs, &schedule, sink);
            t0.elapsed().as_nanos() as f64 / schedule.len() as f64
        })
        .collect();
    per_proposal.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    per_proposal[samples / 2]
}

fn json_for(
    kernel_name: &str,
    measurements: &[Measurement],
    proposals: &[(&'static str, f64)],
) -> String {
    let by_name = |name: &str| {
        measurements
            .iter()
            .find(|m| m.backend == name)
            .expect("all backends measured")
    };
    let speedup = |a: &str, b: &str| by_name(b).median_ns_per_eval / by_name(a).median_ns_per_eval;
    let proposal = |name: &str| {
        proposals
            .iter()
            .find(|(n, _)| *n == name)
            .expect("all proposal backends measured")
            .1
    };
    let mut out = format!("    {{\n      \"kernel\": \"{kernel_name}\",\n");
    for m in measurements {
        out.push_str(&format!(
            "      \"{}\": {{ \"median_ns_per_eval\": {:.1}, \"evals_per_sec\": {:.1} }},\n",
            m.backend, m.median_ns_per_eval, m.evals_per_sec
        ));
    }
    out.push_str(&format!(
        "      \"speedup_batched_vs_prepared\": {:.2},\n",
        speedup("batched", "prepared")
    ));
    out.push_str(&format!(
        "      \"speedup_batched_vs_interp\": {:.2},\n",
        speedup("batched", "interp")
    ));
    out.push_str("      \"proposals\": {\n");
    for (name, median) in proposals {
        out.push_str(&format!(
            "        \"{name}\": {{ \"median_ns_per_proposal\": {median:.1} }},\n"
        ));
    }
    out.push_str(&format!(
        "        \"speedup_incremental_vs_batched\": {:.2}\n      }}\n    }}",
        proposal("batched") / proposal("incremental")
    ));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_emulation.json".to_string());
    let (iters, samples) = if quick { (20, 3) } else { (2_000, 15) };
    let mut sink = 0u64;
    let kernels = [kernels::montgomery(), hackers_delight::p01()];
    let mut entries = Vec::new();
    for kernel in &kernels {
        eprintln!("benchmarking eq'/{} (32 test cases)...", kernel.name);
        let measurements = bench_kernel(kernel, iters, samples, &mut sink);
        for m in &measurements {
            eprintln!(
                "  {:<9} {:>10.1} ns/eval  {:>12.1} evals/s",
                m.backend, m.median_ns_per_eval, m.evals_per_sec
            );
        }
        eprintln!(
            "benchmarking proposals/{} (single-slot edits, 32 test cases)...",
            kernel.name
        );
        // Separate sinks so the replayed eq' totals double as a
        // bit-identity check between the two backends.
        let (mut sink_b, mut sink_i) = (0u64, 0u64);
        let proposals: Vec<(&'static str, f64)> = vec![
            (
                "batched",
                measure_proposals(kernel, BackendSpec::Batched, iters, samples, &mut sink_b),
            ),
            (
                "incremental",
                measure_proposals(
                    kernel,
                    BackendSpec::Incremental,
                    iters,
                    samples,
                    &mut sink_i,
                ),
            ),
        ];
        assert_eq!(
            sink_b, sink_i,
            "{}: incremental eq' totals diverge from batched",
            kernel.name
        );
        sink = sink.wrapping_add(sink_b).wrapping_add(sink_i);
        for (name, median) in &proposals {
            eprintln!("  {name:<11} {median:>10.1} ns/proposal");
        }
        entries.push(json_for(kernel.name, &measurements, &proposals));
    }
    let json = format!(
        "{{\n  \"description\": \"median eq' suite-evaluation time per execution backend and \
         median ns/proposal at single-slot edit locality (32 test cases); regenerate with: \
         cargo run --release -p stoke-bench --bin bench-emulation\",\n  \"quick\": {quick},\n  \
         \"testcases\": 32,\n  \"samples_per_backend\": {samples},\n  \
         \"evals_per_sample\": {iters},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("wrote {out_path} (sink {sink:x})");
}
