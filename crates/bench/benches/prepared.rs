//! Criterion benchmarks for the decode-once execution backend: `eq'`
//! evaluations per second with per-case interpretation (decode/analyze on
//! every test case, the pre-PreparedProgram behaviour) versus prepared
//! execution (decode once per proposal, execute across all test cases).
//!
//! Both variants run the identical term arithmetic (register/memory
//! Hamming distance plus fault penalties) over the identical suite, so
//! the measured difference is purely the execution backend.

use criterion::{criterion_group, criterion_main, Criterion};
use stoke::{generate_testcases, Config, CostFn, TestSuite};
use stoke_bench::spec_for;
use stoke_emu::{run_instrs, PreparedProgram};
use stoke_workloads::{hackers_delight, kernels, Kernel};
use stoke_x86::Instruction;

/// One `eq'` evaluation, interpreting the raw instruction slice per case.
fn eq_prime_interpreted(cf: &CostFn, suite: &TestSuite, instrs: &[Instruction]) -> u64 {
    let mut total = 0u64;
    for case in &suite.cases {
        let out = run_instrs(instrs, &case.input);
        total += cf.reg_term(case, &out.state)
            + cf.mem_term(case, &out.state)
            + cf.err_term(&out.faults);
    }
    total
}

/// One `eq'` evaluation through the prepared backend, including the
/// per-proposal prepare step (the cost a search actually pays).
fn eq_prime_prepared(cf: &CostFn, suite: &TestSuite, instrs: &[Instruction]) -> u64 {
    let prepared = PreparedProgram::new(instrs);
    let mut total = 0u64;
    for case in &suite.cases {
        let out = prepared.run_prepared(&case.input);
        total += cf.reg_term(case, &out.state)
            + cf.mem_term(case, &out.state)
            + cf.err_term(&out.faults);
    }
    total
}

fn bench_kernel(c: &mut Criterion, kernel: &Kernel) {
    let spec = spec_for(kernel);
    let suite = generate_testcases(&spec, 32, 1);
    let cf = CostFn::new(
        Config::default(),
        suite.clone(),
        spec.program.static_latency(),
    );
    let instrs: Vec<Instruction> = spec.program.iter().cloned().collect();
    let expected = eq_prime_interpreted(&cf, &suite, &instrs);
    assert_eq!(
        eq_prime_prepared(&cf, &suite, &instrs),
        expected,
        "the two backends must agree before being compared"
    );
    let mut group = c.benchmark_group(format!("eq_prime/{}", kernel.name));
    group.bench_function("interpreted_32_testcases", |b| {
        b.iter(|| eq_prime_interpreted(&cf, &suite, &instrs))
    });
    group.bench_function("prepared_32_testcases", |b| {
        b.iter(|| eq_prime_prepared(&cf, &suite, &instrs))
    });
    group.finish();
}

fn prepared_vs_interpreted(c: &mut Criterion) {
    bench_kernel(c, &kernels::montgomery());
    bench_kernel(c, &hackers_delight::p01());
}

criterion_group!(benches, prepared_vs_interpreted);
criterion_main!(benches);
