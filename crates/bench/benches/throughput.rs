//! Criterion benchmarks behind Figure 2 (validator vs emulator
//! throughput) and Figure 3 (cost of the timing model): how many test-case
//! evaluations, symbolic validations and cycle estimates per second the
//! substrates sustain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use stoke::generate_testcases;
use stoke_bench::spec_for;
use stoke_emu::{run, TimingModel};
use stoke_verify::Validator;
use stoke_workloads::hackers_delight;

fn emulator_testcases(c: &mut Criterion) {
    let kernel = hackers_delight::p14();
    let spec = spec_for(&kernel);
    let suite = generate_testcases(&spec, 32, 1);
    let target = kernel.target_o0();
    c.bench_function("emulator/p14_o0_32_testcases", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for case in &suite.cases {
                total += run(&target, &case.input)
                    .state
                    .read_gpr64(stoke_x86::Gpr::Rax);
            }
            total
        })
    });
    let o3 = kernel.baseline_o3();
    c.bench_function("emulator/p14_o3_32_testcases", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for case in &suite.cases {
                total += run(&o3, &case.input).state.read_gpr64(stoke_x86::Gpr::Rax);
            }
            total
        })
    });
}

fn validator_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator");
    group.sample_size(10);
    for kernel in [hackers_delight::p01(), hackers_delight::p14()] {
        let target = kernel.baseline_o3();
        let validator = Validator::new(kernel.live_out.clone());
        group.bench_function(format!("{}_self_equivalence", kernel.name), |b| {
            b.iter_batched(
                || (target.clone(), target.clone()),
                |(t, r)| validator.prove(&t, &r),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn timing_model(c: &mut Criterion) {
    let kernel = stoke_workloads::kernels::montgomery();
    let o0 = kernel.target_o0();
    let model = TimingModel::default();
    c.bench_function("timing_model/montgomery_o0", |b| {
        b.iter(|| model.cycles(&o0))
    });
}

criterion_group!(benches, emulator_testcases, validator_queries, timing_model);
criterion_main!(benches);
