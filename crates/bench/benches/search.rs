//! Criterion benchmarks behind Figure 5: MCMC proposal throughput with
//! and without the early-termination acceptance computation of §4.5.

use criterion::{criterion_group, criterion_main, Criterion};
use stoke::{generate_testcases, Chain, CostFn, Rewrite};
use stoke_bench::{spec_for, sweep_config};
use stoke_workloads::hackers_delight;

fn proposals(c: &mut Criterion) {
    let kernel = hackers_delight::p14();
    let spec = spec_for(&kernel);
    let mut group = c.benchmark_group("mcmc");
    group.sample_size(10);
    for early in [true, false] {
        let name = if early {
            "synthesis_1000_proposals_early_termination"
        } else {
            "synthesis_1000_proposals_full_evaluation"
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut config = sweep_config(1_000, 1);
                config.early_termination = early;
                let suite = generate_testcases(&spec, config.num_testcases, 3);
                let mut cost = CostFn::new(config, suite, spec.program.static_latency());
                let mut chain = Chain::new(&mut cost, 5, false);
                let start = Rewrite::empty(24);
                chain.run(start, 1_000).proposals
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("optimization");
    group.sample_size(10);
    group.bench_function("p14_from_o0_1000_proposals", |b| {
        b.iter(|| {
            let config = sweep_config(1_000, 1);
            let suite = generate_testcases(&spec, config.num_testcases, 3);
            let mut cost = CostFn::new(config, suite, spec.program.static_latency());
            let mut chain = Chain::new(&mut cost, 7, true);
            let start = Rewrite::from_program(&spec.program, 24);
            chain.run(start, 1_000).proposals
        })
    });
    group.finish();
}

criterion_group!(benches, proposals);
criterion_main!(benches);
