//! The session-based search driver: validated configuration, typed
//! errors, time/iteration budgets with cancellation, observer hooks, and
//! a multi-target batch entry point.
//!
//! [`Session`] is the public front door to the Figure 9 pipeline: it can
//! bound a search by wall-clock time or proposal count ([`Budget`]),
//! cancel it from another thread ([`CancelToken`]), stream per-phase
//! progress ([`SearchObserver`]), schedule many targets across the thread
//! pool ([`Session::run_batch`]), and swap the evaluation pipeline's
//! stages: the cost model through the configuration
//! ([`Config::cost_model`](crate::config::Config::cost_model)) and the
//! validation strategy through [`Session::with_verifier`].

use crate::config::Config;
use crate::cost::CostFn;
use crate::cost::EvalStats;
use crate::error::StokeError;
use crate::mcmc::{Chain, ChainResult, MoveStats, Rewrite};
use crate::observer::{
    ChainProgress, ChainStats, NullObserver, Phase, SearchObserver, TeeObserver,
};
use crate::search::{SearchStats, StokeResult, Verification};
use crate::telemetry::MetricsObserver;
use crate::testcase::{generate_testcases, TargetSpec, TestSuite};
use crate::verifier::{
    Cascade, LeakageCheck, Symbolic, TestOnly, Verifier, VerifierSpec, VerifyContext, VerifyStatus,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use stoke_emu::TimingModel;
use stoke_obs::{MetricsRegistry, TraceSink};
use stoke_x86::Program;

static NULL_OBSERVER: NullObserver = NullObserver;
static DEFAULT_VERIFIER: Cascade<Symbolic> = Cascade::new(Symbolic);
static TEST_ONLY_VERIFIER: TestOnly = TestOnly;
static SYMBOLIC_VERIFIER: Symbolic = Symbolic;
static LEAKAGE_VERIFIER: LeakageCheck<Cascade<Symbolic>> =
    LeakageCheck::new(Cascade::new(Symbolic));

/// A shared cancellation flag: clone it, hand it to another thread, and
/// [`cancel`](CancelToken::cancel) stops every chain of the session that
/// owns it at the next proposal boundary.
///
/// Cancellation is permanent: the flag never resets, so a cancelled
/// [`Session`] (or [`Budget`]) stays cancelled — including across
/// subsequent `run` calls. To search again after a cancellation, build a
/// new session with a fresh budget.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at each chain's next
    /// proposal boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Limits on how much work a [`Session`] run may do: a maximum number of
/// proposals, a wall-clock duration, and a [`CancelToken`] — any
/// combination, checked before every MCMC proposal.
///
/// ```
/// use std::time::Duration;
/// use stoke::Budget;
/// let budget = Budget::unlimited()
///     .with_max_proposals(1_000_000)
///     .with_wall_clock(Duration::from_secs(30));
/// let token = budget.cancel_token();
/// assert!(!token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_proposals: Option<u64>,
    wall_clock: Option<Duration>,
    cancel: CancelToken,
}

impl Budget {
    /// No limits beyond the per-phase iteration counts in [`Config`].
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Cap the total number of proposals evaluated across every chain and
    /// phase of a run (and across every target of a batch).
    pub fn with_max_proposals(mut self, max: u64) -> Budget {
        self.max_proposals = Some(max);
        self
    }

    /// Cap the wall-clock duration of a run. The clock starts when
    /// [`Session::run`] or [`Session::run_batch`] is called.
    pub fn with_wall_clock(mut self, limit: Duration) -> Budget {
        self.wall_clock = Some(limit);
        self
    }

    /// The budget's cancellation token (cloning shares the flag).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// A copy of this budget's limits with a *fresh* cancellation token.
    ///
    /// `Clone` shares the token (cancelling one clone cancels them all);
    /// `detached` is for using a budget as a template — e.g. a service
    /// stamping out per-job budgets that must be cancellable
    /// independently.
    pub fn detached(&self) -> Budget {
        Budget {
            max_proposals: self.max_proposals,
            wall_clock: self.wall_clock,
            cancel: CancelToken::new(),
        }
    }

    /// Cancel any run governed by this budget.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// A running budget: the deadline and proposal counter shared by every
/// chain of one [`Session::run`] / [`Session::run_batch`] invocation.
///
/// Created with [`BudgetClock::start`] when the run begins; chains consult
/// it through [`ChainControl`] before each proposal.
#[derive(Debug)]
pub struct BudgetClock {
    deadline: Option<Instant>,
    max_proposals: Option<u64>,
    used_proposals: AtomicU64,
    cancel: CancelToken,
    tripped: AtomicBool,
    parent: Option<Arc<BudgetClock>>,
}

impl BudgetClock {
    /// Start the clock on a budget: the wall-clock deadline is measured
    /// from this call.
    pub fn start(budget: &Budget) -> BudgetClock {
        BudgetClock {
            deadline: budget.wall_clock.map(|d| Instant::now() + d),
            max_proposals: budget.max_proposals,
            used_proposals: AtomicU64::new(0),
            cancel: budget.cancel.clone(),
            tripped: AtomicBool::new(false),
            parent: None,
        }
    }

    /// Start a clock on `budget` nested under `parent`: every proposal is
    /// charged to *both* clocks, and the run stops when either is
    /// exhausted. This is how a service composes a per-job budget with a
    /// batch-wide one.
    pub fn start_with_parent(budget: &Budget, parent: Arc<BudgetClock>) -> BudgetClock {
        BudgetClock {
            parent: Some(parent),
            ..BudgetClock::start(budget)
        }
    }

    /// Account for one proposal; `false` means the budget is exhausted (or
    /// cancelled) and the chain must stop.
    pub fn admit_proposal(&self) -> bool {
        if self.cancel.is_cancelled() {
            self.tripped.store(true, Ordering::Relaxed);
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.tripped.store(true, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(max) = self.max_proposals {
            if self.used_proposals.fetch_add(1, Ordering::Relaxed) >= max {
                self.tripped.store(true, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(parent) = &self.parent {
            if !parent.admit_proposal() {
                self.tripped.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Whether the run was cut short: a chain was denied a proposal
    /// (sticky), the run was cancelled, or the deadline has passed.
    ///
    /// Deliberately *not* keyed on the proposal counter alone: a run whose
    /// chains completed using exactly `max_proposals` proposals finished,
    /// it was not interrupted — any phase that still needs chain work will
    /// be denied its first proposal and trip the flag then.
    pub fn exhausted(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
            || self.cancel.is_cancelled()
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.parent.as_ref().is_some_and(|p| p.exhausted())
    }
}

/// Per-run options beyond the target itself, consumed by
/// [`Session::run_request`]: an existing test suite to reuse, a warm-start
/// program to seed the synthesis chains, an external [`BudgetClock`]
/// (e.g. a batch-wide clock shared across jobs), and a target index for
/// tagging observer events.
///
/// ```
/// use stoke::RunRequest;
/// let req = RunRequest::new().for_target(3);
/// # let _ = req;
/// ```
#[derive(Default)]
pub struct RunRequest<'a> {
    suite: Option<TestSuite>,
    warm_start: Option<&'a Program>,
    clock: Option<&'a BudgetClock>,
    target: usize,
}

impl<'a> RunRequest<'a> {
    /// A request with no options: equivalent to [`Session::run`].
    pub fn new() -> RunRequest<'a> {
        RunRequest::default()
    }

    /// Reuse an existing test suite (the `Testcases` phase is skipped).
    pub fn with_suite(mut self, suite: TestSuite) -> RunRequest<'a> {
        self.suite = Some(suite);
        self
    }

    /// Seed every synthesis chain from `program` instead of a random
    /// starting point (§4.4's "code sequence believed to be similar to the
    /// target" — e.g. a cached rewrite of a near-identical submission).
    /// The chains still diverge through their per-chain seeds.
    pub fn warm_start(mut self, program: &'a Program) -> RunRequest<'a> {
        self.warm_start = Some(program);
        self
    }

    /// Charge the run to an already-running clock instead of starting a
    /// fresh one from the session's budget.
    pub fn under_clock(mut self, clock: &'a BudgetClock) -> RunRequest<'a> {
        self.clock = Some(clock);
        self
    }

    /// Tag observer events with a target/job index (`0` by default).
    pub fn for_target(mut self, target: usize) -> RunRequest<'a> {
        self.target = target;
        self
    }
}

/// Per-chain execution context threaded into
/// [`Chain::run_controlled`](crate::mcmc::Chain::run_controlled): which
/// pipeline phase and chain the run belongs to, the observer to report
/// progress to, and the budget clock to consult before each proposal.
pub struct ChainControl<'a> {
    target: usize,
    phase: Phase,
    chain: usize,
    observer: &'a dyn SearchObserver,
    clock: Option<&'a BudgetClock>,
    progress_every: u64,
}

impl<'a> ChainControl<'a> {
    /// A control for one chain of `phase`, reporting to `observer`.
    pub fn new(phase: Phase, chain: usize, observer: &'a dyn SearchObserver) -> ChainControl<'a> {
        ChainControl {
            target: 0,
            phase,
            chain,
            observer,
            clock: None,
            progress_every: 0,
        }
    }

    /// No budget, no observer: the control used by the plain
    /// [`Chain::run`](crate::mcmc::Chain::run).
    pub fn unbounded() -> ChainControl<'static> {
        ChainControl::new(Phase::Synthesis, 0, &NULL_OBSERVER)
    }

    /// Tag progress reports with a batch target index.
    pub fn for_target(mut self, target: usize) -> ChainControl<'a> {
        self.target = target;
        self
    }

    /// Consult `clock` before each proposal (the preemption point).
    pub fn with_clock(mut self, clock: &'a BudgetClock) -> ChainControl<'a> {
        self.clock = Some(clock);
        self
    }

    /// Report progress to the observer every `n` proposals (`0` disables
    /// progress reports).
    pub fn with_progress_every(mut self, n: u64) -> ChainControl<'a> {
        self.progress_every = n;
        self
    }

    pub(crate) fn admit_proposal(&self) -> bool {
        self.clock.is_none_or(BudgetClock::admit_proposal)
    }

    pub(crate) fn maybe_report(
        &self,
        proposals: u64,
        make: impl FnOnce(usize, Phase, usize) -> ChainProgress,
    ) {
        if self.progress_every > 0 && proposals.is_multiple_of(self.progress_every) {
            self.observer
                .on_chain_progress(&make(self.target, self.phase, self.chain));
        }
    }

    pub(crate) fn report_end(
        &self,
        proposals: u64,
        accepted: u64,
        moves: MoveStats,
        eval: EvalStats,
    ) {
        self.observer.on_chain_end(&ChainStats {
            target: self.target,
            phase: self.phase,
            chain: self.chain,
            proposals,
            accepted,
            moves,
            eval,
        });
    }
}

/// The session-based driver for the full STOKE pipeline (Figure 9).
///
/// A session owns a validated-on-use [`Config`], an optional [`Budget`],
/// and an optional [`SearchObserver`]; it can run single targets
/// ([`Session::run`]) or whole workloads ([`Session::run_batch`]), and is
/// reusable: each run generates its own test suite and starts a fresh
/// budget clock (deadline and proposal counter). Cancellation is the
/// exception — a [`CancelToken`], once cancelled, stays cancelled for
/// every later run of the same session.
///
/// ```
/// use stoke::{Config, Session, TargetSpec};
/// use stoke_x86::{Gpr, Program};
///
/// let target: Program = "
///     movq rdi, rbx
///     movq rbx, rax
///     addq rsi, rax
/// ".parse().unwrap();
/// let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
/// let config = Config::builder()
///     .ell(8)
///     .num_testcases(8)
///     .threads(1)
///     .synthesis_iterations(1_000)
///     .optimization_iterations(5_000)
///     .build()
///     .unwrap();
/// let result = Session::new(config).run(&spec).unwrap();
/// assert!(result.speedup() >= 1.0);
/// ```
pub struct Session {
    config: Config,
    budget: Budget,
    observer: Option<Arc<dyn SearchObserver>>,
    verifier: Option<Arc<dyn Verifier>>,
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl Session {
    /// Create a session. The configuration is validated on each run (the
    /// struct's fields are still `pub`, so it can be mutated after
    /// construction).
    pub fn new(config: Config) -> Session {
        Session {
            config,
            budget: Budget::unlimited(),
            observer: None,
            verifier: None,
            metrics: None,
            trace: None,
        }
    }

    /// Bound the session's runs by `budget`.
    pub fn with_budget(mut self, budget: Budget) -> Session {
        self.budget = budget;
        self
    }

    /// Stream pipeline events to `observer`.
    pub fn with_observer(mut self, observer: Arc<dyn SearchObserver>) -> Session {
        self.observer = Some(observer);
        self
    }

    /// Record search metrics — per-phase wall time, proposals and
    /// acceptances split by move kind, evaluation-backend work, validator
    /// verdicts, search outcomes — into `registry`. The registry is shared:
    /// several sessions (or a whole service) can feed one registry, and
    /// callers export it with
    /// [`snapshot()`](stoke_obs::MetricsRegistry::snapshot) or
    /// [`render_text()`](stoke_obs::MetricsRegistry::render_text).
    ///
    /// Attaching metrics never changes search decisions: the instrumented
    /// callbacks draw no randomness and feed nothing back into the chains.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Session {
        self.metrics = Some(registry);
        self
    }

    /// Stream structured JSONL span/event records describing the run to
    /// `sink` (see [`stoke_obs::JsonlSink`] /
    /// [`stoke_obs::RingSink`]). Like metrics, tracing is passive and
    /// cannot perturb the search.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Session {
        self.trace = Some(sink);
        self
    }

    /// Verify surviving candidates with `verifier` instead of the default
    /// [`Cascade`] (test suite, then symbolic validation with
    /// counterexample feedback, then a re-test on the refined suite).
    pub fn with_verifier(mut self, verifier: Arc<dyn Verifier>) -> Session {
        self.verifier = Some(verifier);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The session's budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// A token that cancels this session's runs from any thread.
    /// Cancellation is permanent for the session (see [`CancelToken`]).
    pub fn cancel_token(&self) -> CancelToken {
        self.budget.cancel_token()
    }

    fn observer(&self) -> &dyn SearchObserver {
        match &self.observer {
            Some(o) => o.as_ref(),
            None => &NULL_OBSERVER,
        }
    }

    fn verifier(&self) -> &dyn Verifier {
        // An explicit with_verifier override wins; otherwise the config's
        // spec selects among the built-ins (or its own custom verifier).
        match &self.verifier {
            Some(v) => v.as_ref(),
            None => match &self.config.verifier {
                VerifierSpec::Cascade => &DEFAULT_VERIFIER,
                VerifierSpec::TestOnly => &TEST_ONLY_VERIFIER,
                VerifierSpec::Symbolic => &SYMBOLIC_VERIFIER,
                VerifierSpec::LeakageCascade => &LEAKAGE_VERIFIER,
                VerifierSpec::Custom(v) => v.as_ref(),
            },
        }
    }

    fn progress_every(&self) -> u64 {
        if self.observer.is_none() && self.metrics.is_none() && self.trace.is_none() {
            return 0;
        }
        // Aim for a handful of reports per chain without flooding slow
        // observers on long runs.
        (self
            .config
            .synthesis_iterations
            .max(self.config.optimization_iterations)
            / 8)
        .max(1)
    }

    /// Run the full pipeline on one target, generating test cases first
    /// (the instrumentation step of Figure 9).
    ///
    /// # Errors
    /// - [`StokeError::InvalidConfig`] if the configuration violates an
    ///   invariant;
    /// - [`StokeError::EmptyTarget`] if the target has no instructions;
    /// - [`StokeError::BudgetExhausted`] if the budget ran out first, with
    ///   the best partial result assembled from the work done so far.
    pub fn run(&self, spec: &TargetSpec) -> Result<StokeResult, StokeError> {
        self.run_request(spec, RunRequest::new())
    }

    /// Run the full pipeline on one target reusing an existing test suite
    /// (the `Testcases` phase is skipped).
    ///
    /// # Errors
    /// As for [`Session::run`].
    pub fn run_with_suite(
        &self,
        spec: &TargetSpec,
        suite: TestSuite,
    ) -> Result<StokeResult, StokeError> {
        self.run_request(spec, RunRequest::new().with_suite(suite))
    }

    /// Run the full pipeline on one target with explicit per-run options:
    /// a reused test suite, a warm-start program seeding the synthesis
    /// chains, an external budget clock, and an observer target index.
    /// See [`RunRequest`].
    ///
    /// # Errors
    /// As for [`Session::run`].
    pub fn run_request(
        &self,
        spec: &TargetSpec,
        request: RunRequest<'_>,
    ) -> Result<StokeResult, StokeError> {
        match request.clock {
            Some(clock) => self.run_target(
                spec,
                request.suite,
                request.warm_start,
                clock,
                request.target,
            ),
            None => {
                let clock = BudgetClock::start(&self.budget);
                self.run_target(
                    spec,
                    request.suite,
                    request.warm_start,
                    &clock,
                    request.target,
                )
            }
        }
    }

    /// Run the full pipeline on every target, scheduling them across the
    /// thread pool (`config.threads` targets in flight; each target then
    /// runs its own chains as configured). Results come back in input
    /// order, one `Result` per target, so one bad target does not sink the
    /// workload. The budget — including its wall clock, started once at
    /// the call — is shared by the whole batch.
    pub fn run_batch(&self, specs: &[TargetSpec]) -> Vec<Result<StokeResult, StokeError>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let clock = BudgetClock::start(&self.budget);
        let workers = self.config.threads.max(1).min(specs.len());
        if workers == 1 {
            return specs
                .iter()
                .enumerate()
                .map(|(i, spec)| self.run_target(spec, None, None, &clock, i))
                .collect();
        }
        let slots: Vec<Mutex<Option<Result<StokeResult, StokeError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let result = self.run_target(spec, None, None, &clock, i);
                    *slots[i].lock().expect("batch result lock") = Some(result);
                });
            }
        })
        .expect("crossbeam scope");
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch result lock")
                    .expect("every batch slot is filled")
            })
            .collect()
    }

    fn run_target(
        &self,
        spec: &TargetSpec,
        suite: Option<TestSuite>,
        warm_start: Option<&Program>,
        clock: &BudgetClock,
        target: usize,
    ) -> Result<StokeResult, StokeError> {
        let t0 = Instant::now();
        self.config.validate()?;
        if spec.program.is_empty() {
            return Err(StokeError::EmptyTarget);
        }
        // When metrics or tracing are attached, fan callbacks out to both
        // the caller's observer and a per-run telemetry adapter. Telemetry
        // is strictly passive — it draws no randomness and feeds nothing
        // back — so fixed-seed runs stay bit-identical with it attached.
        let telemetry;
        let tee;
        let observer: &dyn SearchObserver = if self.metrics.is_some() || self.trace.is_some() {
            telemetry = MetricsObserver::from_parts(self.metrics.clone(), self.trace.clone());
            tee = TeeObserver::new(self.observer(), &telemetry);
            &tee
        } else {
            self.observer()
        };
        let suite = match suite {
            Some(suite) => suite,
            None => {
                observer.on_phase_start(target, Phase::Testcases);
                generate_testcases(spec, self.config.num_testcases, self.config.seed)
            }
        };
        let mut run = TargetRun {
            config: &self.config,
            spec,
            suite,
            observer,
            verifier: self.verifier(),
            clock,
            target,
            warm_start,
            progress_every: self.progress_every(),
        };
        let mut out = run.pipeline();
        // Stamp the per-target wall clock on whichever way the run ended,
        // so batch callers see per-job cost and not just phase aggregates.
        let elapsed = t0.elapsed();
        match &mut out {
            Ok(result) => result.stats.total_time = elapsed,
            Err(StokeError::BudgetExhausted { partial }) => partial.stats.total_time = elapsed,
            Err(_) => {}
        }
        // Announce the end of the run (complete or budget-exhausted) after
        // the total time is stamped, so observers see final stats.
        match &out {
            Ok(result) => observer.on_search_end(target, result),
            Err(StokeError::BudgetExhausted { partial }) => observer.on_search_end(target, partial),
            Err(_) => {}
        }
        out
    }
}

/// One target's trip through the pipeline: the chains, the budget clock
/// and observer hooks, and the verification stage.
struct TargetRun<'a> {
    config: &'a Config,
    spec: &'a TargetSpec,
    suite: TestSuite,
    observer: &'a dyn SearchObserver,
    verifier: &'a dyn Verifier,
    clock: &'a BudgetClock,
    target: usize,
    warm_start: Option<&'a Program>,
    progress_every: u64,
}

impl TargetRun<'_> {
    fn make_cost_fn(&self) -> CostFn {
        CostFn::new(
            self.config.clone(),
            self.suite.clone(),
            self.spec.program.static_latency(),
        )
    }

    fn control(&self, phase: Phase, chain: usize) -> ChainControl<'_> {
        ChainControl::new(phase, chain, self.observer)
            .for_target(self.target)
            .with_clock(self.clock)
            .with_progress_every(self.progress_every)
    }

    /// Run one synthesis chain (§4.4: random starting point, correctness
    /// term only — unless the run carries a warm start, in which case every
    /// chain begins from that program and diverges through its seed).
    fn synthesis_chain(&self, seed: u64, iterations: u64, chain_idx: usize) -> ChainResult {
        let mut cost_fn = self.make_cost_fn();
        let mut chain = Chain::new(&mut cost_fn, seed, false);
        let start = match self.warm_start {
            Some(program) => Rewrite::from_program(program, self.config.ell),
            None => chain.proposer_mut().random_rewrite(),
        };
        chain.run_controlled(
            start,
            iterations,
            &self.control(Phase::Synthesis, chain_idx),
        )
    }

    /// Run one optimization chain (§4.4: starts from a code sequence known
    /// or believed to be equivalent to the target; both cost terms).
    fn optimization_chain(
        &self,
        start: &Program,
        seed: u64,
        iterations: u64,
        chain_idx: usize,
    ) -> ChainResult {
        let mut cost_fn = self.make_cost_fn();
        let mut chain = Chain::new(&mut cost_fn, seed, true);
        let start = Rewrite::from_program(start, self.config.ell);
        chain.run_controlled(
            start,
            iterations,
            &self.control(Phase::Optimization, chain_idx),
        )
    }

    /// Run synthesis on `threads` parallel chains and return every
    /// zero-cost rewrite found.
    fn parallel_synthesis(&self, stats: &mut SearchStats) -> Vec<Program> {
        let t0 = Instant::now();
        let threads = self.config.threads.max(1);
        let iterations = self.config.synthesis_iterations;
        let results: Vec<ChainResult> = if threads == 1 {
            vec![self.synthesis_chain(self.config.seed ^ 0xa5a5, iterations, 0)]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|i| {
                        let seed = self.config.seed ^ (0xa5a5 + i as u64 * 7919);
                        scope.spawn(move |_| self.synthesis_chain(seed, iterations, i))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("synthesis thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        };
        stats.synthesis_time += t0.elapsed();
        let mut found = Vec::new();
        for r in results {
            stats.synthesis_proposals += r.proposals;
            stats.testcases_run += r.testcases_run;
            stats.moves.merge(&r.moves);
            if r.best_cost == 0.0 {
                stats.synthesis_succeeded = true;
                found.push(r.best.to_program());
            }
        }
        found
    }

    /// Run optimization chains from each starting point in parallel and
    /// return the candidates sorted by cost (best first).
    fn parallel_optimization(
        &self,
        starts: &[Program],
        stats: &mut SearchStats,
    ) -> Vec<(Program, f64)> {
        let t0 = Instant::now();
        let iterations = self.config.optimization_iterations;
        let results: Vec<ChainResult> = if starts.len() <= 1 || self.config.threads <= 1 {
            starts
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    self.optimization_chain(s, self.config.seed ^ (17 + i as u64), iterations, i)
                })
                .collect()
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = starts
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let seed = self.config.seed ^ (17 + i as u64 * 104729);
                        scope.spawn(move |_| self.optimization_chain(s, seed, iterations, i))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("optimization thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        };
        stats.optimization_time += t0.elapsed();
        // Re-rank only candidates that passed every test case (`eq' == 0`),
        // as the paper does: a near-miss rewrite can undercut the target on
        // *total* cost, so a chain's overall best may be incorrect and would
        // then be discarded by validation, leaving nothing to re-rank.
        // Chains with no correct rewrite contribute their overall best only
        // when NO chain found a correct one — a cheap incorrect candidate
        // must not shrink the re-rank margin and starve correct candidates
        // from other chains.
        let mut candidates = Vec::new();
        let mut fallbacks = Vec::new();
        for r in results {
            stats.optimization_proposals += r.proposals;
            stats.testcases_run += r.testcases_run;
            stats.moves.merge(&r.moves);
            match r.best_correct {
                Some(b) => candidates.push((b.to_program(), r.best_correct_cost)),
                None => fallbacks.push((r.best.to_program(), r.best_cost)),
            }
        }
        if candidates.is_empty() {
            candidates = fallbacks;
        }
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates
    }

    /// Run the complete pipeline of Figure 9 and return the best verified
    /// rewrite, or [`StokeError::BudgetExhausted`] carrying the best
    /// partial result if the budget ran out mid-pipeline.
    fn pipeline(&mut self) -> Result<StokeResult, StokeError> {
        let mut stats = SearchStats::default();
        if self.clock.exhausted() {
            return Err(self.budget_exhausted(Vec::new(), stats));
        }
        // 1. Synthesis from random starting points.
        self.observer.on_phase_start(self.target, Phase::Synthesis);
        let synthesized = self.parallel_synthesis(&mut stats);
        if self.clock.exhausted() {
            // Synthesized rewrites are zero-cost, i.e. correct on every
            // test case run so far; rank them without the (unbounded)
            // symbolic stage.
            let candidates = synthesized.into_iter().map(|p| (p, 0.0)).collect();
            return Err(self.budget_exhausted(candidates, stats));
        }
        // 2. Optimization from the target and from every synthesized
        //    candidate (§4.4, §4.7: even when synthesis fails, optimization
        //    proceeds from the region occupied by the target).
        self.observer
            .on_phase_start(self.target, Phase::Optimization);
        let mut starts = vec![self.spec.program.clone()];
        starts.extend(synthesized);
        let candidates = self.parallel_optimization(&starts, &mut stats);
        if self.clock.exhausted() {
            return Err(self.budget_exhausted(candidates, stats));
        }

        // 3. Keep the candidates whose cost is within the re-rank margin of
        //    the best, verify them, and re-rank the survivors with the
        //    timing model (the paper's actual-runtime re-ranking).
        Ok(self.rerank(candidates, stats, true))
    }

    /// Wrap the partial result of an interrupted run. Validation is
    /// skipped — the symbolic stage is not preemptible and the budget is
    /// already gone — so surviving candidates are at most
    /// [`Verification::TestsOnly`].
    fn budget_exhausted(
        &mut self,
        candidates: Vec<(Program, f64)>,
        stats: SearchStats,
    ) -> StokeError {
        StokeError::BudgetExhausted {
            partial: Box::new(self.rerank(candidates, stats, false)),
        }
    }

    /// The re-rank stage: filter candidates to the margin window, hand
    /// each to the verifier (the session's configured one, or [`TestOnly`]
    /// when the budget ran out — the symbolic stage is not preemptible),
    /// and pick the fastest survivor under the timing model. Announces
    /// [`Phase::Validation`] itself so candidate/validation events are
    /// phase-scoped on the budget-exhausted path too.
    fn rerank(
        &mut self,
        candidates: Vec<(Program, f64)>,
        mut stats: SearchStats,
        symbolic: bool,
    ) -> StokeResult {
        self.observer.on_phase_start(self.target, Phase::Validation);
        let timing = TimingModel::default();
        let target_cycles = timing.cycles(&self.spec.program);
        let best_cost = candidates.first().map(|(_, c)| *c).unwrap_or(f64::INFINITY);
        let margin = best_cost.max(1.0) * self.config.rerank_margin;
        let verifier: &dyn Verifier = if symbolic {
            self.verifier
        } else {
            &TEST_ONLY_VERIFIER
        };
        let mut verified: Vec<(Program, u64, Verification)> = Vec::new();
        let mut testcase_clean: Vec<(Program, u64, Verification)> = Vec::new();
        for (program, cost) in candidates.into_iter().filter(|(_, c)| *c <= margin) {
            self.observer.on_candidate(self.target, &program, cost);
            let verdict = {
                let mut ctx = VerifyContext {
                    spec: self.spec,
                    suite: &mut self.suite,
                    config: self.config,
                    stats: &mut stats,
                    observer: self.observer,
                    target: self.target,
                };
                verifier.verify(&program, &mut ctx)
            };
            let cycles = timing.cycles(&program);
            match verdict.status {
                VerifyStatus::Proven => verified.push((program, cycles, Verification::Proven)),
                VerifyStatus::TestsPassed => {
                    testcase_clean.push((program, cycles, Verification::TestsOnly))
                }
                VerifyStatus::Refuted => {}
            }
        }
        verified.sort_by_key(|(_, cycles, _)| *cycles);
        testcase_clean.sort_by_key(|(_, cycles, _)| *cycles);

        let (rewrite, rewrite_cycles, verification) = verified
            .into_iter()
            .chain(testcase_clean)
            .next()
            .unwrap_or_else(|| {
                (
                    self.spec.program.clone(),
                    target_cycles,
                    Verification::TargetReturned,
                )
            });

        // Optionally strip statically dead instructions from the reported
        // rewrite (never from a returned target: it is the user's code).
        let (rewrite, rewrite_cycles) =
            if self.config.strip_dead_code && verification != Verification::TargetReturned {
                let stripped = self.strip_dead_code(rewrite);
                let cycles = timing.cycles(&stripped);
                (stripped, cycles)
            } else {
                (rewrite, rewrite_cycles)
            };

        StokeResult {
            target_latency: self.spec.program.static_latency(),
            rewrite_latency: rewrite.static_latency(),
            target_cycles,
            rewrite_cycles,
            rewrite,
            verification,
            stats,
        }
    }

    /// Remove instructions whose results cannot reach the live-out
    /// interface, iterating to a fixpoint (removing one instruction can
    /// kill the last use of another). Stores are never reported dead, so
    /// stripping cannot change the compared memory image; as a belt the
    /// stripped program is kept only if it still passes every test case.
    fn strip_dead_code(&self, program: Program) -> Program {
        let mut stripped = program.clone();
        loop {
            let instrs: Vec<&stoke_x86::Instruction> = stripped.iter().collect();
            let dead = stoke_analysis::dead_code_report(&instrs, &self.spec.live_out);
            if dead.is_empty() {
                break;
            }
            stripped = stripped
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead.contains(i))
                .map(|(_, instr)| instr.clone())
                .collect();
        }
        if stripped.len() == program.len() {
            return program;
        }
        let mut cost_fn = self.make_cost_fn();
        let instrs: Vec<_> = stripped.iter().cloned().collect();
        if cost_fn.eq_prime(&instrs) == 0 {
            stripped
        } else {
            program
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigBuilder;
    use crate::error::ConfigError;
    use crate::observer::{CollectingObserver, SearchEvent};
    use stoke_x86::Gpr;

    fn quick_config() -> Config {
        Config {
            ell: 8,
            num_testcases: 8,
            synthesis_iterations: 5_000,
            optimization_iterations: 20_000,
            threads: 1,
            ..Config::default()
        }
    }

    /// A deliberately clumsy target: rax = rdi + rsi computed through a
    /// pointless register shuffle (llvm -O0 flavour).
    fn clumsy_add() -> TargetSpec {
        let program: Program = "
            movq rdi, rbx
            movq rbx, rcx
            movq rcx, rax
            addq rsi, rax
            movq rax, rbx
            movq rbx, rax
        "
        .parse()
        .unwrap();
        TargetSpec::with_gprs(program, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
    }

    #[test]
    fn optimization_shortens_clumsy_target() {
        let session = Session::new(quick_config());
        let result = session.run(&clumsy_add()).expect("run succeeds");
        assert!(
            result.rewrite_latency <= result.target_latency,
            "rewrite ({}) must not be slower than target ({})",
            result.rewrite_latency,
            result.target_latency
        );
        assert!(result.speedup() >= 1.0);
        // Whatever came back must still be correct on fresh test cases.
        let fresh = generate_testcases(&clumsy_add(), 16, 999);
        let mut cf = CostFn::new(quick_config(), fresh, 0);
        let instrs: Vec<_> = result.rewrite.iter().cloned().collect();
        assert_eq!(
            cf.eq_prime(&instrs),
            0,
            "returned rewrite fails fresh test cases"
        );
    }

    #[test]
    fn strip_dead_code_removes_transitively_dead_instructions() {
        let spec = clumsy_add();
        let config = quick_config();
        let suite = generate_testcases(&spec, 8, config.seed);
        let clock = BudgetClock::start(&Budget::unlimited());
        let run = TargetRun {
            config: &config,
            spec: &spec,
            suite,
            observer: &NULL_OBSERVER,
            verifier: &DEFAULT_VERIFIER,
            clock: &clock,
            target: 0,
            warm_start: None,
            progress_every: 0,
        };
        // The rbx tail is dead: the second mov feeds only the third, and
        // neither reaches rax. Removing the third makes the second dead
        // too, so the strip must iterate to a fixpoint.
        let bloated: Program = "
            movq rdi, rax
            addq rsi, rax
            movq rax, rbx
            addq rdi, rbx
        "
        .parse()
        .unwrap();
        let minimal: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        assert_eq!(run.strip_dead_code(bloated), minimal);
        // An already-minimal program comes back untouched.
        assert_eq!(run.strip_dead_code(minimal.clone()), minimal);
    }

    #[test]
    fn strip_dead_code_config_keeps_results_correct_and_no_longer() {
        let spec = clumsy_add();
        let plain = Session::new(quick_config()).run(&spec).unwrap();
        let config = Config {
            strip_dead_code: true,
            ..quick_config()
        };
        let stripped = Session::new(config).run(&spec).unwrap();
        assert!(stripped.rewrite.len() <= plain.rewrite.len());
        let fresh = generate_testcases(&spec, 16, 31337);
        let mut cf = CostFn::new(quick_config(), fresh, 0);
        let instrs: Vec<_> = stripped.rewrite.iter().cloned().collect();
        assert_eq!(cf.eq_prime(&instrs), 0);
    }

    #[test]
    fn result_is_deterministic_for_fixed_seed() {
        let a = Session::new(quick_config()).run(&clumsy_add()).unwrap();
        let b = Session::new(quick_config()).run(&clumsy_add()).unwrap();
        assert_eq!(a.rewrite, b.rewrite);
    }

    #[test]
    fn validation_counterexample_refines_suite() {
        // Use a single test case so a wrong rewrite can slip through, then
        // check the default verifier caught it and added a counterexample.
        let config = Config {
            num_testcases: 1,
            ..quick_config()
        };
        let spec = clumsy_add();
        let mut suite = generate_testcases(&spec, 1, config.seed);
        let before = suite.len();
        let mut stats = SearchStats::default();
        let verifier = &DEFAULT_VERIFIER;
        // This rewrite is actually correct, so validation must succeed and
        // must not add counterexamples.
        let right: Program = "movq rdi, rax\naddq rsi, rax\naddq 0, rax".parse().unwrap();
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &NULL_OBSERVER,
            target: 0,
        };
        assert!(verifier.verify(&right, &mut ctx).accepted());
        assert_eq!(suite.len(), before);
        // A genuinely wrong rewrite produces a counterexample. (It is wrong
        // on *almost* every input, so the single generated test case
        // refutes it before the symbolic stage; verify it directly.)
        let broken: Program = "movq rdi, rax\naddq 1, rax".parse().unwrap();
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &NULL_OBSERVER,
            target: 0,
        };
        let verdict = crate::verifier::Symbolic.verify(&broken, &mut ctx);
        assert!(!verdict.accepted());
        assert_eq!(verdict.counterexamples.len(), 1);
        assert_eq!(suite.len(), before + 1);
        assert_eq!(stats.counterexamples, 1);
    }

    #[test]
    fn session_rejects_invalid_config() {
        let config = Config {
            threads: 0,
            ..quick_config()
        };
        match Session::new(config).run(&clumsy_add()) {
            Err(StokeError::InvalidConfig(ConfigError::ZeroThreads)) => {}
            other => panic!("expected InvalidConfig(ZeroThreads), got {other:?}"),
        }
    }

    #[test]
    fn session_rejects_empty_target() {
        let spec = TargetSpec::with_gprs(Program::new(), &[], &[Gpr::Rax]);
        assert!(matches!(
            Session::new(quick_config()).run(&spec),
            Err(StokeError::EmptyTarget)
        ));
    }

    #[test]
    fn wall_clock_budget_interrupts_synthesis() {
        // A synthesis budget far beyond what 50ms can evaluate: the
        // deadline must preempt the chain mid-phase and return a partial
        // result rather than running to completion.
        let config = ConfigBuilder::from_config(quick_config())
            .synthesis_iterations(u64::MAX / 2)
            .optimization_iterations(1_000)
            .build()
            .unwrap();
        let session = Session::new(config)
            .with_budget(Budget::unlimited().with_wall_clock(Duration::from_millis(50)));
        let t0 = Instant::now();
        let result = session.run(&clumsy_add());
        let elapsed = t0.elapsed();
        match result {
            Err(StokeError::BudgetExhausted { partial }) => {
                // The chain really started (proposals were evaluated) and
                // really stopped early (nowhere near the huge budget).
                assert!(partial.stats.synthesis_proposals > 0);
                assert!(partial.stats.synthesis_proposals < 1_000_000_000);
                // No symbolic stage ran on the partial path.
                assert_eq!(partial.stats.validations, 0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(30),
            "deadline did not preempt the chain (took {elapsed:?})"
        );
    }

    #[test]
    fn proposal_budget_interrupts_the_search() {
        let session =
            Session::new(quick_config()).with_budget(Budget::unlimited().with_max_proposals(500));
        match session.run(&clumsy_add()) {
            Err(StokeError::BudgetExhausted { partial }) => {
                let total =
                    partial.stats.synthesis_proposals + partial.stats.optimization_proposals;
                assert!(total <= 500, "budget overshot: {total} proposals");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_session_does_no_work() {
        let session = Session::new(quick_config());
        session.cancel_token().cancel();
        match session.run(&clumsy_add()) {
            Err(StokeError::BudgetExhausted { partial }) => {
                assert_eq!(partial.stats.synthesis_proposals, 0);
                assert_eq!(partial.verification, Verification::TargetReturned);
                assert_eq!(partial.rewrite, clumsy_add().program);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // Cancellation is documented as permanent: a second run of the
        // same session stays cancelled.
        assert!(matches!(
            session.run(&clumsy_add()),
            Err(StokeError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn observer_sees_phases_in_pipeline_order() {
        let observer = Arc::new(CollectingObserver::new());
        let session = Session::new(quick_config()).with_observer(observer.clone());
        session.run(&clumsy_add()).expect("run succeeds");
        assert_eq!(
            observer.phases(),
            vec![
                Phase::Testcases,
                Phase::Synthesis,
                Phase::Optimization,
                Phase::Validation
            ]
        );
        // The optimization phase produced at least one candidate event.
        assert!(observer
            .events()
            .iter()
            .any(|e| matches!(e, SearchEvent::Candidate { .. })));
        // Progress reports carry the right phase tags.
        for event in observer.events() {
            if let SearchEvent::Progress(p) = event {
                assert!(matches!(p.phase, Phase::Synthesis | Phase::Optimization));
                assert!(p.proposals <= p.iterations);
            }
        }
    }

    #[test]
    fn warm_start_reaches_synthesis_success_in_fewer_proposals() {
        // Cold search on the clumsy target vs the same search seeded with
        // the known-good two-instruction rewrite: the warm start is already
        // at eq' == 0, so synthesis ends orders of magnitude earlier.
        let spec = clumsy_add();
        let cold = Session::new(quick_config()).run(&spec).unwrap();
        assert!(cold.stats.synthesis_proposals > 0);
        let warm_seed: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let warm = Session::new(quick_config())
            .run_request(&spec, RunRequest::new().warm_start(&warm_seed))
            .unwrap();
        assert!(warm.stats.synthesis_succeeded);
        assert!(
            warm.stats.synthesis_proposals < cold.stats.synthesis_proposals,
            "warm start took {} synthesis proposals, cold start {}",
            warm.stats.synthesis_proposals,
            cold.stats.synthesis_proposals
        );
        // The returned rewrite is still correct on fresh test cases.
        let fresh = generate_testcases(&spec, 16, 424242);
        let mut cf = CostFn::new(quick_config(), fresh, 0);
        let instrs: Vec<_> = warm.rewrite.iter().cloned().collect();
        assert_eq!(cf.eq_prime(&instrs), 0);
    }

    #[test]
    fn nested_clock_charges_parent_and_stops_on_parent_exhaustion() {
        let parent = Arc::new(BudgetClock::start(
            &Budget::unlimited().with_max_proposals(10),
        ));
        let child = BudgetClock::start_with_parent(&Budget::unlimited(), parent.clone());
        let mut admitted = 0;
        while child.admit_proposal() {
            admitted += 1;
            assert!(admitted <= 11, "parent cap never tripped the child");
        }
        assert_eq!(admitted, 10);
        assert!(child.exhausted());
        assert!(parent.exhausted());
        // A sibling under the same parent is exhausted from the start.
        let sibling = BudgetClock::start_with_parent(&Budget::unlimited(), parent);
        assert!(sibling.exhausted());
        assert!(!sibling.admit_proposal());
    }

    #[test]
    fn run_batch_exposes_per_target_wall_clock_and_proposals() {
        let config = Config {
            threads: 2,
            synthesis_iterations: 1_000,
            optimization_iterations: 5_000,
            ..quick_config()
        };
        let results = Session::new(config).run_batch(&[clumsy_add(), clumsy_add()]);
        for result in results {
            let stats = &result.expect("batch target succeeds").stats;
            assert!(stats.total_time > Duration::ZERO);
            assert!(stats.total_proposals() > 0);
            assert_eq!(
                stats.total_proposals(),
                stats.synthesis_proposals + stats.optimization_proposals
            );
            // The per-target clock covers at least that target's own phase
            // time (phase timers of other targets may overlap; this one's
            // are contained in its own wall clock).
            assert!(stats.total_time >= stats.synthesis_time + stats.optimization_time);
        }
    }

    #[test]
    fn run_batch_returns_per_target_results_in_order() {
        let ok = clumsy_add();
        let empty = TargetSpec::with_gprs(Program::new(), &[], &[Gpr::Rax]);
        let config = Config {
            threads: 2,
            synthesis_iterations: 1_000,
            optimization_iterations: 5_000,
            ..quick_config()
        };
        let session = Session::new(config);
        let results = session.run_batch(&[ok.clone(), empty, ok]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(StokeError::EmptyTarget)));
        assert!(results[2].is_ok());
        // Both successful targets are the same spec, so their (seeded,
        // deterministic) results must agree regardless of scheduling.
        assert_eq!(
            results[0].as_ref().unwrap().rewrite,
            results[2].as_ref().unwrap().rewrite
        );
        assert!(session.run_batch(&[]).is_empty());
    }

    #[test]
    fn batch_observer_tags_events_with_target_indices() {
        let observer = Arc::new(CollectingObserver::new());
        let config = Config {
            synthesis_iterations: 500,
            optimization_iterations: 2_000,
            ..quick_config()
        };
        let session = Session::new(config).with_observer(observer.clone());
        session.run_batch(&[clumsy_add(), clumsy_add()]);
        let targets: std::collections::BTreeSet<usize> = observer
            .events()
            .iter()
            .filter_map(|e| match e {
                SearchEvent::PhaseStart { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(targets.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }
}
