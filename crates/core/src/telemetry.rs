//! The bridge between the search pipeline and `stoke-obs`:
//! [`MetricsObserver`] implements [`SearchObserver`] and translates
//! pipeline callbacks into registry updates and structured trace records.
//!
//! The adapter is strictly passive: it draws no randomness, feeds nothing
//! back into the chains, and therefore cannot perturb a fixed-seed search
//! (the `obs_integration` snapshot tests pin this down bit-for-bit).
//! Metric handles are registered once at construction; the callbacks only
//! touch atomics, plus one small mutex for per-target phase timing on the
//! (cold) phase-transition path.

use crate::mcmc::{MoveKind, MoveStats};
use crate::observer::{ChainProgress, ChainStats, Phase, SearchObserver, ValidationVerdict};
use crate::search::{StokeResult, Verification};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use stoke_obs::{Counter, Histogram, MetricsRegistry, TraceRecord, TraceSink, Value};

/// Label value for a pipeline phase.
fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Testcases => "testcases",
        Phase::Synthesis => "synthesis",
        Phase::Optimization => "optimization",
        Phase::Validation => "validation",
    }
}

fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Testcases => 0,
        Phase::Synthesis => 1,
        Phase::Optimization => 2,
        Phase::Validation => 3,
    }
}

/// Label value for a move kind.
fn move_name(kind: MoveKind) -> &'static str {
    match kind {
        MoveKind::Opcode => "opcode",
        MoveKind::Operand => "operand",
        MoveKind::Swap => "swap",
        MoveKind::Instruction => "instruction",
    }
}

fn verification_name(v: &Verification) -> &'static str {
    match v {
        Verification::Proven => "proven",
        Verification::TestsOnly => "tests_only",
        Verification::TargetReturned => "target_returned",
    }
}

/// Pre-registered metric handles, created once per adapter so the callback
/// hot path is pure atomics.
struct Handles {
    proposals: [Counter; 4],
    accepted: [Counter; 4],
    moves_proposed: [Counter; 4],
    moves_accepted: [Counter; 4],
    testcases: Counter,
    evaluations: Counter,
    early_terminations: Counter,
    instructions_skipped: Counter,
    checkpoint_restores: Counter,
    columns_reordered: Counter,
    candidates: Counter,
    validations_proven: Counter,
    validations_refuted: Counter,
    counterexamples: Counter,
    leakage_rejections: Counter,
    searches: [Counter; 3],
    phase_seconds: [Histogram; 4],
    search_seconds: Histogram,
}

impl Handles {
    fn new(registry: &MetricsRegistry) -> Handles {
        let phase_counter = |family: &str| {
            [
                Phase::Testcases,
                Phase::Synthesis,
                Phase::Optimization,
                Phase::Validation,
            ]
            .map(|p| registry.counter_with(family, &[("phase", phase_name(p))]))
        };
        let move_counter = |family: &str| {
            MoveStats::KINDS.map(|k| registry.counter_with(family, &[("kind", move_name(k))]))
        };
        let duration_bounds = [0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];
        Handles {
            proposals: phase_counter("stoke_proposals_total"),
            accepted: phase_counter("stoke_accepted_total"),
            moves_proposed: move_counter("stoke_moves_total"),
            moves_accepted: move_counter("stoke_move_accepted_total"),
            testcases: registry.counter("stoke_testcases_total"),
            evaluations: registry.counter("stoke_evaluations_total"),
            early_terminations: registry.counter("stoke_early_terminations_total"),
            instructions_skipped: registry.counter("stoke_instructions_skipped_total"),
            checkpoint_restores: registry.counter("stoke_checkpoint_restores_total"),
            columns_reordered: registry.counter("stoke_columns_reordered_total"),
            candidates: registry.counter("stoke_candidates_total"),
            validations_proven: registry
                .counter_with("stoke_validations_total", &[("verdict", "proven")]),
            validations_refuted: registry
                .counter_with("stoke_validations_total", &[("verdict", "refuted")]),
            counterexamples: registry.counter("stoke_counterexamples_total"),
            leakage_rejections: registry.counter("stoke_leakage_rejections_total"),
            searches: [
                registry.counter_with("stoke_searches_total", &[("verification", "proven")]),
                registry.counter_with("stoke_searches_total", &[("verification", "tests_only")]),
                registry.counter_with(
                    "stoke_searches_total",
                    &[("verification", "target_returned")],
                ),
            ],
            phase_seconds: [
                Phase::Testcases,
                Phase::Synthesis,
                Phase::Optimization,
                Phase::Validation,
            ]
            .map(|p| {
                registry.histogram_with(
                    "stoke_phase_seconds",
                    &[("phase", phase_name(p))],
                    &duration_bounds,
                )
            }),
            search_seconds: registry.histogram("stoke_search_seconds", &duration_bounds),
        }
    }
}

/// A [`SearchObserver`] that records pipeline activity into a
/// [`MetricsRegistry`] and/or a [`TraceSink`].
///
/// [`Session::with_metrics`](crate::Session::with_metrics) and
/// [`Session::with_trace`](crate::Session::with_trace) install one of these
/// automatically; construct one directly to instrument hand-driven chains
/// or to compose with other observers via
/// [`TeeObserver`](crate::observer::TeeObserver).
pub struct MetricsObserver {
    trace: Option<Arc<dyn TraceSink>>,
    handles: Option<Handles>,
    /// Per-target currently open phase span, for wall-time accounting.
    /// Only touched on phase transitions and search end — never on the
    /// per-proposal path.
    open_phase: Mutex<HashMap<usize, (Phase, Instant)>>,
}

impl MetricsObserver {
    /// An adapter recording metrics into `registry`.
    pub fn new(registry: &MetricsRegistry) -> MetricsObserver {
        MetricsObserver {
            trace: None,
            handles: Some(Handles::new(registry)),
            open_phase: Mutex::new(HashMap::new()),
        }
    }

    /// Also stream structured trace records to `sink`.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> MetricsObserver {
        self.trace = Some(sink);
        self
    }

    pub(crate) fn from_parts(
        metrics: Option<Arc<MetricsRegistry>>,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> MetricsObserver {
        MetricsObserver {
            trace,
            handles: metrics.map(|registry| Handles::new(&registry)),
            open_phase: Mutex::new(HashMap::new()),
        }
    }

    fn emit(&self, record: TraceRecord) {
        if let Some(sink) = &self.trace {
            sink.record(record);
        }
    }

    /// Close the open phase span for `target` (if any), observing its wall
    /// time and emitting the span-end record.
    fn close_phase(&self, target: usize, open: &mut HashMap<usize, (Phase, Instant)>) {
        if let Some((phase, since)) = open.remove(&target) {
            let elapsed = since.elapsed();
            if let Some(handles) = &self.handles {
                handles.phase_seconds[phase_index(phase)].observe(elapsed.as_secs_f64());
            }
            self.emit(TraceRecord::SpanEnd {
                name: format!("phase:{}", phase_name(phase)),
                target: target as u64,
                micros: elapsed.as_micros() as u64,
            });
        }
    }
}

impl SearchObserver for MetricsObserver {
    fn on_phase_start(&self, target: usize, phase: Phase) {
        let mut open = self.open_phase.lock().expect("telemetry lock");
        self.close_phase(target, &mut open);
        open.insert(target, (phase, Instant::now()));
        self.emit(TraceRecord::SpanStart {
            name: format!("phase:{}", phase_name(phase)),
            target: target as u64,
        });
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        // Progress snapshots carry the cost-over-time signal (Figure 10);
        // they go to the trace only — per-chain gauges would have unbounded
        // cardinality in the registry.
        self.emit(TraceRecord::Event {
            name: "progress".into(),
            target: progress.target as u64,
            fields: vec![
                (
                    "phase".into(),
                    Value::Str(phase_name(progress.phase).into()),
                ),
                ("chain".into(), Value::U64(progress.chain as u64)),
                ("proposals".into(), Value::U64(progress.proposals)),
                ("cost".into(), Value::F64(progress.current_cost)),
                ("correctness".into(), Value::F64(progress.correctness)),
                ("performance".into(), Value::F64(progress.performance)),
                ("best_cost".into(), Value::F64(progress.best_cost)),
            ],
        });
    }

    fn on_candidate(&self, target: usize, candidate: &stoke_x86::Program, cost: f64) {
        if let Some(handles) = &self.handles {
            handles.candidates.inc();
        }
        self.emit(TraceRecord::Event {
            name: "candidate".into(),
            target: target as u64,
            fields: vec![
                ("instructions".into(), Value::U64(candidate.len() as u64)),
                ("cost".into(), Value::F64(cost)),
            ],
        });
    }

    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        let name = match verdict {
            ValidationVerdict::Proven => "proven",
            ValidationVerdict::Refuted => "refuted",
        };
        if let Some(handles) = &self.handles {
            match verdict {
                ValidationVerdict::Proven => handles.validations_proven.inc(),
                ValidationVerdict::Refuted => handles.validations_refuted.inc(),
            }
        }
        self.emit(TraceRecord::Event {
            name: "validation".into(),
            target: target as u64,
            fields: vec![("verdict".into(), Value::Str(name.into()))],
        });
    }

    fn on_chain_end(&self, stats: &ChainStats) {
        if let Some(handles) = &self.handles {
            let phase = phase_index(stats.phase);
            handles.proposals[phase].add(stats.proposals);
            handles.accepted[phase].add(stats.accepted);
            for (i, kind) in MoveStats::KINDS.into_iter().enumerate() {
                handles.moves_proposed[i].add(stats.moves.proposed(kind));
                handles.moves_accepted[i].add(stats.moves.accepted(kind));
            }
            handles.testcases.add(stats.eval.testcases_run);
            handles.evaluations.add(stats.eval.evaluations);
            handles
                .early_terminations
                .add(stats.eval.early_terminations);
            handles
                .instructions_skipped
                .add(stats.eval.instructions_skipped);
            handles
                .checkpoint_restores
                .add(stats.eval.checkpoint_restores);
            handles.columns_reordered.add(stats.eval.columns_reordered);
        }
        self.emit(TraceRecord::Event {
            name: "chain_end".into(),
            target: stats.target as u64,
            fields: vec![
                ("phase".into(), Value::Str(phase_name(stats.phase).into())),
                ("chain".into(), Value::U64(stats.chain as u64)),
                ("proposals".into(), Value::U64(stats.proposals)),
                ("accepted".into(), Value::U64(stats.accepted)),
                ("testcases_run".into(), Value::U64(stats.eval.testcases_run)),
                (
                    "early_terminations".into(),
                    Value::U64(stats.eval.early_terminations),
                ),
            ],
        });
    }

    fn on_search_end(&self, target: usize, result: &StokeResult) {
        {
            let mut open = self.open_phase.lock().expect("telemetry lock");
            self.close_phase(target, &mut open);
        }
        if let Some(handles) = &self.handles {
            let which = match result.verification {
                Verification::Proven => 0,
                Verification::TestsOnly => 1,
                Verification::TargetReturned => 2,
            };
            handles.searches[which].inc();
            handles
                .search_seconds
                .observe(result.stats.total_time.as_secs_f64());
            handles.counterexamples.add(result.stats.counterexamples);
            handles
                .leakage_rejections
                .add(result.stats.leakage_rejections);
        }
        self.emit(TraceRecord::Event {
            name: "search_end".into(),
            target: target as u64,
            fields: vec![
                (
                    "verification".into(),
                    Value::Str(verification_name(&result.verification).into()),
                ),
                ("speedup".into(), Value::F64(result.speedup())),
                (
                    "proposals".into(),
                    Value::U64(result.stats.total_proposals()),
                ),
                (
                    "total_us".into(),
                    Value::U64(result.stats.total_time.as_micros() as u64),
                ),
            ],
        });
        if let Some(sink) = &self.trace {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_obs::RingSink;

    #[test]
    fn phase_transitions_observe_wall_time_and_spans() {
        let registry = MetricsRegistry::new();
        let ring = Arc::new(RingSink::new(64));
        let obs = MetricsObserver::new(&registry).with_trace(ring.clone());
        obs.on_phase_start(0, Phase::Synthesis);
        obs.on_phase_start(0, Phase::Optimization);
        let result = StokeResult {
            rewrite: "movq rdi, rax".parse().unwrap(),
            verification: Verification::TargetReturned,
            target_latency: 1,
            rewrite_latency: 1,
            target_cycles: 1,
            rewrite_cycles: 1,
            stats: Default::default(),
        };
        obs.on_search_end(0, &result);
        let snap = registry.snapshot();
        // Both phases were closed (synthesis by the transition, optimization
        // by search end), each observing one histogram sample.
        let synth = snap
            .histogram("stoke_phase_seconds{phase=\"synthesis\"}")
            .unwrap();
        let opt = snap
            .histogram("stoke_phase_seconds{phase=\"optimization\"}")
            .unwrap();
        assert_eq!(synth.count, 1);
        assert_eq!(opt.count, 1);
        assert_eq!(
            snap.counter("stoke_searches_total{verification=\"target_returned\"}"),
            1
        );
        // Trace saw two span starts, two span ends, one event.
        let records = ring.records();
        let starts = records
            .iter()
            .filter(|(_, r)| matches!(r, TraceRecord::SpanStart { .. }))
            .count();
        let ends = records
            .iter()
            .filter(|(_, r)| matches!(r, TraceRecord::SpanEnd { .. }))
            .count();
        assert_eq!(starts, 2);
        assert_eq!(ends, 2);
    }

    #[test]
    fn chain_end_accumulates_per_move_counters() {
        let registry = MetricsRegistry::new();
        let obs = MetricsObserver::new(&registry);
        let mut moves = MoveStats::default();
        moves.record(MoveKind::Swap, true);
        moves.record(MoveKind::Swap, false);
        moves.record(MoveKind::Opcode, true);
        obs.on_chain_end(&ChainStats {
            target: 0,
            phase: Phase::Optimization,
            chain: 0,
            proposals: 3,
            accepted: 2,
            moves,
            eval: crate::cost::EvalStats {
                testcases_run: 24,
                evaluations: 3,
                early_terminations: 1,
                ..Default::default()
            },
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("stoke_proposals_total{phase=\"optimization\"}"),
            3
        );
        assert_eq!(snap.counter("stoke_moves_total{kind=\"swap\"}"), 2);
        assert_eq!(snap.counter("stoke_move_accepted_total{kind=\"swap\"}"), 1);
        assert_eq!(snap.counter("stoke_moves_total{kind=\"opcode\"}"), 1);
        assert_eq!(snap.counter("stoke_testcases_total"), 24);
        assert_eq!(snap.counter("stoke_early_terminations_total"), 1);
    }
}
