//! Observation hooks for the search driver: the [`SearchObserver`] trait
//! lets callers stream per-phase progress out of a running
//! [`Session`](crate::driver::Session) — phase transitions, periodic chain
//! progress, candidates entering the re-rank stage, and validation
//! verdicts — without blocking the search threads.

use crate::cost::EvalStats;
use crate::mcmc::MoveStats;
use crate::search::StokeResult;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use stoke_x86::Program;

/// A stage of the Figure 9 pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Test-case generation (the instrumentation step).
    Testcases,
    /// Parallel MCMC synthesis from random starting points.
    Synthesis,
    /// Parallel MCMC optimization from the target and every synthesized
    /// candidate.
    Optimization,
    /// Symbolic validation and timing-model re-ranking of the lowest-cost
    /// candidates.
    Validation,
}

/// A periodic progress report from one MCMC chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainProgress {
    /// Index of the target within the batch (`0` for single-target runs).
    pub target: usize,
    /// The pipeline phase the chain belongs to.
    pub phase: Phase,
    /// Index of the chain within its phase.
    pub chain: usize,
    /// Proposals evaluated by this chain so far.
    pub proposals: u64,
    /// The chain's per-phase proposal budget.
    pub iterations: u64,
    /// Cost of the chain's current rewrite.
    pub current_cost: f64,
    /// Correctness term (`eq'`) of the current rewrite's cost breakdown.
    pub correctness: f64,
    /// Performance term of the current rewrite's cost breakdown.
    pub performance: f64,
    /// Lowest cost the chain has seen.
    pub best_cost: f64,
    /// Cumulative instruction steps the incremental backend skipped by
    /// resuming from prefix checkpoints (see
    /// [`EvalStats::instructions_skipped`](crate::cost::EvalStats::instructions_skipped));
    /// 0 for the other backends.
    pub instructions_skipped: u64,
    /// Cumulative evaluations served from a prefix checkpoint; 0 for the
    /// other backends.
    pub checkpoint_restores: u64,
    /// Cumulative adaptive test-case reorder passes; 0 unless the
    /// incremental backend runs with a non-zero
    /// [`reorder_interval`](crate::config::Config::reorder_interval).
    pub columns_reordered: u64,
}

/// Final accounting for one finished MCMC chain, reported through
/// [`SearchObserver::on_chain_end`]. Unlike the periodic [`ChainProgress`]
/// snapshots, the evaluation counters here are per-chain deltas rather than
/// cumulative cost-function totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainStats {
    /// Index of the target within the batch (`0` for single-target runs).
    pub target: usize,
    /// The pipeline phase the chain belonged to.
    pub phase: Phase,
    /// Index of the chain within its phase.
    pub chain: usize,
    /// Proposals the chain evaluated.
    pub proposals: u64,
    /// Proposals the chain accepted.
    pub accepted: u64,
    /// Proposal and acceptance counts split by move kind.
    pub moves: MoveStats,
    /// Evaluation-backend work this chain performed (test cases executed,
    /// early terminations, checkpoint restores, ...).
    pub eval: EvalStats,
}

/// The verdict of one symbolic validation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationVerdict {
    /// The candidate was proven equivalent to the target.
    Proven,
    /// The validator produced a counterexample, which was added to the
    /// test suite (Equation 12's refinement).
    Refuted,
}

/// Callbacks invoked by a [`Session`](crate::driver::Session) as the
/// pipeline advances.
///
/// Every method has a no-op default, so implementors override only the
/// events they care about. Observers are shared across the search threads
/// and called concurrently, hence the `Send + Sync` bound; implementations
/// should return quickly to avoid stalling the chains.
pub trait SearchObserver: Send + Sync {
    /// A pipeline phase is starting for target `target`.
    fn on_phase_start(&self, target: usize, phase: Phase) {
        let _ = (target, phase);
    }

    /// Periodic progress from one chain (cadence controlled by the
    /// session).
    fn on_chain_progress(&self, progress: &ChainProgress) {
        let _ = progress;
    }

    /// A candidate rewrite entered the re-rank stage with the given search
    /// cost.
    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        let _ = (target, candidate, cost);
    }

    /// A symbolic validation query finished.
    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        let _ = (target, verdict);
    }

    /// One MCMC chain finished, with its final per-chain accounting.
    fn on_chain_end(&self, stats: &ChainStats) {
        let _ = stats;
    }

    /// The whole pipeline finished for `target`. Fired for complete runs
    /// and for the partial result of a budget-exhausted run, after
    /// [`SearchStats::total_time`](crate::SearchStats::total_time) is
    /// stamped.
    fn on_search_end(&self, target: usize, result: &StokeResult) {
        let _ = (target, result);
    }
}

/// Fans every callback out to two observers, in order. Used by the session
/// driver to run a caller's observer alongside the metrics/trace adapter,
/// and available to callers with the same need.
pub struct TeeObserver<'a> {
    first: &'a dyn SearchObserver,
    second: &'a dyn SearchObserver,
}

impl<'a> TeeObserver<'a> {
    /// Combine two observers; `first` receives every callback before
    /// `second`.
    pub fn new(first: &'a dyn SearchObserver, second: &'a dyn SearchObserver) -> TeeObserver<'a> {
        TeeObserver { first, second }
    }
}

impl SearchObserver for TeeObserver<'_> {
    fn on_phase_start(&self, target: usize, phase: Phase) {
        self.first.on_phase_start(target, phase);
        self.second.on_phase_start(target, phase);
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        self.first.on_chain_progress(progress);
        self.second.on_chain_progress(progress);
    }

    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        self.first.on_candidate(target, candidate, cost);
        self.second.on_candidate(target, candidate, cost);
    }

    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        self.first.on_validation(target, verdict);
        self.second.on_validation(target, verdict);
    }

    fn on_chain_end(&self, stats: &ChainStats) {
        self.first.on_chain_end(stats);
        self.second.on_chain_end(stats);
    }

    fn on_search_end(&self, target: usize, result: &StokeResult) {
        self.first.on_search_end(target, result);
        self.second.on_search_end(target, result);
    }
}

/// The do-nothing observer used when a session has no explicit observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {}

/// One recorded observer callback (see [`CollectingObserver`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// `on_phase_start` fired.
    PhaseStart {
        /// Batch index of the target.
        target: usize,
        /// The phase that started.
        phase: Phase,
    },
    /// `on_chain_progress` fired.
    Progress(ChainProgress),
    /// `on_candidate` fired.
    Candidate {
        /// Batch index of the target.
        target: usize,
        /// Number of instructions in the candidate.
        instructions: usize,
        /// The candidate's search cost.
        cost: f64,
    },
    /// `on_validation` fired.
    Validation {
        /// Batch index of the target.
        target: usize,
        /// The validator's verdict.
        verdict: ValidationVerdict,
    },
    /// `on_chain_end` fired.
    ChainEnd(ChainStats),
}

/// An observer that records every event in order, for tests and for
/// streaming progress out of long runs.
///
/// The event log lives behind an internal `Arc`, so the collector is
/// `Clone` and cheap to hand to each of a service's worker threads —
/// every clone appends to (and reads) the same log. Events are recorded
/// in lock-acquisition order, which for a single job matches callback
/// order; concurrent jobs interleave, and readers separate them by the
/// `target` index carried on every event.
///
/// By default the log is unbounded. Long-running producers should use
/// [`CollectingObserver::with_capacity`] to cap memory: once full, the
/// oldest event is discarded per arrival and counted in
/// [`CollectingObserver::dropped`].
#[derive(Debug, Clone, Default)]
pub struct CollectingObserver {
    log: Arc<Mutex<EventLog>>,
}

#[derive(Debug, Default)]
struct EventLog {
    events: VecDeque<SearchEvent>,
    /// Maximum retained events; 0 means unbounded.
    capacity: usize,
    dropped: u64,
}

impl CollectingObserver {
    /// A fresh, empty, unbounded collector.
    pub fn new() -> CollectingObserver {
        CollectingObserver::default()
    }

    /// A collector retaining at most `capacity` events (min 1): when full,
    /// each new event evicts the oldest and bumps the dropped counter.
    pub fn with_capacity(capacity: usize) -> CollectingObserver {
        CollectingObserver {
            log: Arc::new(Mutex::new(EventLog {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// A snapshot of every retained event, in arrival order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.log
            .lock()
            .expect("observer lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Remove and return every retained event (used to stream progress
    /// between runs without re-cloning an ever-growing log).
    pub fn drain(&self) -> Vec<SearchEvent> {
        self.log
            .lock()
            .expect("observer lock")
            .events
            .drain(..)
            .collect()
    }

    /// Number of events discarded because the log was at capacity.
    pub fn dropped(&self) -> u64 {
        self.log.lock().expect("observer lock").dropped
    }

    /// The phase-start events only, in arrival order.
    pub fn phases(&self) -> Vec<Phase> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                SearchEvent::PhaseStart { phase, .. } => Some(phase),
                _ => None,
            })
            .collect()
    }

    fn push(&self, event: SearchEvent) {
        let mut log = self.log.lock().expect("observer lock");
        if log.capacity > 0 && log.events.len() == log.capacity {
            log.events.pop_front();
            log.dropped += 1;
        }
        log.events.push_back(event);
    }
}

impl SearchObserver for CollectingObserver {
    fn on_phase_start(&self, target: usize, phase: Phase) {
        self.push(SearchEvent::PhaseStart { target, phase });
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        self.push(SearchEvent::Progress(*progress));
    }

    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        self.push(SearchEvent::Candidate {
            target,
            instructions: candidate.len(),
            cost,
        });
    }

    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        self.push(SearchEvent::Validation { target, verdict });
    }

    fn on_chain_end(&self, stats: &ChainStats) {
        self.push(SearchEvent::ChainEnd(*stats));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_observer_records_in_order() {
        let obs = CollectingObserver::new();
        obs.on_phase_start(0, Phase::Synthesis);
        obs.on_phase_start(0, Phase::Optimization);
        obs.on_validation(0, ValidationVerdict::Proven);
        assert_eq!(obs.phases(), vec![Phase::Synthesis, Phase::Optimization]);
        assert_eq!(obs.events().len(), 3);
        assert_eq!(obs.drain().len(), 3);
        assert!(obs.events().is_empty());
    }

    #[test]
    fn clones_share_one_event_log() {
        let obs = CollectingObserver::new();
        let clone = obs.clone();
        obs.on_phase_start(0, Phase::Synthesis);
        clone.on_phase_start(1, Phase::Synthesis);
        assert_eq!(obs.events().len(), 2);
        assert_eq!(clone.events().len(), 2);
        clone.drain();
        assert!(obs.events().is_empty());
    }

    #[test]
    fn concurrent_jobs_interleave_but_stay_ordered_per_target() {
        // Two "jobs" hammer one shared collector from separate threads;
        // the global log may interleave arbitrarily, but filtering by
        // target index must recover each job's callback order exactly.
        let obs = CollectingObserver::new();
        std::thread::scope(|scope| {
            for target in 0..2usize {
                let obs = obs.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        obs.on_phase_start(target, Phase::Synthesis);
                        obs.on_chain_progress(&ChainProgress {
                            target,
                            phase: Phase::Synthesis,
                            chain: 0,
                            proposals: i,
                            iterations: 100,
                            current_cost: 0.0,
                            correctness: 0.0,
                            performance: 0.0,
                            best_cost: 0.0,
                            instructions_skipped: 0,
                            checkpoint_restores: 0,
                            columns_reordered: 0,
                        });
                    }
                });
            }
        });
        let events = obs.events();
        assert_eq!(events.len(), 400);
        for target in 0..2usize {
            let mut expect_progress = false;
            let mut next_proposals = 0u64;
            let mut seen = 0;
            for event in &events {
                match event {
                    SearchEvent::PhaseStart { target: t, .. } if *t == target => {
                        assert!(!expect_progress, "job {target} events out of order");
                        expect_progress = true;
                        seen += 1;
                    }
                    SearchEvent::Progress(p) if p.target == target => {
                        assert!(expect_progress, "job {target} events out of order");
                        assert_eq!(p.proposals, next_proposals);
                        expect_progress = false;
                        next_proposals += 1;
                        seen += 1;
                    }
                    _ => {}
                }
            }
            assert_eq!(seen, 200);
        }
    }

    #[test]
    fn capped_collector_drops_oldest_and_counts() {
        let obs = CollectingObserver::with_capacity(3);
        for i in 0..5usize {
            obs.on_phase_start(i, Phase::Synthesis);
        }
        assert_eq!(obs.dropped(), 2);
        let events = obs.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            SearchEvent::PhaseStart { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected event {other:?}"),
        }
        // Draining resets the retained log but keeps the dropped count.
        assert_eq!(obs.drain().len(), 3);
        assert!(obs.events().is_empty());
        assert_eq!(obs.dropped(), 2);
    }

    #[test]
    fn tee_observer_forwards_to_both() {
        let a = CollectingObserver::new();
        let b = CollectingObserver::new();
        let tee = TeeObserver::new(&a, &b);
        tee.on_phase_start(0, Phase::Synthesis);
        tee.on_validation(0, ValidationVerdict::Proven);
        tee.on_chain_end(&ChainStats {
            target: 0,
            phase: Phase::Synthesis,
            chain: 1,
            proposals: 10,
            accepted: 4,
            moves: MoveStats::default(),
            eval: EvalStats::default(),
        });
        assert_eq!(a.events().len(), 3);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn null_observer_ignores_everything() {
        let obs = NullObserver;
        obs.on_phase_start(0, Phase::Testcases);
        let p: Program = "movq rdi, rax".parse().unwrap();
        obs.on_candidate(0, &p, 1.0);
    }
}
