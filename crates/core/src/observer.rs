//! Observation hooks for the search driver: the [`SearchObserver`] trait
//! lets callers stream per-phase progress out of a running
//! [`Session`](crate::driver::Session) — phase transitions, periodic chain
//! progress, candidates entering the re-rank stage, and validation
//! verdicts — without blocking the search threads.

use std::sync::{Arc, Mutex};
use stoke_x86::Program;

/// A stage of the Figure 9 pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Test-case generation (the instrumentation step).
    Testcases,
    /// Parallel MCMC synthesis from random starting points.
    Synthesis,
    /// Parallel MCMC optimization from the target and every synthesized
    /// candidate.
    Optimization,
    /// Symbolic validation and timing-model re-ranking of the lowest-cost
    /// candidates.
    Validation,
}

/// A periodic progress report from one MCMC chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainProgress {
    /// Index of the target within the batch (`0` for single-target runs).
    pub target: usize,
    /// The pipeline phase the chain belongs to.
    pub phase: Phase,
    /// Index of the chain within its phase.
    pub chain: usize,
    /// Proposals evaluated by this chain so far.
    pub proposals: u64,
    /// The chain's per-phase proposal budget.
    pub iterations: u64,
    /// Cost of the chain's current rewrite.
    pub current_cost: f64,
    /// Correctness term (`eq'`) of the current rewrite's cost breakdown.
    pub correctness: f64,
    /// Performance term of the current rewrite's cost breakdown.
    pub performance: f64,
    /// Lowest cost the chain has seen.
    pub best_cost: f64,
    /// Cumulative instruction steps the incremental backend skipped by
    /// resuming from prefix checkpoints (see
    /// [`EvalStats::instructions_skipped`](crate::cost::EvalStats::instructions_skipped));
    /// 0 for the other backends.
    pub instructions_skipped: u64,
    /// Cumulative evaluations served from a prefix checkpoint; 0 for the
    /// other backends.
    pub checkpoint_restores: u64,
    /// Cumulative adaptive test-case reorder passes; 0 unless the
    /// incremental backend runs with a non-zero
    /// [`reorder_interval`](crate::config::Config::reorder_interval).
    pub columns_reordered: u64,
}

/// The verdict of one symbolic validation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationVerdict {
    /// The candidate was proven equivalent to the target.
    Proven,
    /// The validator produced a counterexample, which was added to the
    /// test suite (Equation 12's refinement).
    Refuted,
}

/// Callbacks invoked by a [`Session`](crate::driver::Session) as the
/// pipeline advances.
///
/// Every method has a no-op default, so implementors override only the
/// events they care about. Observers are shared across the search threads
/// and called concurrently, hence the `Send + Sync` bound; implementations
/// should return quickly to avoid stalling the chains.
pub trait SearchObserver: Send + Sync {
    /// A pipeline phase is starting for target `target`.
    fn on_phase_start(&self, target: usize, phase: Phase) {
        let _ = (target, phase);
    }

    /// Periodic progress from one chain (cadence controlled by the
    /// session).
    fn on_chain_progress(&self, progress: &ChainProgress) {
        let _ = progress;
    }

    /// A candidate rewrite entered the re-rank stage with the given search
    /// cost.
    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        let _ = (target, candidate, cost);
    }

    /// A symbolic validation query finished.
    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        let _ = (target, verdict);
    }
}

/// The do-nothing observer used when a session has no explicit observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {}

/// One recorded observer callback (see [`CollectingObserver`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// `on_phase_start` fired.
    PhaseStart {
        /// Batch index of the target.
        target: usize,
        /// The phase that started.
        phase: Phase,
    },
    /// `on_chain_progress` fired.
    Progress(ChainProgress),
    /// `on_candidate` fired.
    Candidate {
        /// Batch index of the target.
        target: usize,
        /// Number of instructions in the candidate.
        instructions: usize,
        /// The candidate's search cost.
        cost: f64,
    },
    /// `on_validation` fired.
    Validation {
        /// Batch index of the target.
        target: usize,
        /// The validator's verdict.
        verdict: ValidationVerdict,
    },
}

/// An observer that records every event in order, for tests and for the
/// `experiments` binary's per-phase progress reporting.
///
/// The event log lives behind an internal `Arc`, so the collector is
/// `Clone` and cheap to hand to each of a service's worker threads —
/// every clone appends to (and reads) the same log. Events are recorded
/// in lock-acquisition order, which for a single job matches callback
/// order; concurrent jobs interleave, and readers separate them by the
/// `target` index carried on every event.
#[derive(Debug, Clone, Default)]
pub struct CollectingObserver {
    events: Arc<Mutex<Vec<SearchEvent>>>,
}

impl CollectingObserver {
    /// A fresh, empty collector.
    pub fn new() -> CollectingObserver {
        CollectingObserver::default()
    }

    /// A snapshot of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("observer lock").clone()
    }

    /// Remove and return every recorded event (used by the `experiments`
    /// binary to stream per-kernel progress between runs).
    pub fn drain(&self) -> Vec<SearchEvent> {
        std::mem::take(&mut *self.events.lock().expect("observer lock"))
    }

    /// The phase-start events only, in arrival order.
    pub fn phases(&self) -> Vec<Phase> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                SearchEvent::PhaseStart { phase, .. } => Some(phase),
                _ => None,
            })
            .collect()
    }

    fn push(&self, event: SearchEvent) {
        self.events.lock().expect("observer lock").push(event);
    }
}

impl SearchObserver for CollectingObserver {
    fn on_phase_start(&self, target: usize, phase: Phase) {
        self.push(SearchEvent::PhaseStart { target, phase });
    }

    fn on_chain_progress(&self, progress: &ChainProgress) {
        self.push(SearchEvent::Progress(*progress));
    }

    fn on_candidate(&self, target: usize, candidate: &Program, cost: f64) {
        self.push(SearchEvent::Candidate {
            target,
            instructions: candidate.len(),
            cost,
        });
    }

    fn on_validation(&self, target: usize, verdict: ValidationVerdict) {
        self.push(SearchEvent::Validation { target, verdict });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_observer_records_in_order() {
        let obs = CollectingObserver::new();
        obs.on_phase_start(0, Phase::Synthesis);
        obs.on_phase_start(0, Phase::Optimization);
        obs.on_validation(0, ValidationVerdict::Proven);
        assert_eq!(obs.phases(), vec![Phase::Synthesis, Phase::Optimization]);
        assert_eq!(obs.events().len(), 3);
        assert_eq!(obs.drain().len(), 3);
        assert!(obs.events().is_empty());
    }

    #[test]
    fn clones_share_one_event_log() {
        let obs = CollectingObserver::new();
        let clone = obs.clone();
        obs.on_phase_start(0, Phase::Synthesis);
        clone.on_phase_start(1, Phase::Synthesis);
        assert_eq!(obs.events().len(), 2);
        assert_eq!(clone.events().len(), 2);
        clone.drain();
        assert!(obs.events().is_empty());
    }

    #[test]
    fn concurrent_jobs_interleave_but_stay_ordered_per_target() {
        // Two "jobs" hammer one shared collector from separate threads;
        // the global log may interleave arbitrarily, but filtering by
        // target index must recover each job's callback order exactly.
        let obs = CollectingObserver::new();
        std::thread::scope(|scope| {
            for target in 0..2usize {
                let obs = obs.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        obs.on_phase_start(target, Phase::Synthesis);
                        obs.on_chain_progress(&ChainProgress {
                            target,
                            phase: Phase::Synthesis,
                            chain: 0,
                            proposals: i,
                            iterations: 100,
                            current_cost: 0.0,
                            correctness: 0.0,
                            performance: 0.0,
                            best_cost: 0.0,
                            instructions_skipped: 0,
                            checkpoint_restores: 0,
                            columns_reordered: 0,
                        });
                    }
                });
            }
        });
        let events = obs.events();
        assert_eq!(events.len(), 400);
        for target in 0..2usize {
            let mut expect_progress = false;
            let mut next_proposals = 0u64;
            let mut seen = 0;
            for event in &events {
                match event {
                    SearchEvent::PhaseStart { target: t, .. } if *t == target => {
                        assert!(!expect_progress, "job {target} events out of order");
                        expect_progress = true;
                        seen += 1;
                    }
                    SearchEvent::Progress(p) if p.target == target => {
                        assert!(expect_progress, "job {target} events out of order");
                        assert_eq!(p.proposals, next_proposals);
                        expect_progress = false;
                        next_proposals += 1;
                        seen += 1;
                    }
                    _ => {}
                }
            }
            assert_eq!(seen, 200);
        }
    }

    #[test]
    fn null_observer_ignores_everything() {
        let obs = NullObserver;
        obs.on_phase_start(0, Phase::Testcases);
        let p: Program = "movq rdi, rax".parse().unwrap();
        obs.on_candidate(0, &p, 1.0);
    }
}
