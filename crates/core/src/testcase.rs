//! Test case generation — the reproduction's substitute for the paper's
//! PinTool instrumentation (§5.1).
//!
//! A [`TargetSpec`] describes the target code sequence, its live inputs
//! and outputs, and annotations for inputs that form memory addresses
//! (the paper requires the user to annotate address-forming inputs with
//! legal ranges). Test cases are produced by sampling the annotated
//! inputs, running the *target* in the emulator to record the dereferenced
//! addresses (which define the sandbox) and the live-output values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stoke_emu::{run, MachineState};
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program, Xmm};

/// How the value of a live-in register is generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputKind {
    /// A plain value sampled uniformly from the 64-bit masked range.
    Value {
        /// Mask applied to the sampled value (e.g. `0xffff_ffff` for a
        /// 32-bit argument).
        mask: u64,
    },
    /// A pointer to a fresh buffer of `len` bytes filled with random data.
    Pointer {
        /// Buffer length in bytes.
        len: u64,
        /// Value mask applied to each 4-byte word of the buffer (useful
        /// for keeping array elements small).
        elem_mask: u64,
    },
}

/// A live-in register together with its generation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSpec {
    /// The register holding the input.
    pub reg: Gpr,
    /// How the input is generated.
    pub kind: InputKind,
    /// Whether this input holds a secret (key material, private data).
    /// Secret inputs seed the constant-time and relative-leakage analyses
    /// in `stoke-analysis`; they change nothing unless those checks are
    /// enabled in the [`Config`](crate::Config).
    pub secret: bool,
}

impl InputSpec {
    /// A 64-bit value input.
    pub fn value64(reg: Gpr) -> InputSpec {
        InputSpec {
            reg,
            kind: InputKind::Value { mask: u64::MAX },
            secret: false,
        }
    }

    /// A 32-bit value input.
    pub fn value32(reg: Gpr) -> InputSpec {
        InputSpec {
            reg,
            kind: InputKind::Value { mask: 0xffff_ffff },
            secret: false,
        }
    }

    /// A value input restricted by `mask`.
    pub fn value_masked(reg: Gpr, mask: u64) -> InputSpec {
        InputSpec {
            reg,
            kind: InputKind::Value { mask },
            secret: false,
        }
    }

    /// A pointer input to a buffer of `len` bytes.
    pub fn pointer(reg: Gpr, len: u64) -> InputSpec {
        InputSpec {
            reg,
            kind: InputKind::Pointer {
                len,
                elem_mask: u64::MAX,
            },
            secret: false,
        }
    }

    /// A pointer input whose buffer words are masked (kept small).
    pub fn pointer_masked(reg: Gpr, len: u64, elem_mask: u64) -> InputSpec {
        InputSpec {
            reg,
            kind: InputKind::Pointer { len, elem_mask },
            secret: false,
        }
    }

    /// Mark this input as secret (builder style).
    pub fn secret(mut self) -> InputSpec {
        self.secret = true;
        self
    }
}

/// Everything STOKE needs to know about a target: the code, its live
/// inputs (with annotations) and its live outputs.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// The target code sequence (typically `llvm -O0` style output).
    pub program: Program,
    /// Live-in registers and how to generate them.
    pub inputs: Vec<InputSpec>,
    /// Live outputs with respect to the target.
    pub live_out: LocSet,
}

impl TargetSpec {
    /// Construct a spec.
    pub fn new(program: Program, inputs: Vec<InputSpec>, live_out: LocSet) -> TargetSpec {
        TargetSpec {
            program,
            inputs,
            live_out,
        }
    }

    /// Convenience constructor: value inputs in registers, GPR live-outs.
    pub fn with_gprs(program: Program, inputs: &[Gpr], outputs: &[Gpr]) -> TargetSpec {
        TargetSpec {
            program,
            inputs: inputs.iter().map(|g| InputSpec::value64(*g)).collect(),
            live_out: LocSet::from_gprs(outputs.iter().copied()),
        }
    }

    /// The registers annotated as secret, as an entry [`LocSet`] for the
    /// taint and leakage analyses. Empty when no input is secret.
    pub fn secret_inputs(&self) -> LocSet {
        LocSet::from_gprs(self.inputs.iter().filter(|i| i.secret).map(|i| i.reg))
    }
}

/// One test case: an input machine state, plus the target's output state
/// and the set of live outputs to compare.
#[derive(Debug, Clone)]
pub struct Testcase {
    /// The input machine state (also defines the memory sandbox).
    pub input: MachineState,
    /// The state produced by running the target on `input`.
    pub target_output: MachineState,
}

/// A set of test cases for one target.
#[derive(Debug, Clone)]
pub struct TestSuite {
    /// The cases.
    pub cases: Vec<Testcase>,
    /// The live outputs compared by the cost function.
    pub live_out: LocSet,
    /// A scratch address range (the per-test-case stack) excluded from the
    /// memory comparison: stack spills are temporaries of the target, not
    /// live memory outputs.
    pub scratch: Option<(u64, u64)>,
    /// The secret entry locations ([`TargetSpec::secret_inputs`]), carried
    /// on the suite so cost models can run the constant-time analysis
    /// without holding a reference to the spec. Empty when nothing is
    /// secret.
    pub secrets: LocSet,
}

impl TestSuite {
    /// Number of test cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Add a counterexample produced by the validator as a new test case
    /// (the refinement loop of Equation 12). Pointer-typed inputs keep the
    /// layout of the first existing test case so that the sandbox remains
    /// meaningful.
    pub fn add_counterexample(&mut self, spec: &TargetSpec, cex: &stoke_verify::Counterexample) {
        let template = self
            .cases
            .first()
            .map(|c| c.input.clone())
            .unwrap_or_default();
        let mut input = template;
        for is in &spec.inputs {
            if let InputKind::Value { mask } = is.kind {
                input.set_gpr64(is.reg, cex.gprs[is.reg.index()] & mask);
            }
        }
        for x in Xmm::ALL {
            if cex.xmms[x.index()] != [0, 0] {
                input.write_xmm(x, cex.xmms[x.index()]);
            }
        }
        let target_output = run(&spec.program, &input).state;
        self.cases.push(Testcase {
            input,
            target_output,
        });
    }
}

/// Generate `n` test cases for a target (the PinTool substitute).
pub fn generate_testcases(spec: &TargetSpec, n: usize, seed: u64) -> TestSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(n);
    for _ in 0..n {
        let mut input = MachineState::new();
        // Every test case gets a small stack: `llvm -O0`-style targets spill
        // to rsp-relative slots, and those addresses must be inside the
        // sandbox for the target (and any rewrite) to execute cleanly.
        const STACK_TOP: u64 = 0x8000;
        input.set_gpr64(Gpr::Rsp, STACK_TOP);
        input.memory.mark_valid(STACK_TOP - 0x1000, 0x1010);
        // Lay pointer buffers out in distinct pages.
        let mut next_base = 0x1_0000u64;
        for is in &spec.inputs {
            match is.kind {
                InputKind::Value { mask } => {
                    input.set_gpr64(is.reg, rng.gen::<u64>() & mask);
                }
                InputKind::Pointer { len, elem_mask } => {
                    let base = next_base;
                    next_base += len.next_multiple_of(0x1000) + 0x1000;
                    input.set_gpr64(is.reg, base);
                    let mut offset = 0;
                    while offset < len {
                        let word = rng.gen::<u64>() & elem_mask;
                        let bytes = (len - offset).min(4);
                        input.memory.poke_wide(base + offset, word, bytes);
                        offset += bytes;
                    }
                }
            }
        }
        let outcome = run(&spec.program, &input);
        cases.push(Testcase {
            input,
            target_output: outcome.state,
        });
    }
    TestSuite {
        cases,
        live_out: spec.live_out.clone(),
        scratch: Some((0x7000, 0x1010)),
        secrets: spec.secret_inputs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Gpr;

    fn add_spec() -> TargetSpec {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        TargetSpec::with_gprs(p, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
    }

    #[test]
    fn generates_requested_number_of_cases() {
        let suite = generate_testcases(&add_spec(), 16, 1);
        assert_eq!(suite.len(), 16);
        for case in &suite.cases {
            let x = case.input.read_gpr64(Gpr::Rdi);
            let y = case.input.read_gpr64(Gpr::Rsi);
            assert_eq!(case.target_output.read_gpr64(Gpr::Rax), x.wrapping_add(y));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_testcases(&add_spec(), 4, 7);
        let b = generate_testcases(&add_spec(), 4, 7);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.input.read_gpr64(Gpr::Rdi), y.input.read_gpr64(Gpr::Rdi));
        }
        let c = generate_testcases(&add_spec(), 4, 8);
        assert_ne!(
            a.cases[0].input.read_gpr64(Gpr::Rdi),
            c.cases[0].input.read_gpr64(Gpr::Rdi),
            "different seeds should give different inputs (w.h.p.)"
        );
    }

    #[test]
    fn pointer_inputs_define_a_sandbox() {
        let p: Program = "movl (rdi), eax\naddl 1, eax\nmovl eax, (rdi)"
            .parse()
            .unwrap();
        let spec = TargetSpec::new(
            p,
            vec![InputSpec::pointer(Gpr::Rdi, 4)],
            LocSet::from_gprs([Gpr::Rax]),
        );
        let suite = generate_testcases(&spec, 3, 11);
        for case in &suite.cases {
            let base = case.input.read_gpr64(Gpr::Rdi);
            assert!(case.input.memory.is_valid(base, 4));
            let before = case.input.memory.peek_wide(base, 4);
            let after = case.target_output.memory.peek_wide(base, 4);
            assert_eq!(after, (before + 1) & 0xffff_ffff);
        }
    }

    #[test]
    fn masked_value_inputs_respect_mask() {
        let p: Program = "movl edi, eax".parse().unwrap();
        let spec = TargetSpec::new(
            p,
            vec![InputSpec::value32(Gpr::Rdi)],
            LocSet::from_gprs([Gpr::Rax]),
        );
        let suite = generate_testcases(&spec, 8, 3);
        for case in &suite.cases {
            assert!(case.input.read_gpr64(Gpr::Rdi) <= u64::from(u32::MAX));
        }
    }

    #[test]
    fn counterexample_becomes_testcase() {
        let spec = add_spec();
        let mut suite = generate_testcases(&spec, 2, 5);
        let mut cex = stoke_verify::Counterexample::default();
        cex.gprs[Gpr::Rdi.index()] = 0xdead;
        cex.gprs[Gpr::Rsi.index()] = 0xbeef;
        suite.add_counterexample(&spec, &cex);
        assert_eq!(suite.len(), 3);
        let added = suite.cases.last().unwrap();
        assert_eq!(added.input.read_gpr64(Gpr::Rdi), 0xdead);
        assert_eq!(added.target_output.read_gpr64(Gpr::Rax), 0xdead + 0xbeef);
    }
}
