//! Search configuration: the MCMC parameters of Figure 11 plus the knobs
//! this reproduction adds (iteration budgets, thread counts, cost-function
//! variants).

use stoke_x86::{Gpr, Opcode};

/// Which register-equality metric the cost function uses (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EqMetric {
    /// Equation 9: Hamming distance between each live output register and
    /// the same register of the rewrite.
    Strict,
    /// Equation 15: reward correct values in the wrong register by taking
    /// the minimum distance over all same-width registers, plus a small
    /// misplacement penalty `wm`.
    Improved,
}

/// Configuration of a STOKE search.
///
/// The defaults reproduce Figure 11 of the paper:
///
/// | parameter | value | | parameter | value |
/// |---|---|---|---|---|
/// | `wsf` | 1 | | `pc` (opcode move) | 0.16 |
/// | `wfp` | 1 | | `po` (operand move) | 0.5 |
/// | `wur` | 2 | | `ps` (swap move) | 0.16 |
/// | `wm` | 3 | | `pi` (instruction move) | 0.16 |
/// | `β` | 0.1 | | `pu` (unused token) | 0.16 |
/// | `ℓ` | 50 | | test cases | 32 |
#[derive(Debug, Clone)]
pub struct Config {
    /// Weight of a segmentation fault in `err(·)`.
    pub wsf: u64,
    /// Weight of an arithmetic (floating point in the paper) exception.
    pub wfp: u64,
    /// Weight of a read from an undefined location.
    pub wur: u64,
    /// Misplacement penalty of the improved equality metric.
    pub wm: u64,
    /// Probability of an opcode move.
    pub pc: f64,
    /// Probability of an operand move.
    pub po: f64,
    /// Probability of a swap move.
    pub ps: f64,
    /// Probability of an instruction move.
    pub pi: f64,
    /// Probability that an instruction move proposes the `UNUSED` token.
    pub pu: f64,
    /// The annealing constant β of Equation 6.
    pub beta: f64,
    /// Rewrite length ℓ (number of instruction slots).
    pub ell: usize,
    /// Number of test cases generated per target.
    pub num_testcases: usize,
    /// Which register equality metric to use.
    pub eq_metric: EqMetric,
    /// Whether to use the early-termination acceptance computation (§4.5).
    pub early_termination: bool,
    /// Weight of the performance term during optimization (the correctness
    /// term is measured in bits, so latency is scaled to stay comparable).
    pub perf_weight: f64,
    /// Number of proposals evaluated per synthesis run.
    pub synthesis_iterations: u64,
    /// Number of proposals evaluated per optimization run.
    pub optimization_iterations: u64,
    /// Number of parallel synthesis/optimization chains.
    pub threads: usize,
    /// Candidates within this factor of the best cost are re-ranked by the
    /// timing model (the paper keeps everything within 20%).
    pub rerank_margin: f64,
    /// RNG seed (searches are deterministic given the seed).
    pub seed: u64,
    /// The opcode universe sampled by instruction/opcode moves.
    pub opcode_pool: Vec<Opcode>,
    /// The constant pool sampled for immediate operands.
    pub immediate_pool: Vec<i64>,
    /// Registers eligible as random operands. `rsp` is excluded by default
    /// so that random rewrites do not trample the stack engine.
    pub register_pool: Vec<Gpr>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            wsf: 1,
            wfp: 1,
            wur: 2,
            wm: 3,
            pc: 0.16,
            po: 0.5,
            ps: 0.16,
            pi: 0.16,
            pu: 0.16,
            beta: 0.1,
            ell: 50,
            num_testcases: 32,
            eq_metric: EqMetric::Improved,
            early_termination: true,
            perf_weight: 1.0,
            synthesis_iterations: 200_000,
            optimization_iterations: 200_000,
            threads: 4,
            rerank_margin: 1.2,
            // The grouping spells "STOKE 2013"; regrouping would lose the pun.
            #[allow(clippy::unusual_byte_groupings)]
            seed: 0x5704e_2013,
            opcode_pool: Opcode::all(),
            immediate_pool: vec![
                0,
                1,
                -1,
                2,
                3,
                4,
                7,
                8,
                15,
                16,
                31,
                32,
                63,
                64,
                0xff,
                0xffff,
                0x7fff_ffff,
                0xffff_ffff,
                0x1_0000_0000,
                i64::MIN,
                i64::MAX,
            ],
            register_pool: Gpr::ALL
                .iter()
                .copied()
                .filter(|g| *g != Gpr::Rsp)
                .collect(),
        }
    }
}

impl Config {
    /// A configuration scaled down for unit tests and doc examples: short
    /// rewrites, few test cases, few iterations, a single thread.
    pub fn quick_test() -> Config {
        Config {
            ell: 8,
            num_testcases: 8,
            synthesis_iterations: 20_000,
            optimization_iterations: 20_000,
            threads: 1,
            ..Config::default()
        }
    }

    /// Move probabilities as a cumulative distribution, normalized.
    pub(crate) fn move_cdf(&self) -> [f64; 4] {
        let total = self.pc + self.po + self.ps + self.pi;
        let pc = self.pc / total;
        let po = self.po / total;
        let ps = self.ps / total;
        [pc, pc + po, pc + po + ps, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_figure_11() {
        let c = Config::default();
        assert_eq!((c.wsf, c.wfp, c.wur, c.wm), (1, 1, 2, 3));
        assert_eq!(c.ell, 50);
        assert_eq!(c.num_testcases, 32);
        assert!((c.beta - 0.1).abs() < 1e-12);
        assert!((c.pc - 0.16).abs() < 1e-12);
        assert!((c.po - 0.5).abs() < 1e-12);
        assert!((c.ps - 0.16).abs() < 1e-12);
        assert!((c.pi - 0.16).abs() < 1e-12);
        assert!((c.pu - 0.16).abs() < 1e-12);
    }

    #[test]
    fn move_cdf_is_monotone_and_normalized() {
        let cdf = Config::default().move_cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_pool_excludes_rsp() {
        assert!(!Config::default().register_pool.contains(&Gpr::Rsp));
        assert_eq!(Config::default().register_pool.len(), 15);
    }
}
