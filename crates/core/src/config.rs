//! Search configuration: the MCMC parameters of Figure 11 plus the knobs
//! this reproduction adds (iteration budgets, thread counts, cost-function
//! variants), and the validating [`ConfigBuilder`] used by the
//! session-based driver API.

use crate::error::ConfigError;
use crate::model::CostModelSpec;
use crate::verifier::VerifierSpec;
use stoke_x86::{Gpr, Opcode};

/// Which register-equality metric the cost function uses (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EqMetric {
    /// Equation 9: Hamming distance between each live output register and
    /// the same register of the rewrite.
    Strict,
    /// Equation 15: reward correct values in the wrong register by taking
    /// the minimum distance over all same-width registers, plus a small
    /// misplacement penalty `wm`.
    Improved,
}

/// Which execution backend evaluates candidate rewrites over the test
/// suite (see the README's "Execution backends" section).
///
/// All backends share one set of instruction semantics and are
/// bit-identical in every observable — final states, fault counters,
/// cost terms, early-termination decisions, evaluation statistics — so
/// switching backends never changes a search result, only its speed.
/// (`Incremental` with a non-zero
/// [`reorder_interval`](Config::reorder_interval) is the one documented
/// exception: accept decisions and results stay identical, but the number
/// of test cases *charged* per bounded evaluation may shrink.)
///
/// ```
/// use stoke::{BackendSpec, Config};
///
/// assert_eq!(Config::default().backend, BackendSpec::Batched);
/// let config = Config::builder()
///     .backend(BackendSpec::Prepared)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.backend, BackendSpec::Prepared);
/// assert_eq!("interp".parse(), Ok(BackendSpec::Interp));
/// assert_eq!("incremental".parse(), Ok(BackendSpec::Incremental));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Decode and execute each instruction per test case
    /// ([`stoke_emu::run_instrs`]): the reference semantics. Simplest to
    /// audit, slowest to run.
    Interp,
    /// Decode once per proposal, execute many
    /// ([`stoke_emu::PreparedProgram`]): hoists decode and use-set
    /// analysis out of the per-case loop.
    Prepared,
    /// Execute all test cases in lockstep over a structure-of-arrays
    /// state ([`stoke_emu::BatchedProgram`]): amortizes dispatch across
    /// the suite and lets the §4.5 early exit kill doomed test cases
    /// per instruction step. The default.
    #[default]
    Batched,
    /// The batched engine plus prefix checkpointing
    /// ([`stoke_emu::PrefixCheckpoints`]): the accepted rewrite's batch
    /// state is snapshotted every
    /// [`checkpoint_interval`](Config::checkpoint_interval) instructions,
    /// and a proposal that modifies the rewrite from instruction `f`
    /// onwards resumes execution from the deepest snapshot at or before
    /// `f` instead of re-running the unchanged prefix. Fastest inside an
    /// MCMC chain (where every proposal is a one- or two-slot edit);
    /// equivalent to `Batched` for hintless evaluations.
    Incremental,
}

impl std::str::FromStr for BackendSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<BackendSpec, ConfigError> {
        match s {
            "interp" => Ok(BackendSpec::Interp),
            "prepared" => Ok(BackendSpec::Prepared),
            "batched" => Ok(BackendSpec::Batched),
            "incremental" => Ok(BackendSpec::Incremental),
            _ => Err(ConfigError::UnknownBackend {
                name: s.to_string(),
            }),
        }
    }
}

/// Configuration of a STOKE search.
///
/// The defaults reproduce Figure 11 of the paper:
///
/// | parameter | value | | parameter | value |
/// |---|---|---|---|---|
/// | `wsf` | 1 | | `pc` (opcode move) | 0.16 |
/// | `wfp` | 1 | | `po` (operand move) | 0.5 |
/// | `wur` | 2 | | `ps` (swap move) | 0.16 |
/// | `wm` | 3 | | `pi` (instruction move) | 0.16 |
/// | `β` | 0.1 | | `pu` (unused token) | 0.16 |
/// | `ℓ` | 50 | | test cases | 32 |
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Weight of a segmentation fault in `err(·)`.
    pub wsf: u64,
    /// Weight of an arithmetic (floating point in the paper) exception.
    pub wfp: u64,
    /// Weight of a read from an undefined location.
    pub wur: u64,
    /// Misplacement penalty of the improved equality metric.
    pub wm: u64,
    /// Probability of an opcode move.
    pub pc: f64,
    /// Probability of an operand move.
    pub po: f64,
    /// Probability of a swap move.
    pub ps: f64,
    /// Probability of an instruction move.
    pub pi: f64,
    /// Probability that an instruction move proposes the `UNUSED` token.
    pub pu: f64,
    /// The annealing constant β of Equation 6.
    pub beta: f64,
    /// Rewrite length ℓ (number of instruction slots).
    pub ell: usize,
    /// Number of test cases generated per target.
    pub num_testcases: usize,
    /// Which register equality metric to use.
    pub eq_metric: EqMetric,
    /// Whether to use the early-termination acceptance computation (§4.5).
    pub early_termination: bool,
    /// Weight of the performance term during optimization (the correctness
    /// term is measured in bits, so latency is scaled to stay comparable).
    pub perf_weight: f64,
    /// Number of proposals evaluated per synthesis run.
    pub synthesis_iterations: u64,
    /// Number of proposals evaluated per optimization run.
    pub optimization_iterations: u64,
    /// Number of parallel synthesis/optimization chains.
    pub threads: usize,
    /// Candidates within this factor of the best cost are re-ranked by the
    /// timing model (the paper keeps everything within 20%).
    pub rerank_margin: f64,
    /// RNG seed (searches are deterministic given the seed).
    pub seed: u64,
    /// The opcode universe sampled by instruction/opcode moves.
    pub opcode_pool: Vec<Opcode>,
    /// The constant pool sampled for immediate operands.
    pub immediate_pool: Vec<i64>,
    /// Registers eligible as random operands. `rsp` is excluded by default
    /// so that random rewrites do not trample the stack engine.
    pub register_pool: Vec<Gpr>,
    /// Which cost model scores candidate rewrites (see
    /// [`CostModelSpec`]): the paper's metric by default, with
    /// correctness-only and weighted variants built in and
    /// [`CostModelSpec::Custom`] for third-party models.
    pub cost_model: CostModelSpec,
    /// Which execution backend evaluates rewrites over the test suite
    /// (see [`BackendSpec`]); backends differ only in speed, never in
    /// results.
    pub backend: BackendSpec,
    /// Which verifier validates surviving candidates (see
    /// [`VerifierSpec`]): the paper's cascade by default. An explicit
    /// [`Session::with_verifier`](crate::driver::Session::with_verifier)
    /// override takes precedence over this field.
    pub verifier: VerifierSpec,
    /// Whether to strip statically dead instructions from the final
    /// reported rewrite (liveness-based, validated by a re-run over the
    /// test suite). Off by default so that results remain bit-identical
    /// with earlier releases.
    pub strip_dead_code: bool,
    /// Snapshot spacing (in instructions) of the
    /// [`BackendSpec::Incremental`] backend's prefix checkpoints. `0`
    /// (the default) auto-tunes to ⌊√len⌋ of the evaluated program, the
    /// classic balance between snapshot cost (∝ len / interval per
    /// accepted proposal) and wasted re-execution (∝ interval / 2 per
    /// proposal). Ignored by the other backends.
    pub checkpoint_interval: usize,
    /// How often (in bounded evaluations) the incremental backend
    /// re-sorts its test-case evaluation order most-discriminating-first,
    /// so the §4.5 early exit trips after fewer cases. `0` (the default)
    /// keeps the suite order, which keeps
    /// [`EvalStats::testcases_run`](crate::cost::EvalStats::testcases_run)
    /// bit-identical to the other backends; any other value preserves
    /// every accept decision and
    /// search result (totals and threshold comparisons are
    /// order-invariant) but may charge fewer test cases per early exit.
    /// Ignored by the other backends.
    pub reorder_interval: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            wsf: 1,
            wfp: 1,
            wur: 2,
            wm: 3,
            pc: 0.16,
            po: 0.5,
            ps: 0.16,
            pi: 0.16,
            pu: 0.16,
            beta: 0.1,
            ell: 50,
            num_testcases: 32,
            eq_metric: EqMetric::Improved,
            early_termination: true,
            perf_weight: 1.0,
            synthesis_iterations: 200_000,
            optimization_iterations: 200_000,
            threads: 4,
            rerank_margin: 1.2,
            // The grouping spells "STOKE 2013"; regrouping would lose the pun.
            #[allow(clippy::unusual_byte_groupings)]
            seed: 0x5704e_2013,
            opcode_pool: Opcode::all(),
            immediate_pool: vec![
                0,
                1,
                -1,
                2,
                3,
                4,
                7,
                8,
                15,
                16,
                31,
                32,
                63,
                64,
                0xff,
                0xffff,
                0x7fff_ffff,
                0xffff_ffff,
                0x1_0000_0000,
                i64::MIN,
                i64::MAX,
            ],
            register_pool: Gpr::ALL
                .iter()
                .copied()
                .filter(|g| *g != Gpr::Rsp)
                .collect(),
            cost_model: CostModelSpec::Paper,
            backend: BackendSpec::default(),
            verifier: VerifierSpec::default(),
            strip_dead_code: false,
            checkpoint_interval: 0,
            reorder_interval: 0,
        }
    }
}

impl Config {
    /// A configuration scaled down for unit tests and doc examples: short
    /// rewrites, few test cases, few iterations, a single thread.
    pub fn quick_test() -> Config {
        Config {
            ell: 8,
            num_testcases: 8,
            synthesis_iterations: 20_000,
            optimization_iterations: 20_000,
            threads: 1,
            ..Config::default()
        }
    }

    /// Start building a configuration from the Figure 11 defaults; every
    /// field has a setter and [`ConfigBuilder::build`] validates the
    /// invariants that a raw struct literal could violate silently.
    ///
    /// ```
    /// use stoke::Config;
    /// let config = Config::builder()
    ///     .ell(16)
    ///     .threads(2)
    ///     .synthesis_iterations(10_000)
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(config.ell, 16);
    /// ```
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Check every invariant the builder enforces. The fields are still
    /// `pub` (raw struct construction remains supported for one release),
    /// so [`Session`](crate::driver::Session) re-validates on every run.
    ///
    /// # Errors
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("pc", self.pc),
            ("po", self.po),
            ("ps", self.ps),
            ("pi", self.pi),
            ("pu", self.pu),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(ConfigError::InvalidMoveProbability { field, value });
            }
        }
        if self.pc + self.po + self.ps + self.pi == 0.0 {
            return Err(ConfigError::AllMoveProbabilitiesZero);
        }
        // pc..pi are relative weights (normalized by move_cdf), but pu is
        // compared against a uniform sample directly, so it must be a
        // genuine probability.
        if self.pu > 1.0 {
            return Err(ConfigError::UnusedProbabilityOutOfRange { value: self.pu });
        }
        if self.ell == 0 {
            return Err(ConfigError::ZeroRewriteLength);
        }
        if self.opcode_pool.is_empty() {
            return Err(ConfigError::EmptyOpcodePool);
        }
        if self.register_pool.is_empty() {
            return Err(ConfigError::EmptyRegisterPool);
        }
        if !self.rerank_margin.is_finite() || self.rerank_margin < 1.0 {
            return Err(ConfigError::RerankMarginTooSmall {
                value: self.rerank_margin,
            });
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if !self.beta.is_finite() || self.beta <= 0.0 {
            return Err(ConfigError::InvalidBeta { value: self.beta });
        }
        if !self.perf_weight.is_finite() || self.perf_weight < 0.0 {
            return Err(ConfigError::InvalidPerfWeight {
                value: self.perf_weight,
            });
        }
        if self.num_testcases == 0 {
            return Err(ConfigError::ZeroTestcases);
        }
        if let CostModelSpec::Weighted {
            correctness,
            performance,
        } = self.cost_model
        {
            for (field, value) in [("correctness", correctness), ("performance", performance)] {
                if !value.is_finite() || value < 0.0 {
                    return Err(ConfigError::InvalidCostWeight { field, value });
                }
            }
            // A zero correctness weight silently degenerates the whole
            // search: every rewrite scores as "correct", synthesis
            // "succeeds" on its first random rewrite, and optimization
            // ranks arbitrary incorrect programs by speed alone.
            if correctness == 0.0 {
                return Err(ConfigError::InvalidCostWeight {
                    field: "correctness",
                    value: correctness,
                });
            }
        }
        if let CostModelSpec::ConstantTime { penalty } = self.cost_model {
            if !penalty.is_finite() || penalty < 0.0 {
                return Err(ConfigError::InvalidCostWeight {
                    field: "penalty",
                    value: penalty,
                });
            }
        }
        Ok(())
    }

    /// Move probabilities as a cumulative distribution, normalized.
    ///
    /// An all-zero move distribution is unrepresentable through the
    /// builder; raw-struct construction can still produce one, which this
    /// guards against (a debug assertion, and a uniform fallback in
    /// release builds rather than a division by zero propagating NaN into
    /// the acceptance test).
    pub(crate) fn move_cdf(&self) -> [f64; 4] {
        let total = self.pc + self.po + self.ps + self.pi;
        debug_assert!(
            total > 0.0,
            "move probabilities pc + po + ps + pi must not all be zero \
             (use Config::builder() to get this checked at construction)"
        );
        if total <= 0.0 {
            return [0.25, 0.5, 0.75, 1.0];
        }
        let pc = self.pc / total;
        let po = self.po / total;
        let ps = self.ps / total;
        [pc, pc + po, pc + po + ps, 1.0]
    }
}

/// Builder for [`Config`] with per-field setters and validated
/// construction; see [`Config::builder`].
#[derive(Debug, Clone, Default)]
#[must_use = "a ConfigBuilder does nothing until .build() is called"]
pub struct ConfigBuilder {
    config: Config,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> ConfigBuilder {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl ConfigBuilder {
    /// Start from an existing configuration instead of the defaults.
    pub fn from_config(config: Config) -> ConfigBuilder {
        ConfigBuilder { config }
    }

    /// Start from the scaled-down [`Config::quick_test`] preset.
    pub fn quick_test() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::quick_test(),
        }
    }

    builder_setters! {
        /// Weight of a segmentation fault in `err(·)`.
        wsf: u64,
        /// Weight of an arithmetic exception.
        wfp: u64,
        /// Weight of a read from an undefined location.
        wur: u64,
        /// Misplacement penalty of the improved equality metric.
        wm: u64,
        /// Probability of an opcode move.
        pc: f64,
        /// Probability of an operand move.
        po: f64,
        /// Probability of a swap move.
        ps: f64,
        /// Probability of an instruction move.
        pi: f64,
        /// Probability that an instruction move proposes the `UNUSED` token.
        pu: f64,
        /// The annealing constant β of Equation 6.
        beta: f64,
        /// Rewrite length ℓ (number of instruction slots).
        ell: usize,
        /// Number of test cases generated per target.
        num_testcases: usize,
        /// Which register equality metric to use.
        eq_metric: EqMetric,
        /// Whether to use the early-termination acceptance computation (§4.5).
        early_termination: bool,
        /// Weight of the performance term during optimization.
        perf_weight: f64,
        /// Number of proposals evaluated per synthesis run.
        synthesis_iterations: u64,
        /// Number of proposals evaluated per optimization run.
        optimization_iterations: u64,
        /// Number of parallel synthesis/optimization chains.
        threads: usize,
        /// Re-rank window as a factor of the best candidate cost.
        rerank_margin: f64,
        /// RNG seed (searches are deterministic given the seed).
        seed: u64,
        /// The opcode universe sampled by instruction/opcode moves.
        opcode_pool: Vec<Opcode>,
        /// The constant pool sampled for immediate operands.
        immediate_pool: Vec<i64>,
        /// Registers eligible as random operands.
        register_pool: Vec<Gpr>,
        /// Which cost model scores candidate rewrites.
        cost_model: CostModelSpec,
        /// Which execution backend evaluates rewrites over the test
        /// suite.
        backend: BackendSpec,
        /// Which verifier validates surviving candidates.
        verifier: VerifierSpec,
        /// Whether to strip statically dead instructions from the final
        /// reported rewrite.
        strip_dead_code: bool,
        /// Snapshot spacing of the incremental backend's prefix
        /// checkpoints (`0` auto-tunes to ⌊√len⌋).
        checkpoint_interval: usize,
        /// How often (in bounded evaluations) the incremental backend
        /// re-sorts test cases most-discriminating-first (`0` disables).
        reorder_interval: u64,
    }

    /// Validate every invariant and return the configuration.
    ///
    /// # Errors
    /// Returns the first violated invariant as a [`ConfigError`]; see
    /// [`Config::validate`] for the full list.
    pub fn build(self) -> Result<Config, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_figure_11() {
        let c = Config::default();
        assert_eq!((c.wsf, c.wfp, c.wur, c.wm), (1, 1, 2, 3));
        assert_eq!(c.ell, 50);
        assert_eq!(c.num_testcases, 32);
        assert!((c.beta - 0.1).abs() < 1e-12);
        assert!((c.pc - 0.16).abs() < 1e-12);
        assert!((c.po - 0.5).abs() < 1e-12);
        assert!((c.ps - 0.16).abs() < 1e-12);
        assert!((c.pi - 0.16).abs() < 1e-12);
        assert!((c.pu - 0.16).abs() < 1e-12);
    }

    #[test]
    fn move_cdf_is_monotone_and_normalized() {
        let cdf = Config::default().move_cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_pool_excludes_rsp() {
        assert!(!Config::default().register_pool.contains(&Gpr::Rsp));
        assert_eq!(Config::default().register_pool.len(), 15);
    }

    #[test]
    fn builder_defaults_build_cleanly() {
        let built = Config::builder().build().expect("defaults are valid");
        assert_eq!(built.ell, Config::default().ell);
        let quick = ConfigBuilder::quick_test().build().expect("preset valid");
        assert_eq!(quick.threads, 1);
    }

    #[test]
    fn builder_rejects_negative_move_probability() {
        for field in ["pc", "po", "ps", "pi", "pu"] {
            let b = Config::builder();
            let b = match field {
                "pc" => b.pc(-0.1),
                "po" => b.po(-0.1),
                "ps" => b.ps(-0.1),
                "pi" => b.pi(-0.1),
                _ => b.pu(f64::NAN),
            };
            assert!(
                matches!(
                    b.build(),
                    Err(ConfigError::InvalidMoveProbability { field: f, .. }) if f == field
                ),
                "field {field} should be rejected"
            );
        }
    }

    #[test]
    fn builder_rejects_all_zero_move_probabilities() {
        let err = Config::builder().pc(0.0).po(0.0).ps(0.0).pi(0.0).build();
        assert_eq!(err, Err(ConfigError::AllMoveProbabilitiesZero));
    }

    #[test]
    fn builder_rejects_pu_above_one() {
        // pu is an absolute probability (unlike the normalized move-kind
        // weights): at pu >= 1.0 every instruction move proposes UNUSED.
        assert!(matches!(
            Config::builder().pu(1.5).build(),
            Err(ConfigError::UnusedProbabilityOutOfRange { .. })
        ));
        assert!(Config::builder().pu(1.0).build().is_ok());
        // The other move probabilities are weights and may exceed 1.
        assert!(Config::builder().po(5.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_ell() {
        assert_eq!(
            Config::builder().ell(0).build(),
            Err(ConfigError::ZeroRewriteLength)
        );
    }

    #[test]
    fn builder_rejects_empty_pools() {
        assert_eq!(
            Config::builder().opcode_pool(Vec::new()).build(),
            Err(ConfigError::EmptyOpcodePool)
        );
        assert_eq!(
            Config::builder().register_pool(Vec::new()).build(),
            Err(ConfigError::EmptyRegisterPool)
        );
    }

    #[test]
    fn builder_rejects_bad_rerank_margin() {
        assert!(matches!(
            Config::builder().rerank_margin(0.5).build(),
            Err(ConfigError::RerankMarginTooSmall { .. })
        ));
        assert!(matches!(
            Config::builder().rerank_margin(f64::NAN).build(),
            Err(ConfigError::RerankMarginTooSmall { .. })
        ));
        assert!(Config::builder().rerank_margin(1.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_threads() {
        assert_eq!(
            Config::builder().threads(0).build(),
            Err(ConfigError::ZeroThreads)
        );
    }

    #[test]
    fn builder_rejects_degenerate_scalars() {
        // A NaN or zero beta silently turns Metropolis acceptance into
        // "accept everything"; a negative perf weight rewards slower code;
        // an empty test suite makes every rewrite cost 0.
        assert!(matches!(
            Config::builder().beta(f64::NAN).build(),
            Err(ConfigError::InvalidBeta { .. })
        ));
        assert!(matches!(
            Config::builder().beta(0.0).build(),
            Err(ConfigError::InvalidBeta { .. })
        ));
        assert!(matches!(
            Config::builder().perf_weight(-1.0).build(),
            Err(ConfigError::InvalidPerfWeight { .. })
        ));
        assert!(Config::builder().perf_weight(0.0).build().is_ok());
        assert_eq!(
            Config::builder().num_testcases(0).build(),
            Err(ConfigError::ZeroTestcases)
        );
    }

    #[test]
    fn backend_defaults_parses_and_builds() {
        assert_eq!(Config::default().backend, BackendSpec::Batched);
        assert_eq!("interp".parse(), Ok(BackendSpec::Interp));
        assert_eq!("prepared".parse(), Ok(BackendSpec::Prepared));
        assert_eq!("batched".parse(), Ok(BackendSpec::Batched));
        assert_eq!("incremental".parse(), Ok(BackendSpec::Incremental));
        assert_eq!(
            "jit".parse::<BackendSpec>(),
            Err(ConfigError::UnknownBackend {
                name: "jit".to_string()
            })
        );
        let c = Config::builder()
            .backend(BackendSpec::Interp)
            .build()
            .unwrap();
        assert_eq!(c.backend, BackendSpec::Interp);
    }

    #[test]
    fn incremental_knobs_default_off_and_build() {
        let c = Config::default();
        assert_eq!(c.checkpoint_interval, 0, "0 means auto-tune from length");
        assert_eq!(c.reorder_interval, 0, "adaptive ordering is opt-in");
        let c = Config::builder()
            .backend(BackendSpec::Incremental)
            .checkpoint_interval(4)
            .reorder_interval(64)
            .build()
            .unwrap();
        assert_eq!(c.backend, BackendSpec::Incremental);
        assert_eq!(c.checkpoint_interval, 4);
        assert_eq!(c.reorder_interval, 64);
    }

    #[test]
    fn builder_rejects_bad_constant_time_penalty() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                Config::builder()
                    .cost_model(CostModelSpec::ConstantTime { penalty: bad })
                    .build(),
                Err(ConfigError::InvalidCostWeight {
                    field: "penalty",
                    ..
                })
            ));
        }
        assert!(Config::builder()
            .cost_model(CostModelSpec::ConstantTime { penalty: 16.0 })
            .build()
            .is_ok());
    }

    #[test]
    fn verifier_and_strip_dead_code_default_off() {
        use crate::verifier::VerifierSpec;
        let c = Config::default();
        assert_eq!(c.verifier, VerifierSpec::Cascade);
        assert!(!c.strip_dead_code);
        let c = Config::builder()
            .verifier(VerifierSpec::LeakageCascade)
            .strip_dead_code(true)
            .build()
            .unwrap();
        assert_eq!(c.verifier, VerifierSpec::LeakageCascade);
        assert!(c.strip_dead_code);
    }

    #[test]
    fn builder_from_config_preserves_fields() {
        let mut base = Config::quick_test();
        base.seed = 42;
        let rebuilt = ConfigBuilder::from_config(base.clone()).build().unwrap();
        assert_eq!(rebuilt.seed, 42);
        assert_eq!(rebuilt.ell, base.ell);
    }

    // Regression test for the raw-struct escape hatch: an all-zero move
    // distribution used to divide by zero inside `move_cdf` and poison the
    // proposal sampler with NaN. The builder makes it unrepresentable; raw
    // construction now trips a debug assertion.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must not all be zero")]
    fn move_cdf_asserts_on_all_zero_probabilities() {
        let config = Config {
            pc: 0.0,
            po: 0.0,
            ps: 0.0,
            pi: 0.0,
            ..Config::default()
        };
        let _ = config.move_cdf();
    }
}
