//! Pluggable cost models: the scoring stage of the evaluation pipeline.
//!
//! The paper's architecture has three replaceable stages — test-case cost,
//! stochastic search, and symbolic validation. This module opens the first
//! into a trait: a [`CostModel`] maps a prepared rewrite to a [`Cost`]
//! with a per-term breakdown, and the MCMC chain
//! ([`Chain`](crate::mcmc::Chain)) drives any model through the same
//! early-terminating Metropolis–Hastings acceptance computation (§4.5).
//!
//! Three models ship with the crate:
//!
//! - [`PaperCost`] — the paper's metric (Equations 8/11/13/15), the
//!   default for the optimization phase;
//! - [`CorrectnessOnly`] — a combinator dropping the performance term,
//!   which is exactly the synthesis phase of §4.4 (`perf_weight = 0`) as
//!   its own model;
//! - [`Weighted`] — a combinator rescaling the two terms of an inner
//!   model.
//!
//! Third-party models plug in through [`CostModelFactory`] and
//! [`CostModelSpec::Custom`], selected per search via
//! [`Config::cost_model`](crate::config::Config::cost_model) or
//! [`ConfigBuilder::cost_model`](crate::config::ConfigBuilder::cost_model):
//!
//! ```
//! use stoke::{
//!     Config, Cost, CostModel, CostModelFactory, CostModelSpec, EvalContext, Session,
//!     TargetSpec,
//! };
//! use std::sync::Arc;
//! use stoke_emu::PreparedProgram;
//! use stoke_x86::{Gpr, Program};
//!
//! /// Scores rewrites by test-case correctness plus instruction *count*
//! /// (shortest code wins, whatever its latency).
//! struct FewestInstructions;
//!
//! impl CostModel for FewestInstructions {
//!     fn name(&self) -> &'static str {
//!         "fewest-instructions"
//!     }
//!     fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, _ctx: &mut EvalContext<'_>) -> f64 {
//!         rewrite.len() as f64
//!     }
//!     fn correctness_term(
//!         &mut self,
//!         rewrite: &PreparedProgram<'_>,
//!         bound: Option<f64>,
//!         ctx: &mut EvalContext<'_>,
//!     ) -> Option<f64> {
//!         // Delegate the correctness half to the paper's metric.
//!         stoke::PaperCost.correctness_term(rewrite, bound, ctx)
//!     }
//! }
//!
//! struct FewestInstructionsFactory;
//! impl CostModelFactory for FewestInstructionsFactory {
//!     fn optimization_model(&self) -> Box<dyn CostModel> {
//!         Box::new(FewestInstructions)
//!     }
//! }
//!
//! let config = Config::builder()
//!     .cost_model(CostModelSpec::Custom(Arc::new(FewestInstructionsFactory)))
//!     .synthesis_iterations(500)
//!     .optimization_iterations(2_000)
//!     .num_testcases(4)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
//! let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
//! let result = Session::new(config).run(&spec).unwrap();
//! assert!(result.speedup() >= 1.0);
//! ```

use crate::config::Config;
use crate::cost::{eq_prime_backend, EvalScratch, EvalStats};
use crate::testcase::TestSuite;
use std::fmt;
use std::sync::Arc;
use stoke_emu::PreparedProgram;

/// A scored rewrite, broken down into the two terms of the paper's cost
/// function `c(R; T) = eq'(R; T, τ) + perf(R)` (Equations 8 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// The correctness term (`eq'`), in bits of Hamming distance plus
    /// fault penalties. Zero means the rewrite passed every test case.
    pub correctness: f64,
    /// The (weighted) performance term.
    pub performance: f64,
}

impl Cost {
    /// A cost made only of a correctness term.
    pub fn correctness(value: f64) -> Cost {
        Cost {
            correctness: value,
            performance: 0.0,
        }
    }

    /// The total cost minimized by the search.
    pub fn total(&self) -> f64 {
        self.correctness + self.performance
    }

    /// Whether the rewrite passed every test case (`eq' == 0`); only such
    /// candidates may enter the re-rank and verification stage.
    pub fn is_correct(&self) -> bool {
        self.correctness == 0.0
    }
}

/// Everything a cost model may consult while scoring a rewrite: the search
/// configuration, the (counterexample-refined) test suite, the target's
/// static latency, and the evaluation statistics to update.
///
/// Borrowed per evaluation from the chain's [`CostFn`](crate::cost::CostFn)
/// via [`CostFn::eval_context`](crate::cost::CostFn::eval_context), so a
/// model always sees the latest suite refinements.
pub struct EvalContext<'a> {
    /// The search configuration.
    pub config: &'a Config,
    /// The test suite `τ` the rewrite is evaluated on.
    pub suite: &'a TestSuite,
    /// Reusable evaluation buffers (the batched backend's scratch state),
    /// so models evaluating through
    /// [`Config::backend`](crate::config::Config::backend) stay
    /// allocation-free across proposals.
    pub scratch: &'a mut EvalScratch,
    /// Static latency of the target, `H(T)`.
    pub target_latency: u64,
    /// Evaluation statistics (evaluations, test cases run, early
    /// terminations) the model must keep up to date.
    pub stats: &'a mut EvalStats,
    /// One-shot prefix-reuse hint for the incremental backend: `Some(f)`
    /// promises that the first `f` dense instructions of the rewrite being
    /// scored are identical to the baseline last committed through
    /// [`CostFn::commit_baseline`](crate::cost::CostFn::commit_baseline);
    /// `None` requests a full evaluation. Models that evaluate through the
    /// configured backend should `take()` it and pass it down (as
    /// [`PaperCost`] does); every backend other than the incremental one
    /// ignores it, so forwarding is always safe.
    pub reuse_prefix: Option<usize>,
}

/// A pluggable scoring policy for candidate rewrites.
///
/// The cost is split into a correctness term and a performance term so
/// that the chain can run the early-termination acceptance computation of
/// §4.5 for *any* model: the (cheap, static) performance term is computed
/// first, the remaining budget is passed to
/// [`correctness_term`](CostModel::correctness_term) as a bound, and
/// evaluation stops as soon as the bound is exceeded.
///
/// Models are built per chain by a [`CostModelFactory`] (or one of the
/// built-in [`CostModelSpec`] variants), so `&mut self` state is
/// chain-local; share cross-chain state through `Arc` fields captured at
/// factory time.
pub trait CostModel: Send {
    /// A short human-readable name, for diagnostics.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// The performance term of `rewrite` (the `perf(·)` of Equation 13 in
    /// the paper's model). Must be cheap: it is evaluated on every
    /// proposal *before* any test case runs.
    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64;

    /// The correctness term of `rewrite` (the `eq'(·)` of Equation 8 in
    /// the paper's model).
    ///
    /// With `bound = Some(b)` the model may stop evaluating as soon as the
    /// term provably exceeds `b` and return `None` — the proposal is then
    /// rejected without running the remaining test cases (§4.5). With
    /// `bound = None` the model must evaluate fully and return `Some`.
    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64>;

    /// Fully score `rewrite`, returning the per-term breakdown.
    fn score(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> Cost {
        let correctness = self
            .correctness_term(rewrite, None, ctx)
            .expect("an unbounded correctness evaluation always completes");
        let performance = self.perf_term(rewrite, ctx);
        Cost {
            correctness,
            performance,
        }
    }
}

impl CostModel for Box<dyn CostModel> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64 {
        (**self).perf_term(rewrite, ctx)
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        (**self).correctness_term(rewrite, bound, ctx)
    }

    fn score(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> Cost {
        (**self).score(rewrite, ctx)
    }
}

/// The paper's cost metric: `eq'` over the test suite (Equations 8/11/15)
/// plus the weighted static-latency heuristic (Equation 13). The default
/// model of the optimization phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperCost;

impl CostModel for PaperCost {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64 {
        ctx.config.perf_weight * rewrite.static_latency() as f64
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        let reuse = ctx.reuse_prefix.take();
        eq_prime_backend(
            ctx.config,
            ctx.suite,
            rewrite,
            ctx.scratch,
            ctx.stats,
            bound,
            reuse,
        )
        .0
        .map(|eq| eq as f64)
    }
}

/// A combinator dropping the performance term of an inner model: the
/// synthesis phase of §4.4 (`perf_weight = 0`) as its own model. The
/// default model of the synthesis phase, over [`PaperCost`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CorrectnessOnly<M = PaperCost> {
    inner: M,
}

impl<M: CostModel> CorrectnessOnly<M> {
    /// Keep only the correctness term of `inner`.
    pub fn new(inner: M) -> CorrectnessOnly<M> {
        CorrectnessOnly { inner }
    }
}

impl<M: CostModel> CostModel for CorrectnessOnly<M> {
    fn name(&self) -> &'static str {
        "correctness-only"
    }

    fn perf_term(&mut self, _rewrite: &PreparedProgram<'_>, _ctx: &mut EvalContext<'_>) -> f64 {
        0.0
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        self.inner.correctness_term(rewrite, bound, ctx)
    }
}

/// A combinator rescaling the two terms of an inner model:
/// `correctness · eq' + performance · perf`. Weights must be finite and
/// non-negative, and the correctness weight strictly positive (enforced
/// by [`Config::validate`](crate::config::Config::validate) when selected
/// through [`CostModelSpec::Weighted`]). Constructed directly with a zero
/// correctness weight, the correctness term short-circuits to `0.0`
/// without running any test case — every rewrite then scores as
/// "correct", so such a model is only useful for measurement harnesses,
/// never for a real search.
#[derive(Debug, Clone, Copy)]
pub struct Weighted<M = PaperCost> {
    inner: M,
    correctness: f64,
    performance: f64,
}

impl<M: CostModel> Weighted<M> {
    /// Scale `inner`'s terms by the given weights.
    pub fn new(inner: M, correctness: f64, performance: f64) -> Weighted<M> {
        debug_assert!(correctness.is_finite() && correctness >= 0.0);
        debug_assert!(performance.is_finite() && performance >= 0.0);
        Weighted {
            inner,
            correctness,
            performance,
        }
    }
}

impl<M: CostModel> CostModel for Weighted<M> {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64 {
        self.performance * self.inner.perf_term(rewrite, ctx)
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        if self.correctness == 0.0 {
            // The term is identically zero; skip the test cases entirely.
            return Some(0.0);
        }
        self.inner
            .correctness_term(rewrite, bound.map(|b| b / self.correctness), ctx)
            .map(|c| c * self.correctness)
    }
}

/// A combinator adding a fixed penalty per constant-time violation of the
/// rewrite, on top of an inner model's performance term.
///
/// Violations are computed by the static taint analysis of
/// [`stoke_analysis`]: instructions whose memory-operand address, shift
/// count or division operands derive from an input marked secret
/// ([`InputSpec::secret`](crate::InputSpec::secret)). With no secret
/// inputs the combinator is exactly its inner model.
///
/// The analysis runs once per proposal on the already-prepared rewrite
/// (sharing its decoded use lists), so the overhead is a few hundred
/// nanoseconds — measured by `bench-analysis` in `BENCH_analysis.json`.
///
/// ```
/// use stoke::{Config, CostModelSpec, InputSpec, TargetSpec};
/// use stoke_analysis::{constant_time_violations, LeakKind};
/// use stoke_x86::flow::LocSet;
/// use stoke_x86::{Gpr, Program};
///
/// // rax = rsi << (rdi & 32), where rdi holds a secret. The branchless
/// // target is constant-time; the "obvious" shorter rewrite is not:
/// let leaky: Program = "movq rdi, rcx\nshlq cl, rax".parse().unwrap();
/// let secrets = LocSet::from_gprs([Gpr::Rdi]);
/// let violations = constant_time_violations(leaky.iter(), &secrets);
/// assert_eq!(violations[0].kind, LeakKind::SecretShiftCount);
///
/// // Secrets are annotated on the target's interface, and the penalty is
/// // selected through the config; each violation then adds 16.0 to the
/// // rewrite's cost, steering the search toward constant-time code.
/// let spec = TargetSpec::new(
///     "movq rsi, rax".parse().unwrap(),
///     vec![InputSpec::value64(Gpr::Rdi).secret(), InputSpec::value64(Gpr::Rsi)],
///     LocSet::from_gprs([Gpr::Rax]),
/// );
/// assert!(spec.secret_inputs().gprs.contains(&Gpr::Rdi));
/// let config = Config::builder()
///     .cost_model(CostModelSpec::ConstantTime { penalty: 16.0 })
///     .build()
///     .unwrap();
/// assert_eq!(config.cost_model.optimization_model().name(), "constant-time");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantTimePenalty<M = PaperCost> {
    inner: M,
    penalty: f64,
}

impl<M: CostModel> ConstantTimePenalty<M> {
    /// Add `penalty` per constant-time violation to `inner`'s performance
    /// term. The penalty must be finite and non-negative (enforced by
    /// [`Config::validate`](crate::config::Config::validate) when selected
    /// through [`CostModelSpec::ConstantTime`]).
    pub fn new(inner: M, penalty: f64) -> ConstantTimePenalty<M> {
        debug_assert!(penalty.is_finite() && penalty >= 0.0);
        ConstantTimePenalty { inner, penalty }
    }
}

impl<M: CostModel> CostModel for ConstantTimePenalty<M> {
    fn name(&self) -> &'static str {
        "constant-time"
    }

    fn perf_term(&mut self, rewrite: &PreparedProgram<'_>, ctx: &mut EvalContext<'_>) -> f64 {
        let base = self.inner.perf_term(rewrite, ctx);
        if ctx.suite.secrets.is_empty() {
            return base;
        }
        let violations =
            stoke_analysis::constant_time_violations(rewrite.instructions(), &ctx.suite.secrets);
        base + self.penalty * violations.len() as f64
    }

    fn correctness_term(
        &mut self,
        rewrite: &PreparedProgram<'_>,
        bound: Option<f64>,
        ctx: &mut EvalContext<'_>,
    ) -> Option<f64> {
        self.inner.correctness_term(rewrite, bound, ctx)
    }
}

/// Builds fresh [`CostModel`] instances for each chain of a search.
///
/// A search runs several chains in parallel (and a batch runs several
/// targets in parallel), each needing its own `&mut` model, hence the
/// factory indirection. Share state across instances with `Arc` fields.
pub trait CostModelFactory: Send + Sync {
    /// The model of the optimization phase (correctness + performance,
    /// §4.4).
    fn optimization_model(&self) -> Box<dyn CostModel>;

    /// The model of the synthesis phase. Defaults to the optimization
    /// model with its performance term dropped ([`CorrectnessOnly`]), the
    /// paper's synthesis formulation.
    fn synthesis_model(&self) -> Box<dyn CostModel> {
        Box::new(CorrectnessOnly::new(self.optimization_model()))
    }
}

/// Which cost model a search uses, selected through
/// [`Config::cost_model`](crate::config::Config::cost_model).
#[derive(Clone, Default)]
pub enum CostModelSpec {
    /// [`PaperCost`] for optimization, [`CorrectnessOnly`] over it for
    /// synthesis — the paper's pipeline and the default.
    #[default]
    Paper,
    /// [`CorrectnessOnly`] for both phases: optimization stops rewarding
    /// speed and searches for *any* equivalent code (useful for pure
    /// synthesis experiments).
    CorrectnessOnly,
    /// [`Weighted`] over [`PaperCost`] for optimization (and its
    /// correctness-only projection for synthesis). Both weights must be
    /// finite and non-negative, and `correctness` strictly positive.
    Weighted {
        /// Scale of the correctness term.
        correctness: f64,
        /// Scale of the performance term.
        performance: f64,
    },
    /// [`ConstantTimePenalty`] over [`PaperCost`] for optimization (and
    /// plain [`CorrectnessOnly`] for synthesis): each statically detected
    /// secret-dependent memory address, shift count or division adds
    /// `penalty` to the cost. The penalty must be finite and non-negative.
    ConstantTime {
        /// Cost added per constant-time violation.
        penalty: f64,
    },
    /// A third-party model built by the given factory.
    Custom(Arc<dyn CostModelFactory>),
}

impl CostModelSpec {
    /// Build the optimization-phase model.
    pub fn optimization_model(&self) -> Box<dyn CostModel> {
        match self {
            CostModelSpec::Paper => Box::new(PaperCost),
            CostModelSpec::CorrectnessOnly => Box::<CorrectnessOnly>::default(),
            CostModelSpec::Weighted {
                correctness,
                performance,
            } => Box::new(Weighted::new(PaperCost, *correctness, *performance)),
            CostModelSpec::ConstantTime { penalty } => {
                Box::new(ConstantTimePenalty::new(PaperCost, *penalty))
            }
            CostModelSpec::Custom(factory) => factory.optimization_model(),
        }
    }

    /// Build the synthesis-phase model.
    pub fn synthesis_model(&self) -> Box<dyn CostModel> {
        match self {
            CostModelSpec::Paper
            | CostModelSpec::CorrectnessOnly
            | CostModelSpec::ConstantTime { .. } => Box::<CorrectnessOnly>::default(),
            CostModelSpec::Weighted {
                correctness,
                performance,
            } => Box::new(CorrectnessOnly::new(Weighted::new(
                PaperCost,
                *correctness,
                *performance,
            ))),
            CostModelSpec::Custom(factory) => factory.synthesis_model(),
        }
    }
}

impl fmt::Debug for CostModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelSpec::Paper => write!(f, "Paper"),
            CostModelSpec::CorrectnessOnly => write!(f, "CorrectnessOnly"),
            CostModelSpec::Weighted {
                correctness,
                performance,
            } => f
                .debug_struct("Weighted")
                .field("correctness", correctness)
                .field("performance", performance)
                .finish(),
            CostModelSpec::ConstantTime { penalty } => f
                .debug_struct("ConstantTime")
                .field("penalty", penalty)
                .finish(),
            CostModelSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PartialEq for CostModelSpec {
    fn eq(&self, other: &CostModelSpec) -> bool {
        match (self, other) {
            (CostModelSpec::Paper, CostModelSpec::Paper) => true,
            (CostModelSpec::CorrectnessOnly, CostModelSpec::CorrectnessOnly) => true,
            (
                CostModelSpec::Weighted {
                    correctness: ac,
                    performance: ap,
                },
                CostModelSpec::Weighted {
                    correctness: bc,
                    performance: bp,
                },
            ) => ac == bc && ap == bp,
            (
                CostModelSpec::ConstantTime { penalty: a },
                CostModelSpec::ConstantTime { penalty: b },
            ) => a == b,
            // Custom factories are opaque: equal only if they are the same
            // allocation.
            (CostModelSpec::Custom(a), CostModelSpec::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::cost::CostFn;
    use crate::testcase::{generate_testcases, TargetSpec};
    use stoke_x86::{Gpr, Program};

    fn cost_fn() -> CostFn {
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
        let suite = generate_testcases(&spec, 8, 42);
        CostFn::new(Config::quick_test(), suite, target.static_latency())
    }

    #[test]
    fn paper_cost_matches_cost_fn() {
        let mut cf = cost_fn();
        let program: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        let instrs: Vec<_> = program.iter().cloned().collect();
        let expected_eq = cf.eq_prime(&instrs) as f64;
        let expected_perf = cf.perf_term(&instrs);
        let prepared = stoke_emu::PreparedProgram::of_program(&program);
        let cost = PaperCost.score(&prepared, &mut cf.eval_context());
        assert_eq!(cost.correctness, expected_eq);
        assert_eq!(cost.performance, expected_perf);
        assert_eq!(cost.total(), expected_eq + expected_perf);
        assert!(!cost.is_correct());
    }

    #[test]
    fn correctness_only_drops_the_perf_term() {
        let mut cf = cost_fn();
        let program: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let prepared = stoke_emu::PreparedProgram::of_program(&program);
        let cost = CorrectnessOnly::<PaperCost>::default().score(&prepared, &mut cf.eval_context());
        assert_eq!(cost.performance, 0.0);
        assert!(cost.is_correct(), "the target scores eq' == 0 on itself");
    }

    #[test]
    fn weighted_rescales_both_terms() {
        let mut cf = cost_fn();
        let program: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        let prepared = stoke_emu::PreparedProgram::of_program(&program);
        let base = PaperCost.score(&prepared, &mut cf.eval_context());
        let scaled = Weighted::new(PaperCost, 2.0, 0.5).score(&prepared, &mut cf.eval_context());
        assert_eq!(scaled.correctness, 2.0 * base.correctness);
        assert_eq!(scaled.performance, 0.5 * base.performance);
        // A zero correctness weight skips test execution entirely.
        let before = cf.stats.testcases_run;
        let zero = Weighted::new(PaperCost, 0.0, 1.0).correctness_term(
            &prepared,
            None,
            &mut cf.eval_context(),
        );
        assert_eq!(zero, Some(0.0));
        assert_eq!(cf.stats.testcases_run, before);
    }

    #[test]
    fn bounded_evaluation_early_terminates_through_the_trait() {
        let mut cf = cost_fn();
        let wrong: Program = "movq 0, rax".parse().unwrap();
        let prepared = stoke_emu::PreparedProgram::of_program(&wrong);
        let res = PaperCost.correctness_term(&prepared, Some(5.0), &mut cf.eval_context());
        assert_eq!(res, None);
        assert_eq!(cf.stats.early_terminations, 1);
    }

    #[test]
    fn constant_time_penalty_charges_violations() {
        use crate::testcase::InputSpec;
        use stoke_x86::flow::LocSet;
        let target: Program = "movq rsi, rax\nshlq 2, rax".parse().unwrap();
        let spec = TargetSpec::new(
            target.clone(),
            vec![
                InputSpec::value64(Gpr::Rdi).secret(),
                InputSpec::value64(Gpr::Rsi),
            ],
            LocSet::from_gprs([Gpr::Rax]),
        );
        let suite = generate_testcases(&spec, 4, 1);
        let mut cf = CostFn::new(Config::quick_test(), suite, target.static_latency());
        let leaky: Program = "movq rdi, rcx\nmovq rsi, rax\nshlq cl, rax"
            .parse()
            .unwrap();
        let prepared = stoke_emu::PreparedProgram::of_program(&leaky);
        let base = PaperCost.perf_term(&prepared, &mut cf.eval_context());
        let penalized =
            ConstantTimePenalty::new(PaperCost, 16.0).perf_term(&prepared, &mut cf.eval_context());
        assert_eq!(penalized, base + 16.0, "one violation, one penalty");
        let clean = stoke_emu::PreparedProgram::of_program(&target);
        let base = PaperCost.perf_term(&clean, &mut cf.eval_context());
        let penalized =
            ConstantTimePenalty::new(PaperCost, 16.0).perf_term(&clean, &mut cf.eval_context());
        assert_eq!(penalized, base, "constant-time code pays nothing");
    }

    #[test]
    fn spec_selects_models() {
        assert_eq!(CostModelSpec::Paper.optimization_model().name(), "paper");
        assert_eq!(
            CostModelSpec::Paper.synthesis_model().name(),
            "correctness-only"
        );
        assert_eq!(
            CostModelSpec::CorrectnessOnly.optimization_model().name(),
            "correctness-only"
        );
        assert_eq!(
            CostModelSpec::Weighted {
                correctness: 1.0,
                performance: 2.0
            }
            .optimization_model()
            .name(),
            "weighted"
        );
    }

    #[test]
    fn spec_equality_and_debug() {
        assert_eq!(CostModelSpec::Paper, CostModelSpec::Paper);
        assert_ne!(CostModelSpec::Paper, CostModelSpec::CorrectnessOnly);
        struct F;
        impl CostModelFactory for F {
            fn optimization_model(&self) -> Box<dyn CostModel> {
                Box::new(PaperCost)
            }
        }
        let a = Arc::new(F);
        let spec_a = CostModelSpec::Custom(a.clone());
        assert_eq!(spec_a, CostModelSpec::Custom(a));
        assert_ne!(spec_a, CostModelSpec::Custom(Arc::new(F)));
        assert_eq!(format!("{spec_a:?}"), "Custom(..)");
    }
}
