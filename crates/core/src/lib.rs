//! # stoke
//!
//! A reproduction of **"Stochastic Superoptimization"** (Schkufza, Sharma,
//! Aiken — ASPLOS 2013): loop-free binary superoptimization formulated as
//! stochastic cost minimization and explored with a Metropolis–Hastings
//! sampler.
//!
//! The crate provides the search layer: test-case generation
//! ([`testcase`]), the cost function with the strict and improved equality
//! metrics ([`cost`]), the four proposal moves and the MCMC chain with
//! early-termination acceptance ([`mcmc`]), and the full
//! synthesis → optimization → validation → re-ranking pipeline
//! ([`search`], Figure 9 of the paper). The execution and verification
//! substrates live in the companion crates `stoke-emu` and `stoke-verify`.
//!
//! ```
//! use stoke::{Config, Stoke, TargetSpec};
//! use stoke_x86::{Gpr, Program};
//!
//! // A clumsy `llvm -O0`-style computation of rax = rdi + rsi.
//! let target: Program = "
//!     movq rdi, rbx
//!     movq rbx, rax
//!     addq rsi, rax
//! ".parse().unwrap();
//! let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
//! let mut config = Config::quick_test();
//! config.synthesis_iterations = 1_000;
//! config.optimization_iterations = 5_000;
//! let result = Stoke::new(config, spec).run();
//! assert!(result.speedup() >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod mcmc;
pub mod search;
pub mod testcase;

pub use config::{Config, EqMetric};
pub use cost::{CaseCost, CostFn, EvalStats};
pub use mcmc::{Chain, ChainResult, MoveKind, Proposer, Rewrite, TracePoint};
pub use search::{SearchStats, Stoke, StokeResult, Verification};
pub use testcase::{generate_testcases, InputKind, InputSpec, TargetSpec, TestSuite, Testcase};
