//! # stoke
//!
//! A reproduction of **"Stochastic Superoptimization"** (Schkufza, Sharma,
//! Aiken — ASPLOS 2013): loop-free binary superoptimization formulated as
//! stochastic cost minimization and explored with a Metropolis–Hastings
//! sampler.
//!
//! The crate provides the search layer: test-case generation
//! ([`testcase`]), the cost function with the strict and improved equality
//! metrics ([`cost`]), the four proposal moves and the MCMC chain with
//! early-termination acceptance ([`mcmc`]), and the full
//! synthesis → optimization → validation → re-ranking pipeline of the
//! paper's Figure 9, driven through the session API ([`driver`]):
//! validated configuration ([`Config::builder`]), typed errors
//! ([`StokeError`]), wall-clock/proposal budgets with cancellation
//! ([`Budget`]), progress observers ([`SearchObserver`]), and a
//! multi-target batch entry point ([`Session::run_batch`]).
//!
//! The evaluation pipeline is pluggable at its two replaceable stages:
//! cost models implement [`CostModel`] (selected per search through
//! [`Config::cost_model`](config::Config::cost_model); the paper's metric
//! is [`PaperCost`]) and validation strategies implement [`Verifier`]
//! (installed with [`Session::with_verifier`]; the default [`Cascade`]
//! runs tests, then the symbolic validator with counterexample feedback).
//! Both evaluate rewrites through the execution backend selected by
//! [`Config::backend`](config::Config::backend) ([`BackendSpec`]) — the
//! batched structure-of-arrays [`stoke_emu::BatchedProgram`] by default,
//! with the decode-once [`stoke_emu::PreparedProgram`] and the plain
//! interpreter as bit-identical reference semantics. The execution and
//! verification substrates live in the companion crates `stoke-emu` and
//! `stoke-verify`.
//!
//! Security-aware search builds on the static analyses of the companion
//! `stoke-analysis` crate: inputs marked secret
//! ([`InputSpec::secret`](testcase::InputSpec::secret)) drive the
//! [`ConstantTimePenalty`] cost model and the [`LeakageCheck`] verifier
//! ([`VerifierSpec::LeakageCascade`]), which together steer the search
//! away from rewrites that leak secrets through timing side channels.
//!
//! ```
//! use stoke::{Config, Session, TargetSpec};
//! use stoke_x86::{Gpr, Program};
//!
//! // A clumsy `llvm -O0`-style computation of rax = rdi + rsi.
//! let target: Program = "
//!     movq rdi, rbx
//!     movq rbx, rax
//!     addq rsi, rax
//! ".parse().unwrap();
//! let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
//! let config = Config::builder()
//!     .ell(8)
//!     .num_testcases(8)
//!     .threads(1)
//!     .synthesis_iterations(1_000)
//!     .optimization_iterations(5_000)
//!     .build()
//!     .expect("valid configuration");
//! let result = Session::new(config).run(&spec).expect("search completes");
//! assert!(result.speedup() >= 1.0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod driver;
pub mod error;
pub mod mcmc;
pub mod model;
pub mod observer;
pub mod search;
pub mod telemetry;
pub mod testcase;
pub mod verifier;

pub use config::{BackendSpec, Config, ConfigBuilder, EqMetric};
pub use cost::{CaseCost, CostFn, EvalScratch, EvalStats};
pub use driver::{Budget, BudgetClock, CancelToken, ChainControl, RunRequest, Session};
pub use error::{ConfigError, StokeError};
pub use mcmc::{
    Chain, ChainResult, EditSpan, MoveKind, MoveStats, Proposer, Rewrite, StopReason, TracePoint,
};
pub use model::{
    ConstantTimePenalty, CorrectnessOnly, Cost, CostModel, CostModelFactory, CostModelSpec,
    EvalContext, PaperCost, Weighted,
};
pub use observer::{
    ChainProgress, ChainStats, CollectingObserver, NullObserver, Phase, SearchEvent,
    SearchObserver, TeeObserver, ValidationVerdict,
};
pub use search::{SearchStats, StokeResult, Verification};
pub use telemetry::MetricsObserver;
pub use testcase::{generate_testcases, InputKind, InputSpec, TargetSpec, TestSuite, Testcase};
pub use verifier::{
    Cascade, LeakageCheck, Symbolic, TestOnly, Verdict, Verifier, VerifierSpec, VerifyContext,
    VerifyStatus,
};
