//! Results of the STOKE pipeline (Figure 9) and the deprecated blocking
//! [`Stoke`] front end.
//!
//! The pipeline itself — test case generation, parallel synthesis,
//! parallel optimization, validation with counterexample refinement, and
//! re-ranking — lives in the session driver ([`crate::driver`]); this
//! module keeps the result types ([`StokeResult`], [`SearchStats`],
//! [`Verification`]) and a thin shim preserving the old `Stoke::run()`
//! API for one release.

use crate::config::Config;
use crate::driver::Session;
use crate::error::StokeError;
use crate::testcase::{generate_testcases, TargetSpec, TestSuite};
use std::time::Duration;
use stoke_x86::Program;

/// The verification status of the returned rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// Proven equivalent to the target by the symbolic validator.
    Proven,
    /// Passed every test case, but the validator could not prove
    /// equivalence (typically due to the uninterpreted-function modelling
    /// of 64-bit multiplication); the paper reports such rewrites after
    /// manual inspection.
    TestsOnly,
    /// No rewrite better than the target was found; the target itself is
    /// returned.
    TargetReturned,
}

/// Statistics collected over a whole search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Wall-clock time spent in the synthesis phase.
    pub synthesis_time: Duration,
    /// Wall-clock time spent in the optimization phase.
    pub optimization_time: Duration,
    /// Proposals evaluated during synthesis.
    pub synthesis_proposals: u64,
    /// Proposals evaluated during optimization.
    pub optimization_proposals: u64,
    /// Test-case executions across both phases.
    pub testcases_run: u64,
    /// Symbolic validation queries issued.
    pub validations: u64,
    /// Counterexamples returned by the validator and added to the suite.
    pub counterexamples: u64,
    /// Whether any synthesis chain reached a zero-cost rewrite.
    pub synthesis_succeeded: bool,
}

/// The result of a STOKE run on one target.
#[derive(Debug, Clone)]
pub struct StokeResult {
    /// The best rewrite found (or the target if nothing better was found).
    pub rewrite: Program,
    /// How the rewrite was verified.
    pub verification: Verification,
    /// Static latency of the target (`H(T)`).
    pub target_latency: u64,
    /// Static latency of the rewrite (`H(R)`).
    pub rewrite_latency: u64,
    /// Timing-model cycles of the target.
    pub target_cycles: u64,
    /// Timing-model cycles of the rewrite.
    pub rewrite_cycles: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StokeResult {
    /// Estimated speedup of the rewrite over the target according to the
    /// timing model.
    pub fn speedup(&self) -> f64 {
        if self.rewrite_cycles == 0 {
            1.0
        } else {
            self.target_cycles as f64 / self.rewrite_cycles as f64
        }
    }
}

/// The original blocking, single-target search front end, kept for one
/// release as a shim over [`Session`].
///
/// Unlike a session, a `Stoke` cannot be budgeted, cancelled, observed, or
/// batched, and a configuration violating an invariant — previously
/// accepted silently — now panics at [`Stoke::run`]. Migrate to
/// [`Config::builder`](crate::config::Config::builder) +
/// [`Session`]; see `MIGRATION.md` at the repository root.
#[deprecated(
    since = "0.2.0",
    note = "use `Session` (with `Config::builder()`) instead; see MIGRATION.md"
)]
pub struct Stoke {
    config: Config,
    spec: TargetSpec,
    suite: TestSuite,
}

#[allow(deprecated)]
impl Stoke {
    /// Create a search for a target, generating test cases immediately
    /// (the instrumentation step of Figure 9).
    pub fn new(config: Config, spec: TargetSpec) -> Stoke {
        let suite = generate_testcases(&spec, config.num_testcases, config.seed);
        Stoke {
            config,
            spec,
            suite,
        }
    }

    /// Create a search reusing an existing test suite.
    pub fn with_suite(config: Config, spec: TargetSpec, suite: TestSuite) -> Stoke {
        Stoke {
            config,
            spec,
            suite,
        }
    }

    /// The generated test suite.
    pub fn suite(&self) -> &TestSuite {
        &self.suite
    }

    /// The target specification.
    pub fn spec(&self) -> &TargetSpec {
        &self.spec
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Run the complete pipeline of Figure 9 and return the best verified
    /// rewrite. As in the original API, counterexamples found during
    /// validation persist in [`Stoke::suite`] after the run.
    ///
    /// # Panics
    /// Panics if the configuration violates an invariant or the target is
    /// empty — conditions the old API accepted and then crashed on (or
    /// silently mis-optimized) deep inside the engine; [`Session::run`]
    /// returns them as typed errors instead.
    pub fn run(&mut self) -> StokeResult {
        let session = Session::new(self.config.clone());
        let (result, refined) = session.run_with_suite_refined(&self.spec, self.suite.clone());
        self.suite = refined;
        match result {
            Ok(result) => result,
            Err(StokeError::BudgetExhausted { partial }) => *partial,
            Err(e) => panic!("STOKE search failed: {e}"),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use stoke_x86::Gpr;

    fn quick_config() -> Config {
        Config {
            ell: 8,
            num_testcases: 8,
            synthesis_iterations: 5_000,
            optimization_iterations: 20_000,
            threads: 1,
            ..Config::default()
        }
    }

    fn clumsy_add() -> TargetSpec {
        let program: Program = "
            movq rdi, rbx
            movq rbx, rcx
            movq rcx, rax
            addq rsi, rax
            movq rax, rbx
            movq rbx, rax
        "
        .parse()
        .unwrap();
        TargetSpec::with_gprs(program, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
    }

    #[test]
    fn shim_agrees_with_session() {
        // The deprecated front end must produce exactly the result of the
        // session it delegates to (same config, same suite, same seed).
        let mut shim = Stoke::new(quick_config(), clumsy_add());
        let shim_result = shim.run();
        let session = Session::new(quick_config());
        let session_result = session.run(&clumsy_add()).expect("session run succeeds");
        assert_eq!(shim_result.rewrite, session_result.rewrite);
        assert_eq!(shim_result.verification, session_result.verification);
        assert_eq!(shim_result.rewrite_latency, session_result.rewrite_latency);
    }

    #[test]
    fn shim_persists_validator_counterexamples_in_its_suite() {
        // One test case lets a wrong optimization candidate reach the
        // validator; any counterexamples it produces must survive in the
        // shim's suite, as they did in the original API.
        let config = Config {
            num_testcases: 1,
            ..quick_config()
        };
        let mut shim = Stoke::new(config, clumsy_add());
        let before = shim.suite().len();
        let result = shim.run();
        assert_eq!(
            shim.suite().len(),
            before + result.stats.counterexamples as usize,
            "every counterexample must be appended to the shim's suite"
        );
    }

    #[test]
    #[should_panic(expected = "STOKE search failed")]
    fn shim_panics_on_invalid_config() {
        let config = Config {
            threads: 0,
            ..quick_config()
        };
        // Build via with_suite to skip test-case generation; the panic
        // must come from the validation inside run().
        let spec = clumsy_add();
        let suite = generate_testcases(&spec, 2, 1);
        Stoke::with_suite(config, spec, suite).run();
    }
}
