//! Results of the STOKE pipeline (Figure 9).
//!
//! The pipeline itself — test case generation, parallel synthesis,
//! parallel optimization, validation with counterexample refinement, and
//! re-ranking — lives in the session driver ([`crate::driver`]); this
//! module keeps the result types ([`StokeResult`], [`SearchStats`],
//! [`Verification`]). The deprecated blocking `Stoke` front end that used
//! to live here was removed after its one-release deprecation window; see
//! `MIGRATION.md` at the repository root for the `Session` mapping.

use crate::mcmc::MoveStats;
use std::time::Duration;
use stoke_x86::Program;

/// The verification status of the returned rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// Proven equivalent to the target by the symbolic validator.
    Proven,
    /// Passed every test case, but the validator could not prove
    /// equivalence (typically due to the uninterpreted-function modelling
    /// of 64-bit multiplication); the paper reports such rewrites after
    /// manual inspection.
    TestsOnly,
    /// No rewrite better than the target was found; the target itself is
    /// returned.
    TargetReturned,
}

/// Statistics collected over a whole search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Wall-clock time spent in the synthesis phase.
    pub synthesis_time: Duration,
    /// Wall-clock time spent in the optimization phase.
    pub optimization_time: Duration,
    /// Proposals evaluated during synthesis.
    pub synthesis_proposals: u64,
    /// Proposals evaluated during optimization.
    pub optimization_proposals: u64,
    /// Test-case executions across both phases.
    pub testcases_run: u64,
    /// Symbolic validation queries issued.
    pub validations: u64,
    /// Counterexamples returned by the validator and added to the suite.
    pub counterexamples: u64,
    /// Whether any synthesis chain reached a zero-cost rewrite.
    pub synthesis_succeeded: bool,
    /// Proposal and acceptance counts split by move kind, aggregated over
    /// every chain of both MCMC phases (the Figure 10 mixing diagnostics).
    pub moves: MoveStats,
    /// Candidates rejected by the relative-leakage gate (see
    /// [`LeakageCheck`](crate::verifier::LeakageCheck)) before reaching the
    /// symbolic validator.
    pub leakage_rejections: u64,
    /// End-to-end wall-clock time of this target's trip through the
    /// pipeline (test-case generation through re-ranking), stamped by the
    /// driver on both complete and budget-exhausted results. Unlike
    /// [`synthesis_time`](SearchStats::synthesis_time) /
    /// [`optimization_time`](SearchStats::optimization_time) this is
    /// per-target even under [`Session::run_batch`](crate::Session::run_batch),
    /// where the phase timers of concurrently scheduled targets overlap.
    pub total_time: Duration,
}

impl SearchStats {
    /// Proposals evaluated across both MCMC phases — the per-target search
    /// effort a service can bill a job for.
    pub fn total_proposals(&self) -> u64 {
        self.synthesis_proposals + self.optimization_proposals
    }
}

/// The result of a STOKE run on one target.
#[derive(Debug, Clone)]
pub struct StokeResult {
    /// The best rewrite found (or the target if nothing better was found).
    pub rewrite: Program,
    /// How the rewrite was verified.
    pub verification: Verification,
    /// Static latency of the target (`H(T)`).
    pub target_latency: u64,
    /// Static latency of the rewrite (`H(R)`).
    pub rewrite_latency: u64,
    /// Timing-model cycles of the target.
    pub target_cycles: u64,
    /// Timing-model cycles of the rewrite.
    pub rewrite_cycles: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StokeResult {
    /// Estimated speedup of the rewrite over the target according to the
    /// timing model.
    pub fn speedup(&self) -> f64 {
        if self.rewrite_cycles == 0 {
            1.0
        } else {
            self.target_cycles as f64 / self.rewrite_cycles as f64
        }
    }
}
