//! The full STOKE pipeline (Figure 9): test case generation, parallel
//! synthesis, parallel optimization, validation with counterexample
//! refinement, and re-ranking of the lowest-cost candidates by the timing
//! model.

use crate::config::Config;
use crate::cost::CostFn;
use crate::mcmc::{Chain, ChainResult, Rewrite};
use crate::testcase::{generate_testcases, TargetSpec, TestSuite};
use std::time::{Duration, Instant};
use stoke_emu::TimingModel;
use stoke_verify::{EquivResult, Validator};
use stoke_x86::Program;

/// The verification status of the returned rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// Proven equivalent to the target by the symbolic validator.
    Proven,
    /// Passed every test case, but the validator could not prove
    /// equivalence (typically due to the uninterpreted-function modelling
    /// of 64-bit multiplication); the paper reports such rewrites after
    /// manual inspection.
    TestsOnly,
    /// No rewrite better than the target was found; the target itself is
    /// returned.
    TargetReturned,
}

/// Statistics collected over a whole search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Wall-clock time spent in the synthesis phase.
    pub synthesis_time: Duration,
    /// Wall-clock time spent in the optimization phase.
    pub optimization_time: Duration,
    /// Proposals evaluated during synthesis.
    pub synthesis_proposals: u64,
    /// Proposals evaluated during optimization.
    pub optimization_proposals: u64,
    /// Test-case executions across both phases.
    pub testcases_run: u64,
    /// Symbolic validation queries issued.
    pub validations: u64,
    /// Counterexamples returned by the validator and added to the suite.
    pub counterexamples: u64,
    /// Whether any synthesis chain reached a zero-cost rewrite.
    pub synthesis_succeeded: bool,
}

/// The result of a STOKE run on one target.
#[derive(Debug, Clone)]
pub struct StokeResult {
    /// The best rewrite found (or the target if nothing better was found).
    pub rewrite: Program,
    /// How the rewrite was verified.
    pub verification: Verification,
    /// Static latency of the target (`H(T)`).
    pub target_latency: u64,
    /// Static latency of the rewrite (`H(R)`).
    pub rewrite_latency: u64,
    /// Timing-model cycles of the target.
    pub target_cycles: u64,
    /// Timing-model cycles of the rewrite.
    pub rewrite_cycles: u64,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StokeResult {
    /// Estimated speedup of the rewrite over the target according to the
    /// timing model.
    pub fn speedup(&self) -> f64 {
        if self.rewrite_cycles == 0 {
            1.0
        } else {
            self.target_cycles as f64 / self.rewrite_cycles as f64
        }
    }
}

/// The STOKE search engine for a single target.
pub struct Stoke {
    config: Config,
    spec: TargetSpec,
    suite: TestSuite,
}

impl Stoke {
    /// Create a search for a target, generating test cases immediately
    /// (the instrumentation step of Figure 9).
    pub fn new(config: Config, spec: TargetSpec) -> Stoke {
        let suite = generate_testcases(&spec, config.num_testcases, config.seed);
        Stoke {
            config,
            spec,
            suite,
        }
    }

    /// Create a search reusing an existing test suite.
    pub fn with_suite(config: Config, spec: TargetSpec, suite: TestSuite) -> Stoke {
        Stoke {
            config,
            spec,
            suite,
        }
    }

    /// The generated test suite.
    pub fn suite(&self) -> &TestSuite {
        &self.suite
    }

    /// The target specification.
    pub fn spec(&self) -> &TargetSpec {
        &self.spec
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    fn make_cost_fn(&self) -> CostFn {
        CostFn::new(
            self.config.clone(),
            self.suite.clone(),
            self.spec.program.static_latency(),
        )
    }

    /// Run one synthesis chain (§4.4: random starting point, correctness
    /// term only). Returns the chain result and the cost function used,
    /// so callers can inspect evaluation statistics.
    pub fn synthesis_chain(&self, seed: u64, iterations: u64) -> (ChainResult, CostFn) {
        let mut cost_fn = self.make_cost_fn();
        let mut chain = Chain::new(&mut cost_fn, seed, false);
        let start = chain.proposer_mut().random_rewrite();
        let result = chain.run(start, iterations);
        (result, cost_fn)
    }

    /// Run one optimization chain (§4.4: starts from a code sequence known
    /// or believed to be equivalent to the target; both cost terms).
    pub fn optimization_chain(
        &self,
        start: &Program,
        seed: u64,
        iterations: u64,
    ) -> (ChainResult, CostFn) {
        let mut cost_fn = self.make_cost_fn();
        let mut chain = Chain::new(&mut cost_fn, seed, true);
        let start = Rewrite::from_program(start, self.config.ell);
        let result = chain.run(start, iterations);
        (result, cost_fn)
    }

    /// Run synthesis on `threads` parallel chains and return every
    /// zero-cost rewrite found.
    pub fn parallel_synthesis(&self, stats: &mut SearchStats) -> Vec<Program> {
        let t0 = Instant::now();
        let threads = self.config.threads.max(1);
        let iterations = self.config.synthesis_iterations;
        let results: Vec<ChainResult> = if threads == 1 {
            vec![
                self.synthesis_chain(self.config.seed ^ 0xa5a5, iterations)
                    .0,
            ]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|i| {
                        let seed = self.config.seed ^ (0xa5a5 + i as u64 * 7919);
                        scope.spawn(move |_| self.synthesis_chain(seed, iterations).0)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("synthesis thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        };
        stats.synthesis_time += t0.elapsed();
        let mut found = Vec::new();
        for r in results {
            stats.synthesis_proposals += r.proposals;
            stats.testcases_run += r.testcases_run;
            if r.best_cost == 0.0 {
                stats.synthesis_succeeded = true;
                found.push(r.best.to_program());
            }
        }
        found
    }

    /// Run optimization chains from each starting point in parallel and
    /// return the candidates sorted by cost (best first).
    pub fn parallel_optimization(
        &self,
        starts: &[Program],
        stats: &mut SearchStats,
    ) -> Vec<(Program, f64)> {
        let t0 = Instant::now();
        let iterations = self.config.optimization_iterations;
        let results: Vec<ChainResult> = if starts.len() <= 1 || self.config.threads <= 1 {
            starts
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    self.optimization_chain(s, self.config.seed ^ (17 + i as u64), iterations)
                        .0
                })
                .collect()
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = starts
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let seed = self.config.seed ^ (17 + i as u64 * 104729);
                        scope.spawn(move |_| self.optimization_chain(s, seed, iterations).0)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("optimization thread panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        };
        stats.optimization_time += t0.elapsed();
        // Re-rank only candidates that passed every test case (`eq' == 0`),
        // as the paper does: a near-miss rewrite can undercut the target on
        // *total* cost, so a chain's overall best may be incorrect and would
        // then be discarded by validation, leaving nothing to re-rank.
        // Chains with no correct rewrite contribute their overall best only
        // when NO chain found a correct one — a cheap incorrect candidate
        // must not shrink the re-rank margin and starve correct candidates
        // from other chains.
        let mut candidates = Vec::new();
        let mut fallbacks = Vec::new();
        for r in results {
            stats.optimization_proposals += r.proposals;
            stats.testcases_run += r.testcases_run;
            match r.best_correct {
                Some(b) => candidates.push((b.to_program(), r.best_correct_cost)),
                None => fallbacks.push((r.best.to_program(), r.best_cost)),
            }
        }
        if candidates.is_empty() {
            candidates = fallbacks;
        }
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates
    }

    /// Validate a candidate against the target; on a counterexample, add
    /// it to the test suite (Equation 12's refinement).
    fn validate(&mut self, candidate: &Program, stats: &mut SearchStats) -> bool {
        stats.validations += 1;
        let validator = Validator::new(self.suite.live_out.clone());
        match validator.prove(&self.spec.program, candidate).0 {
            EquivResult::Equivalent => true,
            EquivResult::NotEquivalent(cex) => {
                stats.counterexamples += 1;
                self.suite.add_counterexample(&self.spec, &cex);
                false
            }
        }
    }

    /// Run the complete pipeline of Figure 9 and return the best verified
    /// rewrite.
    pub fn run(&mut self) -> StokeResult {
        let mut stats = SearchStats::default();
        // 1. Synthesis from random starting points.
        let synthesized = self.parallel_synthesis(&mut stats);
        // 2. Optimization from the target and from every synthesized
        //    candidate (§4.4, §4.7: even when synthesis fails, optimization
        //    proceeds from the region occupied by the target).
        let mut starts = vec![self.spec.program.clone()];
        starts.extend(synthesized);
        let candidates = self.parallel_optimization(&starts, &mut stats);

        // 3. Keep the candidates whose cost is within the re-rank margin of
        //    the best, verify them, and re-rank the survivors with the
        //    timing model (the paper's actual-runtime re-ranking).
        let timing = TimingModel::default();
        let target_cycles = timing.cycles(&self.spec.program);
        let best_cost = candidates.first().map(|(_, c)| *c).unwrap_or(f64::INFINITY);
        let margin = best_cost.max(1.0) * self.config.rerank_margin;
        let mut verified: Vec<(Program, u64, Verification)> = Vec::new();
        let mut testcase_clean: Vec<(Program, u64, Verification)> = Vec::new();
        for (program, cost) in candidates.into_iter().filter(|(_, c)| *c <= margin) {
            // Reject candidates that fail test cases outright.
            let mut probe = self.make_cost_fn();
            if probe.eq_prime(&program.iter().cloned().collect::<Vec<_>>()) != 0 {
                continue;
            }
            let cycles = timing.cycles(&program);
            if self.validate(&program, &mut stats) {
                verified.push((program, cycles, Verification::Proven));
            } else {
                // Re-check on the refined suite: a genuine counterexample
                // will now show a non-zero cost; a spurious one (caused by
                // the uninterpreted-function abstraction) will not.
                let mut recheck = self.make_cost_fn();
                if recheck.eq_prime(&program.iter().cloned().collect::<Vec<_>>()) == 0 {
                    testcase_clean.push((program, cycles, Verification::TestsOnly));
                }
            }
            let _ = cost;
        }
        verified.sort_by_key(|(_, cycles, _)| *cycles);
        testcase_clean.sort_by_key(|(_, cycles, _)| *cycles);

        let (rewrite, rewrite_cycles, verification) = verified
            .into_iter()
            .chain(testcase_clean)
            .next()
            .unwrap_or_else(|| {
                (
                    self.spec.program.clone(),
                    target_cycles,
                    Verification::TargetReturned,
                )
            });

        StokeResult {
            target_latency: self.spec.program.static_latency(),
            rewrite_latency: rewrite.static_latency(),
            target_cycles,
            rewrite_cycles,
            rewrite,
            verification,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::TargetSpec;
    use stoke_x86::Gpr;

    fn quick_config() -> Config {
        Config {
            ell: 8,
            num_testcases: 8,
            synthesis_iterations: 5_000,
            optimization_iterations: 20_000,
            threads: 1,
            ..Config::default()
        }
    }

    /// A deliberately clumsy target: rax = rdi + rsi computed through a
    /// stack spill and a pointless register shuffle (llvm -O0 flavour).
    fn clumsy_add() -> TargetSpec {
        let program: Program = "
            movq rdi, rbx
            movq rbx, rcx
            movq rcx, rax
            addq rsi, rax
            movq rax, rbx
            movq rbx, rax
        "
        .parse()
        .unwrap();
        TargetSpec::with_gprs(program, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
    }

    #[test]
    fn optimization_shortens_clumsy_target() {
        let mut stoke = Stoke::new(quick_config(), clumsy_add());
        let result = stoke.run();
        assert!(
            result.rewrite_latency <= result.target_latency,
            "rewrite ({}) must not be slower than target ({})",
            result.rewrite_latency,
            result.target_latency
        );
        assert!(result.speedup() >= 1.0);
        // Whatever came back must still be correct on fresh test cases.
        let fresh = generate_testcases(stoke.spec(), 16, 999);
        let mut cf = CostFn::new(quick_config(), fresh, 0);
        let instrs: Vec<_> = result.rewrite.iter().cloned().collect();
        assert_eq!(
            cf.eq_prime(&instrs),
            0,
            "returned rewrite fails fresh test cases"
        );
    }

    #[test]
    fn result_is_deterministic_for_fixed_seed() {
        let a = Stoke::new(quick_config(), clumsy_add()).run();
        let b = Stoke::new(quick_config(), clumsy_add()).run();
        assert_eq!(a.rewrite, b.rewrite);
    }

    #[test]
    fn validation_counterexample_refines_suite() {
        // Force validation of a rewrite that matches the target on the
        // generated cases only by accident: use a single test case so a
        // wrong rewrite can slip through, then check the validator caught
        // it and added a counterexample.
        let config = Config {
            num_testcases: 1,
            ..quick_config()
        };
        let spec = clumsy_add();
        let mut stoke = Stoke::new(config, spec);
        let before = stoke.suite().len();
        let wrong: Program = "movq rdi, rax\naddq rsi, rax\naddq 0, rax".parse().unwrap();
        let mut stats = SearchStats::default();
        // This rewrite is actually correct, so validation must succeed and
        // must not add counterexamples.
        assert!(stoke.validate(&wrong, &mut stats));
        assert_eq!(stoke.suite().len(), before);
        // A genuinely wrong rewrite produces a counterexample.
        let broken: Program = "movq rdi, rax\naddq 1, rax".parse().unwrap();
        assert!(!stoke.validate(&broken, &mut stats));
        assert_eq!(stoke.suite().len(), before + 1);
        assert_eq!(stats.counterexamples, 1);
    }
}
