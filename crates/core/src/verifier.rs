//! Pluggable verification strategies: the validation stage of the
//! evaluation pipeline.
//!
//! The paper's pipeline ends with symbolic validation and counterexample
//! feedback (Equation 12): a candidate that survives the test suite is
//! handed to a theorem prover, and any counterexample it produces becomes
//! a new test case. This module opens that stage into a trait: a
//! [`Verifier`] maps a candidate rewrite to a [`Verdict`] (carrying any
//! counterexamples found), with mutable access to the test suite so the
//! feedback loop lives behind the trait too.
//!
//! Three verifiers ship with the crate:
//!
//! - [`TestOnly`] — the test suite alone (what an interrupted search falls
//!   back to);
//! - [`Symbolic`] — the symbolic validator of `stoke-verify` (§5.2), with
//!   counterexample feedback;
//! - [`Cascade`] — tests first, then an inner verifier (symbolic by
//!   default), then a re-test on the refined suite to keep candidates that
//!   only failed on a spurious counterexample of the
//!   uninterpreted-function abstraction. This is the paper's flow and the
//!   default of [`Session`](crate::driver::Session).
//!
//! A third-party verifier implements [`Verifier`] and is installed with
//! [`Session::with_verifier`](crate::driver::Session::with_verifier):
//!
//! ```
//! use std::sync::Arc;
//! use stoke::{
//!     Config, Session, TargetSpec, Verdict, Verifier, VerifyContext, VerifyStatus,
//! };
//! use stoke_x86::{Gpr, Program};
//!
//! /// Trusts the test suite, but never claims a proof.
//! struct Paranoid;
//!
//! impl Verifier for Paranoid {
//!     fn name(&self) -> &'static str {
//!         "paranoid"
//!     }
//!     fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
//!         stoke::TestOnly.verify(candidate, ctx)
//!     }
//! }
//!
//! let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
//! let spec = TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
//! let config = Config::builder()
//!     .synthesis_iterations(500)
//!     .optimization_iterations(2_000)
//!     .num_testcases(4)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! let result = Session::new(config)
//!     .with_verifier(Arc::new(Paranoid))
//!     .run(&spec)
//!     .unwrap();
//! // A test-only verifier can never return a Proven rewrite.
//! assert_ne!(result.verification, stoke::Verification::Proven);
//! ```

use crate::config::Config;
use crate::cost;
use crate::observer::{SearchObserver, ValidationVerdict};
use crate::search::SearchStats;
use crate::testcase::{TargetSpec, TestSuite};
use stoke_emu::PreparedProgram;
use stoke_verify::{Counterexample, EquivResult, Validator};
use stoke_x86::Program;

/// How far a candidate's equivalence with the target was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyStatus {
    /// Proven equivalent by a symbolic (or otherwise complete) method.
    Proven,
    /// Consistent with every test case, but not proven.
    TestsPassed,
    /// Shown inequivalent — by a failing test case or a counterexample.
    #[default]
    Refuted,
}

/// The outcome of verifying one candidate, carrying any counterexamples
/// produced along the way (which a feedback-looping verifier has already
/// added to the suite through its [`VerifyContext`]).
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// How far equivalence was established.
    pub status: VerifyStatus,
    /// Counterexamples produced while verifying (empty for test-suite
    /// refutations, which have no single distinguishing input to report).
    pub counterexamples: Vec<Counterexample>,
}

impl Verdict {
    /// A proof of equivalence.
    pub fn proven() -> Verdict {
        Verdict {
            status: VerifyStatus::Proven,
            counterexamples: Vec::new(),
        }
    }

    /// Consistency with the test suite, without a proof.
    pub fn tests_passed() -> Verdict {
        Verdict {
            status: VerifyStatus::TestsPassed,
            counterexamples: Vec::new(),
        }
    }

    /// A refutation without a reportable counterexample.
    pub fn refuted() -> Verdict {
        Verdict {
            status: VerifyStatus::Refuted,
            counterexamples: Vec::new(),
        }
    }

    /// A refutation carrying the counterexamples that produced it.
    pub fn refuted_with(counterexamples: Vec<Counterexample>) -> Verdict {
        Verdict {
            status: VerifyStatus::Refuted,
            counterexamples,
        }
    }

    /// Whether the candidate survived verification (proven or
    /// tests-passed).
    pub fn accepted(&self) -> bool {
        self.status != VerifyStatus::Refuted
    }
}

/// Everything a verifier may consult — and refine — while verifying a
/// candidate: the target, the *mutable* test suite (the counterexample
/// feedback loop of Equation 12 appends to it), the configuration, the
/// search statistics, and the observer to report validation verdicts to.
pub struct VerifyContext<'a> {
    /// The target specification the candidate is compared against.
    pub spec: &'a TargetSpec,
    /// The test suite; verifiers append counterexamples here.
    pub suite: &'a mut TestSuite,
    /// The search configuration (for the cost-function weights used by
    /// test-suite checks).
    pub config: &'a Config,
    /// Search statistics: verifiers maintain `validations` and
    /// `counterexamples`.
    pub stats: &'a mut SearchStats,
    /// The session's observer ([`SearchObserver::on_validation`] is fired
    /// per symbolic query).
    pub observer: &'a dyn SearchObserver,
    /// Batch index of the target being verified.
    pub target: usize,
}

impl VerifyContext<'_> {
    /// Whether `candidate` passes every test case of the (current) suite.
    /// Does not count toward the search statistics — probe executions are
    /// not part of the search.
    pub fn passes_testcases(&self, candidate: &Program) -> bool {
        cost::passes_suite(
            self.config,
            self.suite,
            &PreparedProgram::of_program(candidate),
        )
    }
}

/// A pluggable verification strategy for the pipeline's final stage.
///
/// Verifiers are shared across the batch worker threads (`Send + Sync`)
/// and invoked once per surviving candidate; keep per-call state in the
/// [`VerifyContext`].
pub trait Verifier: Send + Sync {
    /// A short human-readable name, for diagnostics.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Verify `candidate` against the target of `ctx`, refining the test
    /// suite with any counterexamples found.
    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict;
}

impl<V: Verifier + ?Sized> Verifier for &V {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        (**self).verify(candidate, ctx)
    }
}

/// Verification by the test suite alone: the candidate is accepted (as
/// [`VerifyStatus::TestsPassed`]) iff it passes every test case. This is
/// what an interrupted search falls back to, the symbolic stage being
/// non-preemptible.
#[derive(Debug, Clone, Copy, Default)]
pub struct TestOnly;

impl Verifier for TestOnly {
    fn name(&self) -> &'static str {
        "test-only"
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        if ctx.passes_testcases(candidate) {
            Verdict::tests_passed()
        } else {
            Verdict::refuted()
        }
    }
}

/// The symbolic validator of §5.2 (`stoke-verify`), with the
/// counterexample feedback loop of Equation 12: a refuting input is added
/// to the test suite before the verdict is returned, so subsequent cost
/// evaluations see it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Symbolic;

impl Verifier for Symbolic {
    fn name(&self) -> &'static str {
        "symbolic"
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        ctx.stats.validations += 1;
        let validator = Validator::new(ctx.suite.live_out.clone());
        let verdict = match validator.prove(&ctx.spec.program, candidate).0 {
            EquivResult::Equivalent => Verdict::proven(),
            EquivResult::NotEquivalent(cex) => {
                ctx.stats.counterexamples += 1;
                ctx.suite.add_counterexample(ctx.spec, &cex);
                Verdict::refuted_with(vec![*cex])
            }
        };
        ctx.observer.on_validation(
            ctx.target,
            if verdict.accepted() {
                ValidationVerdict::Proven
            } else {
                ValidationVerdict::Refuted
            },
        );
        verdict
    }
}

/// Tests first, then an inner verifier, then — if the inner verifier
/// refuted *and* refined the suite — a re-test on the refined suite.
///
/// The re-test keeps candidates whose only "counterexample" is an artifact
/// of the inner verifier's abstraction (the paper's
/// uninterpreted-function modelling of 64-bit multiplication): a genuine
/// counterexample shows up as a failing test case after refinement, a
/// spurious one does not, and the candidate is then kept as
/// [`VerifyStatus::TestsPassed`]. This is exactly the validation flow of
/// the paper's pipeline, and the default verifier of a
/// [`Session`](crate::driver::Session).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cascade<V = Symbolic> {
    inner: V,
}

impl<V: Verifier> Cascade<V> {
    /// Run the test suite before (and, on refuted-with-counterexample,
    /// after) `inner`.
    pub const fn new(inner: V) -> Cascade<V> {
        Cascade { inner }
    }

    /// The inner verifier.
    pub fn inner(&self) -> &V {
        &self.inner
    }
}

impl<V: Verifier> Verifier for Cascade<V> {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        // 1. Reject candidates that fail test cases outright — no point
        //    paying for the inner verifier.
        if !ctx.passes_testcases(candidate) {
            return Verdict::refuted();
        }
        // 2. The inner verifier (symbolic by default).
        let verdict = self.inner.verify(candidate, ctx);
        if verdict.status != VerifyStatus::Refuted {
            return verdict;
        }
        // 3. Re-check on the refined suite: a genuine counterexample now
        //    shows a failing test case; a spurious one (caused by the
        //    inner verifier's abstraction) does not.
        if !verdict.counterexamples.is_empty() && ctx.passes_testcases(candidate) {
            return Verdict {
                status: VerifyStatus::TestsPassed,
                counterexamples: verdict.counterexamples,
            };
        }
        verdict
    }
}

/// A relative leakage gate in front of an inner verifier: a candidate
/// that observes secrets through a channel the *target* never used is
/// refuted before any symbolic work, in the spirit of Spectector's
/// relative reasoning.
///
/// Secrets come from the target's interface annotations
/// ([`InputSpec::secret`](crate::InputSpec::secret)); with no secret
/// inputs the gate is exactly its inner verifier. The comparison is by
/// observation *kind* ([`stoke_analysis::LeakKind`]): a rewrite may keep
/// the channels the target already leaks through (it can be no worse),
/// but a new secret-dependent address, shift count or division refutes
/// it — even if it is functionally equivalent.
///
/// ```
/// use stoke::{
///     generate_testcases, Cascade, Config, InputSpec, LeakageCheck, NullObserver,
///     SearchStats, Symbolic, TargetSpec, Verifier, VerifierSpec, VerifyContext,
///     VerifyStatus,
/// };
/// use stoke_x86::flow::LocSet;
/// use stoke_x86::{Gpr, Program};
///
/// // rax = rsi << (rdi & 32), computed branchlessly: the secret in rdi
/// // never reaches an address, a shift count or a division.
/// let target: Program = "
///     movq rsi, rax
///     movq rsi, rdx
///     shlq 32, rdx
///     testq 32, rdi
///     cmovneq rdx, rax
/// ".parse().unwrap();
/// let spec = TargetSpec::new(
///     target,
///     vec![
///         InputSpec::value_masked(Gpr::Rdi, 0x20).secret(),
///         InputSpec::value64(Gpr::Rsi),
///     ],
///     LocSet::from_gprs([Gpr::Rax]),
/// );
/// let config = Config::builder().threads(1).build().unwrap();
/// let mut suite = generate_testcases(&spec, 4, 1);
/// let mut stats = SearchStats::default();
/// let observer = NullObserver;
/// let mut ctx = VerifyContext {
///     spec: &spec,
///     suite: &mut suite,
///     config: &config,
///     stats: &mut stats,
///     observer: &observer,
///     target: 0,
/// };
/// // The shorter rewrite shifts by `cl` derived from the secret — a new
/// // observation channel, refuted without a symbolic query.
/// let leaky: Program = "movq rdi, rcx\nmovq rsi, rax\nshlq cl, rax".parse().unwrap();
/// let verifier = LeakageCheck::new(Cascade::new(Symbolic));
/// assert_eq!(verifier.verify(&leaky, &mut ctx).status, VerifyStatus::Refuted);
/// assert_eq!(stats.validations, 0);
///
/// // The usual route: select it through the config.
/// let config = Config::builder()
///     .verifier(VerifierSpec::LeakageCascade)
///     .build()
///     .unwrap();
/// assert_eq!(config.verifier.name(), "leakage-cascade");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LeakageCheck<V = Cascade<Symbolic>> {
    inner: V,
}

impl<V: Verifier> LeakageCheck<V> {
    /// Gate `inner` behind the relative leakage check.
    pub const fn new(inner: V) -> LeakageCheck<V> {
        LeakageCheck { inner }
    }

    /// The inner verifier.
    pub fn inner(&self) -> &V {
        &self.inner
    }
}

impl<V: Verifier> Verifier for LeakageCheck<V> {
    fn name(&self) -> &'static str {
        "leakage-cascade"
    }

    fn verify(&self, candidate: &Program, ctx: &mut VerifyContext<'_>) -> Verdict {
        let secrets = ctx.spec.secret_inputs();
        if !secrets.is_empty() {
            let new_leaks = stoke_analysis::introduces_new_leaks(
                ctx.spec.program.iter(),
                candidate.iter(),
                &secrets,
            );
            if !new_leaks.is_empty() {
                ctx.stats.leakage_rejections += 1;
                return Verdict::refuted();
            }
        }
        self.inner.verify(candidate, ctx)
    }
}

/// Which verifier a search uses when none is installed explicitly with
/// [`Session::with_verifier`](crate::driver::Session::with_verifier),
/// selected through [`Config::verifier`](crate::config::Config::verifier).
#[derive(Clone, Default)]
pub enum VerifierSpec {
    /// [`Cascade`] over [`Symbolic`] — the paper's flow and the default.
    #[default]
    Cascade,
    /// [`TestOnly`]: the test suite alone, no symbolic validation.
    TestOnly,
    /// [`Symbolic`] without the cascade's pre-test and spurious-cex
    /// re-test.
    Symbolic,
    /// [`LeakageCheck`] over the default cascade: candidates introducing
    /// new secret observations are refuted before verification.
    LeakageCascade,
    /// A third-party verifier, shared across sessions.
    Custom(std::sync::Arc<dyn Verifier>),
}

impl VerifierSpec {
    /// The name of the selected verifier (matching
    /// [`Verifier::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            VerifierSpec::Cascade => "cascade",
            VerifierSpec::TestOnly => "test-only",
            VerifierSpec::Symbolic => "symbolic",
            VerifierSpec::LeakageCascade => "leakage-cascade",
            VerifierSpec::Custom(v) => v.name(),
        }
    }
}

impl std::fmt::Debug for VerifierSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifierSpec::Cascade => write!(f, "Cascade"),
            VerifierSpec::TestOnly => write!(f, "TestOnly"),
            VerifierSpec::Symbolic => write!(f, "Symbolic"),
            VerifierSpec::LeakageCascade => write!(f, "LeakageCascade"),
            VerifierSpec::Custom(v) => write!(f, "Custom({})", v.name()),
        }
    }
}

impl PartialEq for VerifierSpec {
    fn eq(&self, other: &VerifierSpec) -> bool {
        match (self, other) {
            (VerifierSpec::Cascade, VerifierSpec::Cascade) => true,
            (VerifierSpec::TestOnly, VerifierSpec::TestOnly) => true,
            (VerifierSpec::Symbolic, VerifierSpec::Symbolic) => true,
            (VerifierSpec::LeakageCascade, VerifierSpec::LeakageCascade) => true,
            // Custom verifiers are opaque: equal only if they are the same
            // allocation.
            (VerifierSpec::Custom(a), VerifierSpec::Custom(b)) => std::sync::Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::observer::NullObserver;
    use crate::testcase::{generate_testcases, InputSpec, TargetSpec};
    use stoke_x86::flow::LocSet;
    use stoke_x86::Gpr;

    fn spec() -> TargetSpec {
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        TargetSpec::with_gprs(target, &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax])
    }

    fn harness(n: usize) -> (TargetSpec, TestSuite, Config, SearchStats) {
        let spec = spec();
        let suite = generate_testcases(&spec, n, 7);
        (spec, suite, Config::quick_test(), SearchStats::default())
    }

    #[test]
    fn test_only_accepts_and_refutes() {
        let (spec, mut suite, config, mut stats) = harness(8);
        let observer = NullObserver;
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &observer,
            target: 0,
        };
        let right: Program = "leaq (rdi,rsi,1), rax".parse().unwrap();
        assert_eq!(
            TestOnly.verify(&right, &mut ctx).status,
            VerifyStatus::TestsPassed
        );
        let wrong: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        let verdict = TestOnly.verify(&wrong, &mut ctx);
        assert_eq!(verdict.status, VerifyStatus::Refuted);
        assert!(!verdict.accepted());
        assert!(verdict.counterexamples.is_empty());
        assert_eq!(stats.validations, 0, "test-only runs no symbolic queries");
    }

    #[test]
    fn symbolic_feeds_counterexamples_back_into_the_suite() {
        let (spec, mut suite, config, mut stats) = harness(1);
        let before = suite.len();
        let observer = NullObserver;
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &observer,
            target: 0,
        };
        // Wrong on almost every input: a counterexample must come back and
        // land in the suite.
        let wrong: Program = "movq rdi, rax\naddq 1, rax".parse().unwrap();
        let verdict = Symbolic.verify(&wrong, &mut ctx);
        assert_eq!(verdict.status, VerifyStatus::Refuted);
        assert_eq!(verdict.counterexamples.len(), 1);
        assert_eq!(suite.len(), before + 1);
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.counterexamples, 1);
    }

    #[test]
    fn cascade_proves_correct_rewrites() {
        let (spec, mut suite, config, mut stats) = harness(8);
        let observer = NullObserver;
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &observer,
            target: 0,
        };
        let right: Program = "movq rsi, rax\naddq rdi, rax".parse().unwrap();
        let verdict = Cascade::<Symbolic>::default().verify(&right, &mut ctx);
        assert_eq!(verdict.status, VerifyStatus::Proven);
        assert_eq!(stats.validations, 1);
    }

    #[test]
    fn cascade_skips_the_inner_verifier_when_tests_fail() {
        let (spec, mut suite, config, mut stats) = harness(8);
        let observer = NullObserver;
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &observer,
            target: 0,
        };
        let wrong: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        let verdict = Cascade::<Symbolic>::default().verify(&wrong, &mut ctx);
        assert_eq!(verdict.status, VerifyStatus::Refuted);
        assert_eq!(
            stats.validations, 0,
            "a test-refuted candidate must not reach the symbolic stage"
        );
    }

    #[test]
    fn leakage_check_refutes_new_channels_and_delegates_otherwise() {
        // rax = rdi + rsi with rdi secret: the target has no secret
        // observations at all.
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let spec = TargetSpec::new(
            target,
            vec![
                InputSpec::value64(Gpr::Rdi).secret(),
                InputSpec::value64(Gpr::Rsi),
            ],
            LocSet::from_gprs([Gpr::Rax]),
        );
        let mut suite = generate_testcases(&spec, 8, 7);
        assert!(suite.secrets.gprs.contains(&Gpr::Rdi));
        let config = Config::quick_test();
        let mut stats = SearchStats::default();
        let observer = NullObserver;
        let mut ctx = VerifyContext {
            spec: &spec,
            suite: &mut suite,
            config: &config,
            stats: &mut stats,
            observer: &observer,
            target: 0,
        };
        let verifier = LeakageCheck::<Cascade>::default();
        // Equivalent, and equally observation-free: proven as usual.
        let clean: Program = "leaq (rdi,rsi,1), rax".parse().unwrap();
        assert_eq!(
            verifier.verify(&clean, &mut ctx).status,
            VerifyStatus::Proven
        );
        assert_eq!(ctx.stats.validations, 1);
        // Dereferences the secret: a new secret-address observation,
        // refuted before the symbolic stage ever runs.
        let leaky: Program = "movq rdi, rax\naddq rsi, rax\nmovq (rdi), rcx\nmovq rax, rcx"
            .parse()
            .unwrap();
        assert_eq!(
            verifier.verify(&leaky, &mut ctx).status,
            VerifyStatus::Refuted
        );
        assert_eq!(ctx.stats.validations, 1, "no symbolic query for the leak");
    }

    #[test]
    fn verifier_spec_names_and_equality() {
        assert_eq!(VerifierSpec::default(), VerifierSpec::Cascade);
        assert_eq!(VerifierSpec::Cascade.name(), "cascade");
        assert_eq!(VerifierSpec::TestOnly.name(), "test-only");
        assert_eq!(VerifierSpec::Symbolic.name(), "symbolic");
        assert_eq!(VerifierSpec::LeakageCascade.name(), "leakage-cascade");
        assert_ne!(VerifierSpec::Cascade, VerifierSpec::LeakageCascade);
        let custom = std::sync::Arc::new(TestOnly);
        let a = VerifierSpec::Custom(custom.clone());
        assert_eq!(a, VerifierSpec::Custom(custom));
        assert_eq!(a.name(), "test-only");
        assert_ne!(a, VerifierSpec::Custom(std::sync::Arc::new(TestOnly)));
        assert_eq!(format!("{a:?}"), "Custom(test-only)");
    }
}
