//! The MCMC sampler: rewrite representation, the four proposal moves of
//! §4.3 (opcode, operand, swap, instruction), and the Metropolis–Hastings
//! chain with the early-termination acceptance computation of §4.5.

use crate::config::Config;
use crate::cost::CostFn;
use crate::driver::ChainControl;
use crate::model::{Cost, CostModel};
use crate::observer::ChainProgress;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use stoke_emu::PreparedProgram;
use stoke_x86::{
    Instruction, Mem, OpcodeClasses, Operand, OperandKind, Program, Scale, SlotSpec, Width,
};

/// A candidate rewrite: a fixed number ℓ of instruction slots, each either
/// an instruction or the distinguished `UNUSED` token. Fixing ℓ keeps the
/// dimensionality of the search space constant, which the MCMC
/// formulation requires (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    slots: Vec<Option<Instruction>>,
}

impl Rewrite {
    /// A rewrite with every slot `UNUSED`.
    pub fn empty(ell: usize) -> Rewrite {
        Rewrite {
            slots: vec![None; ell],
        }
    }

    /// A rewrite that starts as an existing program padded with `UNUSED`
    /// slots up to length ℓ (the starting point of the optimization
    /// phase).
    ///
    /// A program longer than ℓ grows the rewrite to the program's length
    /// instead of being truncated: a truncated starting point would make
    /// the chain optimize a *different* program than the target, and
    /// silently at that.
    pub fn from_program(program: &Program, ell: usize) -> Rewrite {
        let mut slots: Vec<Option<Instruction>> = program.iter().cloned().map(Some).collect();
        slots.resize(ell.max(slots.len()), None);
        Rewrite { slots }
    }

    /// The slots.
    pub fn slots(&self) -> &[Option<Instruction>] {
        &self.slots
    }

    /// Number of slots (ℓ).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether every slot is `UNUSED`.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Number of non-`UNUSED` slots.
    pub fn num_instructions(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The dense program obtained by dropping `UNUSED` slots.
    pub fn to_program(&self) -> Program {
        self.slots.iter().flatten().cloned().collect()
    }

    /// The dense instruction sequence (borrowed clone).
    pub fn instructions(&self) -> Vec<Instruction> {
        self.slots.iter().flatten().cloned().collect()
    }

    /// Decode the dense instruction sequence (skipping `UNUSED` slots)
    /// once into the execute-many form of
    /// [`stoke_emu::PreparedProgram`], without cloning any instruction.
    pub fn prepare(&self) -> PreparedProgram<'_> {
        PreparedProgram::new(self.slots.iter().flatten())
    }
}

/// The four proposal move kinds (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveKind {
    /// Replace an opcode with one from the same equivalence class.
    Opcode,
    /// Replace an operand with one of the same kind.
    Operand,
    /// Interchange two instruction slots.
    Swap,
    /// Replace a slot with a random instruction or `UNUSED`.
    Instruction,
}

/// Per-move-kind proposal and acceptance counters — the MCMC mixing
/// diagnostics of Figure 10. Recorded by every chain regardless of whether
/// an observer is attached (pure counting; the accounting never touches the
/// RNG stream, so enabling it cannot perturb the search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    proposed: [u64; 4],
    accepted: [u64; 4],
}

impl MoveStats {
    /// The four move kinds in counter-index order.
    pub const KINDS: [MoveKind; 4] = [
        MoveKind::Opcode,
        MoveKind::Operand,
        MoveKind::Swap,
        MoveKind::Instruction,
    ];

    fn idx(kind: MoveKind) -> usize {
        match kind {
            MoveKind::Opcode => 0,
            MoveKind::Operand => 1,
            MoveKind::Swap => 2,
            MoveKind::Instruction => 3,
        }
    }

    /// Count one proposal of `kind`, accepted or not.
    pub fn record(&mut self, kind: MoveKind, accepted: bool) {
        self.proposed[Self::idx(kind)] += 1;
        if accepted {
            self.accepted[Self::idx(kind)] += 1;
        }
    }

    /// Proposals of `kind` evaluated.
    pub fn proposed(&self, kind: MoveKind) -> u64 {
        self.proposed[Self::idx(kind)]
    }

    /// Proposals of `kind` accepted.
    pub fn accepted(&self, kind: MoveKind) -> u64 {
        self.accepted[Self::idx(kind)]
    }

    /// Acceptance rate for `kind` (0.0 when no such move was proposed).
    pub fn acceptance_rate(&self, kind: MoveKind) -> f64 {
        let proposed = self.proposed(kind);
        if proposed == 0 {
            0.0
        } else {
            self.accepted(kind) as f64 / proposed as f64
        }
    }

    /// Total proposals across all kinds.
    pub fn total_proposed(&self) -> u64 {
        self.proposed.iter().sum()
    }

    /// Total accepted proposals across all kinds.
    pub fn total_accepted(&self) -> u64 {
        self.accepted.iter().sum()
    }

    /// Add another chain's counters into this one (used by the driver to
    /// aggregate per-chain stats into [`SearchStats`](crate::SearchStats)).
    pub fn merge(&mut self, other: &MoveStats) {
        for i in 0..4 {
            self.proposed[i] += other.proposed[i];
            self.accepted[i] += other.accepted[i];
        }
    }
}

/// The slot range a proposal modified, reported by [`Proposer::propose`]
/// alongside the [`MoveKind`].
///
/// Both bounds are inclusive slot indices into the rewrite. The invariant
/// is one-sided: every slot *outside* `first_modified..=last_modified` is
/// guaranteed unchanged (slots inside the span may happen to be unchanged
/// too — the span is conservative). A proposal whose span is `None` is
/// provably identical to the current rewrite: the move drew parameters
/// that made it a no-op, such as a swap of a slot with itself.
///
/// The incremental evaluation backend turns the span into a prefix-reuse
/// hint: the first `first_modified` slots are untouched, so their dense
/// instructions can be replayed from a checkpoint instead of re-executed
/// (see [`CostFn::set_reuse_prefix`](crate::cost::CostFn::set_reuse_prefix)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditSpan {
    /// Index of the first slot the move may have changed.
    pub first_modified: usize,
    /// Index of the last slot the move may have changed (inclusive).
    pub last_modified: usize,
}

impl EditSpan {
    /// A span covering the single slot `slot`.
    fn single(slot: usize) -> Option<EditSpan> {
        Some(EditSpan {
            first_modified: slot,
            last_modified: slot,
        })
    }
}

/// Samples proposals from the distribution `q(·)` of §4.3.
pub struct Proposer {
    config: Config,
    classes: OpcodeClasses,
    rng: StdRng,
}

impl Proposer {
    /// Create a proposer.
    pub fn new(config: Config, seed: u64) -> Proposer {
        let classes = OpcodeClasses::with_universe(config.opcode_pool.clone());
        Proposer {
            config,
            classes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Access the random number generator (shared with the chain).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniformly random rewrite of length ℓ (the starting point of the
    /// synthesis phase).
    pub fn random_rewrite(&mut self) -> Rewrite {
        let ell = self.config.ell;
        let mut r = Rewrite::empty(ell);
        for slot in 0..ell {
            if self.rng.gen::<f64>() < self.config.pu {
                continue;
            }
            r.slots[slot] = Some(self.random_instruction());
        }
        r
    }

    fn random_reg(&mut self, w: Width) -> Operand {
        let g = *self
            .config
            .register_pool
            .choose(&mut self.rng)
            .expect("non-empty register pool");
        Operand::Reg(g.view(w))
    }

    fn random_xmm(&mut self) -> Operand {
        Operand::Xmm(stoke_x86::Xmm(self.rng.gen_range(0..16)))
    }

    fn random_imm(&mut self) -> Operand {
        Operand::Imm(
            *self
                .config
                .immediate_pool
                .choose(&mut self.rng)
                .unwrap_or(&0),
        )
    }

    fn random_mem(&mut self) -> Operand {
        let base = *self
            .config
            .register_pool
            .choose(&mut self.rng)
            .expect("non-empty pool");
        let with_index = self.rng.gen_bool(0.3);
        let index = if with_index {
            Some(*self.config.register_pool.choose(&mut self.rng).unwrap())
        } else {
            None
        };
        let scale = *[Scale::S1, Scale::S2, Scale::S4, Scale::S8]
            .choose(&mut self.rng)
            .unwrap();
        let disp = *[-16i32, -8, -4, 0, 4, 8, 16, 32]
            .choose(&mut self.rng)
            .unwrap();
        Operand::Mem(Mem {
            base: Some(base),
            index,
            scale,
            disp,
        })
    }

    /// A random operand acceptable in `slot`, with the same kind
    /// distribution used when undoing the move (register-preferred).
    fn random_operand_for_slot(&mut self, spec: &SlotSpec) -> Operand {
        // Collect the admissible kinds and pick one uniformly.
        let mut kinds: Vec<u8> = Vec::new();
        if spec.reg.is_some() {
            kinds.push(0);
        }
        if spec.imm {
            kinds.push(1);
        }
        if spec.mem {
            kinds.push(2);
        }
        if spec.xmm {
            kinds.push(3);
        }
        match kinds.choose(&mut self.rng) {
            Some(0) => self.random_reg(spec.reg.expect("checked")),
            Some(1) => self.random_imm(),
            Some(2) => self.random_mem(),
            Some(3) => self.random_xmm(),
            _ => Operand::Imm(0),
        }
    }

    /// A random operand of the *same kind* as `old` (the operand move's
    /// equivalence class).
    fn random_operand_same_kind(&mut self, old: &Operand) -> Operand {
        match old.kind() {
            OperandKind::Reg(w) => self.random_reg(w),
            OperandKind::Imm => self.random_imm(),
            OperandKind::Mem => self.random_mem(),
            OperandKind::Xmm => self.random_xmm(),
        }
    }

    /// A completely random instruction (used by the instruction move and
    /// by synthesis initialization).
    pub fn random_instruction(&mut self) -> Instruction {
        loop {
            let opcode = *self
                .classes
                .universe()
                .choose(&mut self.rng)
                .expect("non-empty opcode universe");
            let sig = opcode.signature();
            let operands: Vec<Operand> = sig
                .iter()
                .map(|s| self.random_operand_for_slot(s))
                .collect();
            // Reject the rare invalid combination (two memory operands).
            if let Ok(instr) = Instruction::new(opcode, operands) {
                return instr;
            }
        }
    }

    /// Propose a modified rewrite (the proposal `R*` of §3.2). Returns the
    /// new rewrite, the move kind that produced it, and the [`EditSpan`]
    /// of slots the move may have changed (`None` when the proposal is
    /// provably identical to `current`).
    pub fn propose(&mut self, current: &Rewrite) -> (Rewrite, MoveKind, Option<EditSpan>) {
        let cdf = self.config.move_cdf();
        let u = self.rng.gen::<f64>();
        let kind = if u < cdf[0] {
            MoveKind::Opcode
        } else if u < cdf[1] {
            MoveKind::Operand
        } else if u < cdf[2] {
            MoveKind::Swap
        } else {
            MoveKind::Instruction
        };
        let mut next = current.clone();
        let mut span = None;
        match kind {
            MoveKind::Opcode => {
                if let Some(slot) = self.random_filled_slot(current) {
                    let instr = current.slots[slot].as_ref().expect("filled slot");
                    // Split the borrows: the class is read from `classes`
                    // while `rng` draws, avoiding the clone of the class
                    // vector this arm used to make on every proposal.
                    let Proposer { classes, rng, .. } = self;
                    let class = classes.class_of(instr);
                    // Same RNG stream as `class.choose(rng)`: one draw
                    // when the class is non-empty, none otherwise.
                    if !class.is_empty() {
                        let op = class[rng.gen_range(0..class.len())];
                        next.slots[slot] = Some(instr.with_opcode(op));
                        span = EditSpan::single(slot);
                    }
                }
            }
            MoveKind::Operand => {
                if let Some(slot) = self.random_filled_slot(current) {
                    let instr = current.slots[slot].as_ref().expect("filled slot");
                    if !instr.operands().is_empty() {
                        let oi = self.rng.gen_range(0..instr.operands().len());
                        let new_operand = self.random_operand_same_kind(&instr.operands()[oi]);
                        let candidate = instr.with_operand(oi, new_operand);
                        // Keep the single-memory-operand invariant.
                        if Instruction::new(candidate.opcode(), candidate.operands().to_vec())
                            .is_ok()
                        {
                            next.slots[slot] = Some(candidate);
                            span = EditSpan::single(slot);
                        }
                    }
                }
            }
            MoveKind::Swap => {
                let a = self.rng.gen_range(0..current.len());
                let b = self.rng.gen_range(0..current.len());
                next.slots.swap(a, b);
                if a != b {
                    span = Some(EditSpan {
                        first_modified: a.min(b),
                        last_modified: a.max(b),
                    });
                }
            }
            MoveKind::Instruction => {
                let slot = self.rng.gen_range(0..current.len());
                if self.rng.gen::<f64>() < self.config.pu {
                    next.slots[slot] = None;
                } else {
                    next.slots[slot] = Some(self.random_instruction());
                }
                span = EditSpan::single(slot);
            }
        }
        (next, kind, span)
    }

    /// A uniformly random non-`UNUSED` slot index, sampled by rank instead
    /// of materializing a `Vec<usize>` of filled slots per proposal. Draws
    /// from the RNG exactly like `filled.choose(rng)` did: one
    /// `gen_range` when any slot is filled, nothing otherwise.
    fn random_filled_slot(&mut self, r: &Rewrite) -> Option<usize> {
        let filled = r.num_instructions();
        if filled == 0 {
            return None;
        }
        let k = self.rng.gen_range(0..filled);
        r.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .nth(k)
            .map(|(i, _)| i)
    }
}

/// A record of one accepted or rejected proposal, for experiment traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Proposal index.
    pub iteration: u64,
    /// Cost of the current rewrite after the proposal was processed.
    pub cost: f64,
    /// Number of non-`UNUSED` instructions in the current rewrite.
    pub instructions: usize,
}

/// Why a chain's [`run`](Chain::run) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The chain evaluated its full proposal budget.
    Completed,
    /// A pure-synthesis chain found a zero-cost rewrite and stopped early.
    ZeroCost,
    /// The session budget ran out or the search was cancelled mid-phase
    /// (see [`Budget`](crate::driver::Budget)).
    Interrupted,
}

/// Outcome of running a Markov chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// The lowest-cost rewrite seen.
    pub best: Rewrite,
    /// Its cost.
    pub best_cost: f64,
    /// The lowest-cost rewrite seen that also passed every test case
    /// (`eq' == 0`). The paper's re-rank step only considers such
    /// candidates: near-miss rewrites can undercut the target on total
    /// cost, so [`ChainResult::best`] alone may be incorrect.
    pub best_correct: Option<Rewrite>,
    /// Cost of [`ChainResult::best_correct`] (`f64::INFINITY` if none).
    pub best_correct_cost: f64,
    /// The current rewrite at the end of the run.
    pub last: Rewrite,
    /// Proposals evaluated.
    pub proposals: u64,
    /// Proposals accepted.
    pub accepted: u64,
    /// Proposal and acceptance counts split by move kind.
    pub moves: MoveStats,
    /// Evolution of the cost function (sampled sparsely).
    pub trace: Vec<TracePoint>,
    /// Test cases executed (for Figure 2 / Figure 5 style reporting).
    pub testcases_run: u64,
    /// Why the run returned.
    pub stop: StopReason,
}

/// The Metropolis–Hastings chain of §3.2/§4.5.
///
/// Scoring goes through a pluggable [`CostModel`]: by default the one
/// selected by the configuration's
/// [`cost_model`](crate::config::Config::cost_model) (its synthesis or
/// optimization variant depending on `use_perf`), or any model injected
/// with [`Chain::with_model`]. Each proposal is decoded once into a
/// [`PreparedProgram`] and then evaluated across all test cases.
pub struct Chain<'a> {
    cost_fn: &'a mut CostFn,
    model: Box<dyn CostModel>,
    proposer: Proposer,
    /// Whether the chain is an optimization chain (the configured model's
    /// optimization variant, and no zero-cost early stop) or a synthesis
    /// chain (correctness-only model, stopping at the first zero-cost
    /// rewrite).
    pub use_perf: bool,
    /// How often (in proposals) a trace point is recorded; 0 disables
    /// tracing.
    pub trace_every: u64,
}

impl<'a> Chain<'a> {
    /// Create a chain over a cost function, scoring with the model the
    /// configuration selects: its optimization variant when `use_perf`,
    /// its synthesis (correctness-only) variant otherwise.
    pub fn new(cost_fn: &'a mut CostFn, seed: u64, use_perf: bool) -> Chain<'a> {
        let model = if use_perf {
            cost_fn.config().cost_model.optimization_model()
        } else {
            cost_fn.config().cost_model.synthesis_model()
        };
        Chain::with_model(cost_fn, seed, use_perf, model)
    }

    /// Create a chain scoring with an explicit [`CostModel`], bypassing
    /// the configuration's selection.
    pub fn with_model(
        cost_fn: &'a mut CostFn,
        seed: u64,
        use_perf: bool,
        model: Box<dyn CostModel>,
    ) -> Chain<'a> {
        let config = cost_fn.config().clone();
        Chain {
            cost_fn,
            model,
            proposer: Proposer::new(config, seed),
            use_perf,
            trace_every: 0,
        }
    }

    /// Access the proposer (e.g. to draw a random starting rewrite).
    pub fn proposer_mut(&mut self) -> &mut Proposer {
        &mut self.proposer
    }

    /// Fully score a rewrite through the chain's cost model.
    fn score(&mut self, rewrite: &Rewrite) -> Cost {
        let prepared = self.cost_fn.prepare_rewrite(rewrite.slots.iter().flatten());
        self.model
            .score(&prepared, &mut self.cost_fn.eval_context())
    }

    /// Run the chain for `iterations` proposals starting from `start`.
    pub fn run(&mut self, start: Rewrite, iterations: u64) -> ChainResult {
        self.run_controlled(start, iterations, &ChainControl::unbounded())
    }

    /// Run the chain for at most `iterations` proposals, checking the
    /// budget/cancellation clock of `ctrl` before each proposal and
    /// reporting periodic progress to its observer. This is the engine's
    /// preemption point: a wall-clock deadline, proposal budget, or
    /// cancellation token stops the chain mid-phase with
    /// [`StopReason::Interrupted`].
    pub fn run_controlled(
        &mut self,
        start: Rewrite,
        iterations: u64,
        ctrl: &ChainControl<'_>,
    ) -> ChainResult {
        let config = self.cost_fn.config().clone();
        let mut current = start;
        let mut current_terms = self.score(&current);
        let mut current_cost = current_terms.total();
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut best_correct = current_terms.is_correct().then(|| current.clone());
        let mut best_correct_cost = if current_terms.is_correct() {
            current_cost
        } else {
            f64::INFINITY
        };
        let mut accepted = 0u64;
        let mut proposals = 0u64;
        let mut moves = MoveStats::default();
        let mut trace = Vec::new();
        let mut stop = StopReason::Completed;
        let start_stats = self.cost_fn.stats;
        // Commit the starting rewrite as the incremental backend's
        // checkpoint baseline (a no-op for every other backend).
        {
            let prepared = self.cost_fn.prepare_rewrite(current.slots.iter().flatten());
            self.cost_fn.commit_baseline(&prepared, 0);
        }

        for iteration in 0..iterations {
            if !ctrl.admit_proposal() {
                stop = StopReason::Interrupted;
                break;
            }
            proposals += 1;
            let (candidate, kind, span) = self.proposer.propose(&current);
            // Dense instructions the candidate provably shares with the
            // committed baseline: everything strictly before the first
            // modified slot (the whole program when the move was a no-op).
            let reuse_prefix = match &span {
                Some(s) => current.slots[..s.first_modified].iter().flatten().count(),
                None => current.num_instructions(),
            };
            self.cost_fn.set_reuse_prefix(Some(reuse_prefix));
            let accept = if config.early_termination {
                // §4.5: sample the acceptance threshold p first, derive the
                // maximum cost we could accept, and stop evaluating test
                // cases as soon as the bound is exceeded.
                let p: f64 = self.proposer.rng().gen::<f64>().max(1e-300);
                let bound = current_cost - p.ln() / config.beta;
                let prepared = self
                    .cost_fn
                    .prepare_rewrite(candidate.slots.iter().flatten());
                let mut ctx = self.cost_fn.eval_context();
                let performance = self.model.perf_term(&prepared, &mut ctx);
                let eq_bound = bound - performance;
                if eq_bound < 0.0 {
                    None
                } else {
                    self.model
                        .correctness_term(&prepared, Some(eq_bound), &mut ctx)
                        .map(|correctness| Cost {
                            correctness,
                            performance,
                        })
                }
            } else {
                let cost = self.score(&candidate);
                let delta = cost.total() - current_cost;
                let p: f64 = self.proposer.rng().gen();
                if delta <= 0.0 || p < (-config.beta * delta).exp() {
                    Some(cost)
                } else {
                    None
                }
            };
            moves.record(kind, accept.is_some());
            if let Some(cost) = accept {
                current = candidate;
                current_terms = cost;
                current_cost = cost.total();
                accepted += 1;
                // Re-anchor the incremental backend's checkpoints on the
                // newly accepted rewrite, keeping the snapshots of the
                // prefix the move did not touch (no-op otherwise).
                {
                    let prepared = self.cost_fn.prepare_rewrite(current.slots.iter().flatten());
                    self.cost_fn.commit_baseline(&prepared, reuse_prefix);
                }
                if current_cost < best_cost {
                    best = current.clone();
                    best_cost = current_cost;
                }
                if cost.is_correct() && current_cost < best_correct_cost {
                    best_correct = Some(current.clone());
                    best_correct_cost = current_cost;
                }
            }
            if self.trace_every > 0 && iteration % self.trace_every == 0 {
                trace.push(TracePoint {
                    iteration,
                    cost: current_cost,
                    instructions: current.num_instructions(),
                });
            }
            let stats = self.cost_fn.stats;
            ctrl.maybe_report(proposals, |target, phase, chain| ChainProgress {
                target,
                phase,
                chain,
                proposals,
                iterations,
                current_cost,
                correctness: current_terms.correctness,
                performance: current_terms.performance,
                best_cost,
                instructions_skipped: stats.instructions_skipped,
                checkpoint_restores: stats.checkpoint_restores,
                columns_reordered: stats.columns_reordered,
            });
            // Stop a pure-synthesis run as soon as a zero-cost rewrite is
            // found; further proposals cannot improve it.
            if !self.use_perf && best_cost == 0.0 {
                stop = StopReason::ZeroCost;
                break;
            }
        }
        ctrl.report_end(
            proposals,
            accepted,
            moves,
            self.cost_fn.stats.since(&start_stats),
        );
        ChainResult {
            best,
            best_cost,
            best_correct,
            best_correct_cost,
            last: current,
            proposals,
            accepted,
            moves,
            trace,
            testcases_run: self.cost_fn.stats.testcases_run - start_stats.testcases_run,
            stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{generate_testcases, TargetSpec};
    use stoke_x86::Gpr;

    fn cost_fn() -> CostFn {
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
        let suite = generate_testcases(&spec, 8, 1);
        CostFn::new(Config::quick_test(), suite, target.static_latency())
    }

    #[test]
    fn rewrite_roundtrips_through_program() {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let r = Rewrite::from_program(&p, 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r.num_instructions(), 2);
        assert_eq!(r.to_program(), p);
    }

    // Regression test: a target longer than ℓ used to be silently
    // truncated by `from_program`, making the optimization phase start
    // from (and potentially "improve") a different program than the
    // target. The rewrite must instead grow to hold every instruction.
    #[test]
    fn from_program_never_truncates_long_targets() {
        let p: Program = "
            movq rdi, rax
            addq rsi, rax
            addq rdx, rax
            addq rcx, rax
            addq r8, rax
        "
        .parse()
        .unwrap();
        let r = Rewrite::from_program(&p, 2);
        assert_eq!(r.len(), 5, "rewrite must grow past ell to fit the target");
        assert_eq!(r.num_instructions(), 5);
        assert_eq!(r.to_program(), p, "no instruction may be dropped");
    }

    #[test]
    fn proposals_preserve_length_and_validity() {
        let mut cf = cost_fn();
        let mut chain = Chain::new(&mut cf, 3, false);
        let mut r = chain.proposer_mut().random_rewrite();
        for _ in 0..2000 {
            let (next, _, _) = chain.proposer_mut().propose(&r);
            assert_eq!(next.len(), r.len());
            // Every filled slot must be a valid instruction.
            for slot in next.slots().iter().flatten() {
                assert!(
                    Instruction::new(slot.opcode(), slot.operands().to_vec()).is_ok(),
                    "invalid instruction proposed: {}",
                    slot
                );
            }
            r = next;
        }
    }

    #[test]
    fn all_move_kinds_are_exercised() {
        let mut cf = cost_fn();
        let mut chain = Chain::new(&mut cf, 11, false);
        let r = chain.proposer_mut().random_rewrite();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let (_, kind, _) = chain.proposer_mut().propose(&r);
            seen.insert(kind);
        }
        assert_eq!(
            seen.len(),
            4,
            "expected all four move kinds, saw {:?}",
            seen
        );
    }

    #[test]
    fn edit_spans_bound_all_changes() {
        let mut cf = cost_fn();
        let mut chain = Chain::new(&mut cf, 23, false);
        let mut r = chain.proposer_mut().random_rewrite();
        for _ in 0..2000 {
            let (next, _, span) = chain.proposer_mut().propose(&r);
            match span {
                None => assert_eq!(next, r, "a None span promises an identical proposal"),
                Some(s) => {
                    assert!(s.first_modified <= s.last_modified);
                    assert!(s.last_modified < r.len());
                    assert_eq!(
                        &next.slots()[..s.first_modified],
                        &r.slots()[..s.first_modified],
                        "slots before the span must be untouched"
                    );
                    assert_eq!(
                        &next.slots()[s.last_modified + 1..],
                        &r.slots()[s.last_modified + 1..],
                        "slots after the span must be untouched"
                    );
                }
            }
            r = next;
        }
    }

    #[test]
    fn chain_improves_cost_from_random_start() {
        let mut cf = cost_fn();
        let mut chain = Chain::new(&mut cf, 5, false);
        let start = chain.proposer_mut().random_rewrite();
        let start_cost = {
            let instrs = start.instructions();
            chain.cost_fn.eq_prime(&instrs) as f64
        };
        let result = chain.run(start, 5_000);
        assert!(
            result.best_cost <= start_cost,
            "MCMC must not make the best seen cost worse"
        );
        assert!(result.accepted > 0, "some proposals must be accepted");
    }

    #[test]
    fn optimization_keeps_correctness_at_zero_cost() {
        // Starting from the (correct) target, the best rewrite must stay
        // correct while possibly getting faster.
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let mut cf = cost_fn();
        let mut chain = Chain::new(&mut cf, 7, true);
        let start = Rewrite::from_program(&target, 8);
        let result = chain.run(start, 10_000);
        let best_instrs = result.best.instructions();
        assert_eq!(
            chain.cost_fn.eq_prime(&best_instrs),
            0,
            "best rewrite must remain correct"
        );
    }

    #[test]
    fn synthesis_finds_trivial_kernel() {
        // A target computing rax = rdi is easy enough for a short random
        // search to synthesize from scratch.
        let target: Program = "movq rdi, rax".parse().unwrap();
        let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi], &[Gpr::Rax]);
        let suite = generate_testcases(&spec, 8, 2);
        // Restrict the opcode universe to the scalar 64-bit data-movement
        // and ALU instructions so the (deliberately tiny) synthesis budget
        // suffices; the full universe is exercised by the larger runs in
        // the experiment harness.
        let pool: Vec<stoke_x86::Opcode> = stoke_x86::Opcode::all()
            .into_iter()
            .filter(|o| {
                matches!(
                    o,
                    stoke_x86::Opcode::Mov(Width::Q)
                        | stoke_x86::Opcode::Alu(_, Width::Q)
                        | stoke_x86::Opcode::Lea(Width::Q)
                        | stoke_x86::Opcode::Xchg(Width::Q)
                )
            })
            .collect();
        let config = Config {
            ell: 4,
            opcode_pool: pool,
            ..Config::quick_test()
        };
        let mut cf = CostFn::new(config, suite, target.static_latency());
        let mut chain = Chain::new(&mut cf, 13, false);
        let start = Rewrite::empty(4);
        let result = chain.run(start, 100_000);
        assert_eq!(
            result.best_cost, 0.0,
            "synthesis should find a zero-cost rewrite"
        );
        // And the found rewrite really computes the identity on the cases.
        let best = result.best.instructions();
        assert_eq!(chain.cost_fn.eq_prime(&best), 0);
    }

    #[test]
    fn early_termination_reduces_testcase_work() {
        let mut cf1 = cost_fn();
        let mut cf2 = cost_fn();
        let start;
        {
            let mut chain = Chain::new(&mut cf1, 17, false);
            start = chain.proposer_mut().random_rewrite();
            chain.run(start.clone(), 3_000);
        }
        let with_early = cf1.stats.testcases_run;
        {
            let mut cf2cfg = cf2.config().clone();
            cf2cfg.early_termination = false;
            *cf2.config_mut() = cf2cfg;
            let mut chain = Chain::new(&mut cf2, 17, false);
            chain.run(start, 3_000);
        }
        let without_early = cf2.stats.testcases_run;
        assert!(
            with_early < without_early,
            "early termination ({}) should evaluate fewer test cases than full evaluation ({})",
            with_early,
            without_early
        );
    }
}
