//! The cost function: test-case based correctness (`eq'`, Equation 8),
//! undefined-behaviour penalties (`err`, Equation 11), the improved
//! register equality metric (Equation 15), and the static performance
//! term (`perf`, Equation 13).
//!
//! The paper's term arithmetic lives in module-level helpers shared by two
//! front ends: the pluggable [`CostModel`](crate::model::CostModel) layer
//! (whose default, [`PaperCost`](crate::model::PaperCost), is what the
//! search pipeline uses) and the concrete [`CostFn`] convenience type kept
//! for benchmarks, examples and tests that want to evaluate `eq'`
//! directly. Both evaluate rewrites through the execution backend selected
//! by [`Config::backend`](crate::config::Config::backend) — the
//! interpreter, the decode-once [`PreparedProgram`], the batched
//! structure-of-arrays [`BatchedProgram`] (the default), or the
//! incremental prefix-checkpoint backend layered on the batched engine.
//! The backends share one set of instruction semantics, and the `eq'`
//! evaluators below are written so that every observable — totals,
//! early-termination decisions, the number of test cases charged to
//! [`EvalStats`] — is bit-identical across them.

use crate::config::{BackendSpec, Config, EqMetric};
use crate::testcase::{TestSuite, Testcase};
use stoke_emu::{
    BatchState, BatchedProgram, ColumnRef, Faults, MachineState, Memory, PrefixCheckpoints,
    PreparedMeta, PreparedProgram,
};
use stoke_x86::{Flag, Gpr, Instruction, Xmm};

/// The correctness-related cost of one rewrite on one test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaseCost {
    /// Register Hamming distance term (`reg` / `reg'`).
    pub reg: u64,
    /// Memory Hamming distance term (`mem`).
    pub mem: u64,
    /// Undefined behaviour term (`err`).
    pub err: u64,
}

impl CaseCost {
    /// Total cost contributed by the case.
    pub fn total(&self) -> u64 {
        self.reg + self.mem + self.err
    }
}

/// Statistics accumulated while evaluating rewrites (used for Figures 2
/// and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Number of test cases executed.
    pub testcases_run: u64,
    /// Number of rewrite evaluations requested.
    pub evaluations: u64,
    /// Number of evaluations cut short by the early-termination bound.
    pub early_terminations: u64,
    /// Instruction steps the incremental backend skipped by resuming from
    /// a prefix checkpoint instead of re-executing from instruction 0
    /// (always 0 for the other backends).
    pub instructions_skipped: u64,
    /// Number of evaluations the incremental backend served from a prefix
    /// checkpoint (always 0 for the other backends).
    pub checkpoint_restores: u64,
    /// Number of times the incremental backend re-sorted its test-case
    /// evaluation order most-discriminating-first (always 0 unless
    /// [`Config::reorder_interval`](crate::config::Config::reorder_interval)
    /// is non-zero).
    pub columns_reordered: u64,
}

impl EvalStats {
    /// Field-wise difference `self - earlier` (saturating), for slicing a
    /// cumulative cost-function counter into per-chain deltas.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            testcases_run: self.testcases_run.saturating_sub(earlier.testcases_run),
            evaluations: self.evaluations.saturating_sub(earlier.evaluations),
            early_terminations: self
                .early_terminations
                .saturating_sub(earlier.early_terminations),
            instructions_skipped: self
                .instructions_skipped
                .saturating_sub(earlier.instructions_skipped),
            checkpoint_restores: self
                .checkpoint_restores
                .saturating_sub(earlier.checkpoint_restores),
            columns_reordered: self
                .columns_reordered
                .saturating_sub(earlier.columns_reordered),
        }
    }
}

/// The `err(·)` term of Equation 11 for one execution's fault counters.
pub(crate) fn err_term(config: &Config, faults: &Faults) -> u64 {
    config.wsf * faults.sigsegv + config.wfp * faults.sigfpe + config.wur * faults.undef
}

/// A rewrite's final machine state as the cost terms read it, abstracted
/// over where the state lives: an owned [`MachineState`] (interpreter and
/// prepared backends) or a [`ColumnRef`] borrowing one column of a batch
/// (the batched backend compares columns in place, without extracting
/// them).
pub(crate) trait OutView {
    fn gpr64(&self, g: Gpr) -> u64;
    fn xmm(&self, x: Xmm) -> stoke_emu::XmmValue;
    fn flag(&self, f: Flag) -> bool;
    fn memory(&self) -> &Memory;
}

impl OutView for MachineState {
    fn gpr64(&self, g: Gpr) -> u64 {
        self.read_gpr64(g)
    }
    fn xmm(&self, x: Xmm) -> stoke_emu::XmmValue {
        self.read_xmm(x)
    }
    fn flag(&self, f: Flag) -> bool {
        self.read_flag(f)
    }
    fn memory(&self) -> &Memory {
        &self.memory
    }
}

impl OutView for ColumnRef<'_> {
    fn gpr64(&self, g: Gpr) -> u64 {
        self.read_gpr64(g)
    }
    fn xmm(&self, x: Xmm) -> stoke_emu::XmmValue {
        self.read_xmm(x)
    }
    fn flag(&self, f: Flag) -> bool {
        self.read_flag(f)
    }
    fn memory(&self) -> &Memory {
        ColumnRef::memory(self)
    }
}

/// The register distance term of one test case: strict (Equation 9) or
/// improved (Equation 15) depending on the configuration.
pub(crate) fn reg_term<V: OutView>(
    config: &Config,
    suite: &TestSuite,
    case: &Testcase,
    rewrite_out: &V,
) -> u64 {
    let mut total = 0u64;
    for g in &suite.live_out.gprs {
        let want = case.target_output.read_gpr64(*g);
        match config.eq_metric {
            EqMetric::Strict => {
                let got = rewrite_out.gpr64(*g);
                total += u64::from((want ^ got).count_ones());
            }
            EqMetric::Improved => {
                let mut best = u64::from((want ^ rewrite_out.gpr64(*g)).count_ones());
                for other in Gpr::ALL {
                    let d = u64::from((want ^ rewrite_out.gpr64(other)).count_ones())
                        + if other == *g { 0 } else { config.wm };
                    best = best.min(d);
                }
                total += best;
            }
        }
    }
    for x in &suite.live_out.xmms {
        let want = case.target_output.read_xmm(*x);
        match config.eq_metric {
            EqMetric::Strict => {
                let got = rewrite_out.xmm(*x);
                total += u64::from((want[0] ^ got[0]).count_ones())
                    + u64::from((want[1] ^ got[1]).count_ones());
            }
            EqMetric::Improved => {
                let dist = |got: [u64; 2]| {
                    u64::from((want[0] ^ got[0]).count_ones())
                        + u64::from((want[1] ^ got[1]).count_ones())
                };
                let mut best = dist(rewrite_out.xmm(*x));
                for other in Xmm::ALL {
                    let d = dist(rewrite_out.xmm(other)) + if other == *x { 0 } else { config.wm };
                    best = best.min(d);
                }
                total += best;
            }
        }
    }
    for f in &suite.live_out.flags {
        let want = case.target_output.read_flag(*f);
        let got = rewrite_out.flag(*f);
        total += u64::from(want != got);
    }
    total
}

/// The memory distance term of one test case: Hamming distance over every
/// byte written by either the target or the rewrite (unwritten sandbox
/// bytes are identical by construction). Strict only; the improved metric
/// is applied to registers alone in this reproduction.
pub(crate) fn mem_term<V: OutView>(suite: &TestSuite, case: &Testcase, rewrite_out: &V) -> u64 {
    let in_scratch = |addr: u64| {
        suite
            .scratch
            .map(|(start, len)| addr >= start && addr < start + len)
            .unwrap_or(false)
    };
    // Fast path: target and rewrite outputs both derive from the same
    // test-case input and sandboxed execution never changes the memory
    // layout, so the byte-by-byte Hamming distance collapses to a
    // word-wide XOR-popcount over the dense images.
    if let Some(total) = case
        .target_output
        .memory
        .diff_bits(rewrite_out.memory(), suite.scratch)
    {
        return total;
    }
    // Both byte streams are address-ordered, so one allocation-free
    // merge-join scores every written byte: addresses both sides wrote
    // compare directly, and a byte written on only one side compares
    // against the unwritten default of zero.
    let mut want_it = case.target_output.memory.iter().peekable();
    let mut got_it = rewrite_out.memory().iter().peekable();
    let mut total = 0u64;
    loop {
        let (addr, diff) = match (want_it.peek().copied(), got_it.peek().copied()) {
            (Some((wa, want)), Some((ga, got))) if wa == ga => {
                want_it.next();
                got_it.next();
                (wa, want ^ got)
            }
            (Some((wa, want)), Some((ga, _))) if wa < ga => {
                want_it.next();
                (wa, want)
            }
            (_, Some((ga, got))) => {
                got_it.next();
                (ga, got)
            }
            (Some((wa, want)), None) => {
                want_it.next();
                (wa, want)
            }
            (None, None) => break,
        };
        if !in_scratch(addr) {
            total += u64::from(diff.count_ones());
        }
    }
    total
}

/// Evaluate `eq'` of a prepared rewrite on one test case.
pub(crate) fn case_cost_prepared(
    config: &Config,
    suite: &TestSuite,
    case: &Testcase,
    prepared: &PreparedProgram<'_>,
) -> CaseCost {
    let outcome = prepared.run_prepared(&case.input);
    CaseCost {
        reg: reg_term(config, suite, case, &outcome.state),
        mem: mem_term(suite, case, &outcome.state),
        err: err_term(config, &outcome.faults),
    }
}

/// Evaluate the full correctness term `eq'(R; T, τ)` (Equation 8) of a
/// prepared rewrite across the whole suite, updating `stats`.
///
/// With `bound = Some(b)`, evaluation stops as soon as the running sum
/// exceeds `b` (the early-termination optimization of §4.5) and returns
/// `None`. The second component is the number of test cases evaluated.
pub(crate) fn eq_prime_prepared(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
    stats: &mut EvalStats,
    bound: Option<f64>,
) -> (Option<u64>, usize) {
    stats.evaluations += 1;
    let mut total = 0u64;
    for (i, case) in suite.cases.iter().enumerate() {
        stats.testcases_run += 1;
        total += case_cost_prepared(config, suite, case, prepared).total();
        if let Some(bound) = bound {
            if (total as f64) > bound {
                stats.early_terminations += 1;
                return (None, i + 1);
            }
        }
    }
    (Some(total), suite.cases.len())
}

/// `eq'` through the interpreter ([`stoke_emu::run_instr_refs`]): every
/// instruction is re-analyzed per test case. The reference arm of
/// [`eq_prime_backend`]; same contract as [`eq_prime_prepared`].
pub(crate) fn eq_prime_interp(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
    stats: &mut EvalStats,
    bound: Option<f64>,
) -> (Option<u64>, usize) {
    stats.evaluations += 1;
    let mut total = 0u64;
    for (i, case) in suite.cases.iter().enumerate() {
        stats.testcases_run += 1;
        let outcome = stoke_emu::run_instr_refs(prepared.instructions(), &case.input);
        total += CaseCost {
            reg: reg_term(config, suite, case, &outcome.state),
            mem: mem_term(suite, case, &outcome.state),
            err: err_term(config, &outcome.faults),
        }
        .total();
        if let Some(bound) = bound {
            if (total as f64) > bound {
                stats.early_terminations += 1;
                return (None, i + 1);
            }
        }
    }
    (Some(total), suite.cases.len())
}

/// `eq'` through the batched backend: one lockstep pass over the whole
/// suite, then an exact sequential walk of the per-column results. Same
/// contract as [`eq_prime_prepared`], and bit-identical to it in totals,
/// early-termination decisions, and statistics.
///
/// With a bound, the §4.5 check additionally runs as a per-instruction-step
/// predicate *during* execution: a column's accumulated `err(·)` cost is a
/// lower bound on its final case cost (the reg/mem terms only add), so once
/// the running prefix of those lower bounds over columns `0..=k` exceeds
/// the bound, the sequential walk below is guaranteed to early-terminate at
/// or before case `k` — columns `k+1..` can never be read, and are killed
/// so they stop costing work for the remaining instructions.
pub(crate) fn eq_prime_batched(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
    scratch: &mut EvalScratch,
    stats: &mut EvalStats,
    bound: Option<f64>,
) -> (Option<u64>, usize) {
    stats.evaluations += 1;
    let batched = BatchedProgram::new(prepared);
    let batch = &mut scratch.batch;
    // The scratch batch is only ever (re)filled from this cost function's
    // own suite, so after the first evaluation the memory images can be
    // restored from the store journal instead of re-copied.
    batch.reload(suite.cases.iter().map(|c| &c.input));
    match bound {
        None => batched.run_lockstep(batch),
        Some(b) => batched.run_lockstep_with(batch, |state| {
            let n = state.width();
            let mut prefix = 0u64;
            let mut dead_from = n;
            for col in 0..n {
                prefix += err_term(config, &state.faults(col));
                if (prefix as f64) > b {
                    dead_from = col + 1;
                    break;
                }
            }
            for col in dead_from..n {
                state.kill(col);
            }
            true
        }),
    }
    let mut total = 0u64;
    for (i, case) in suite.cases.iter().enumerate() {
        stats.testcases_run += 1;
        let col = batch.column(i);
        total += CaseCost {
            reg: reg_term(config, suite, case, &col),
            mem: mem_term(suite, case, &col),
            err: err_term(config, &col.faults()),
        }
        .total();
        if let Some(b) = bound {
            if (total as f64) > b {
                stats.early_terminations += 1;
                return (None, i + 1);
            }
        }
    }
    (Some(total), suite.cases.len())
}

/// `eq'` through the incremental backend: the batched engine of
/// [`eq_prime_batched`] plus prefix checkpointing. With
/// `reuse = Some(f)` — the caller's promise that the first `f` dense
/// instructions of `prepared` are identical to the program last committed
/// through [`CostFn::commit_baseline`] — the scratch batch is restored
/// from the deepest checkpoint at or before `f` and only the suffix
/// executes. Hintless calls (`reuse = None`, or no usable checkpoint)
/// reload and run from 0, exactly like the batched arm.
///
/// Observables (totals, early-termination decisions, statistics) are
/// bit-identical to [`eq_prime_batched`] when the evaluation order is the
/// suite order. With a non-zero
/// [`Config::reorder_interval`](crate::config::Config::reorder_interval)
/// the per-case walk runs in a most-discriminating-first permutation:
/// the §4.5 decision is order-invariant (every term is non-negative, so
/// some prefix of the running sum exceeds the bound iff the total does)
/// and unbounded totals are plain sums, so accept decisions and results
/// never change — only `testcases_run` may shrink.
pub(crate) fn eq_prime_incremental(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
    scratch: &mut EvalScratch,
    stats: &mut EvalStats,
    bound: Option<f64>,
    reuse: Option<usize>,
) -> (Option<u64>, usize) {
    stats.evaluations += 1;
    let batched = BatchedProgram::new(prepared);
    let EvalScratch {
        ref mut batch,
        ref mut ckpt,
        ref mut perm,
        ref mut hits,
        ref mut bounded_evals,
        pmeta: _,
    } = *scratch;
    let n_cases = suite.cases.len();
    if perm.len() != n_cases {
        perm.clear();
        perm.extend(0..n_cases);
        hits.clear();
        hits.resize(n_cases, 0);
    }
    if config.reorder_interval > 0 && bound.is_some() {
        *bounded_evals += 1;
        if *bounded_evals >= config.reorder_interval {
            *bounded_evals = 0;
            perm.sort_by(|&a, &b| hits[b].cmp(&hits[a]));
            stats.columns_reordered += 1;
        }
    }
    let resume = match reuse {
        Some(upto) => match ckpt.restore(batch, upto) {
            Some(pos) => {
                stats.checkpoint_restores += 1;
                stats.instructions_skipped += pos as u64;
                pos
            }
            None => {
                batch.reload(suite.cases.iter().map(|c| &c.input));
                0
            }
        },
        None => {
            batch.reload(suite.cases.iter().map(|c| &c.input));
            0
        }
    };
    match bound {
        None => batched.run_lockstep_with_from(batch, resume, |_| true),
        // The same err(·) lower-bound column kill as the batched arm, but
        // accumulated in the walk's (possibly permuted) order so that the
        // kills stay ahead of the walk below.
        Some(b) => batched.run_lockstep_with_from(batch, resume, |state| {
            let n = state.width();
            let mut prefix = 0u64;
            let mut dead_from = n;
            for (k, &col) in perm.iter().enumerate() {
                prefix += err_term(config, &state.faults(col));
                if (prefix as f64) > b {
                    dead_from = k + 1;
                    break;
                }
            }
            for &col in &perm[dead_from..] {
                state.kill(col);
            }
            true
        }),
    }
    let mut total = 0u64;
    for (k, &ci) in perm.iter().enumerate() {
        stats.testcases_run += 1;
        let case = &suite.cases[ci];
        let col = batch.column(ci);
        total += CaseCost {
            reg: reg_term(config, suite, case, &col),
            mem: mem_term(suite, case, &col),
            err: err_term(config, &col.faults()),
        }
        .total();
        if let Some(b) = bound {
            if (total as f64) > b {
                stats.early_terminations += 1;
                hits[ci] += 1;
                return (None, k + 1);
            }
        }
    }
    (Some(total), n_cases)
}

/// Evaluate `eq'` through the execution backend selected by
/// [`Config::backend`]. All arms share the contract (and the exact
/// statistics accounting) of [`eq_prime_prepared`]. The `reuse` prefix
/// hint (see [`CostFn::set_reuse_prefix`]) only reaches the incremental
/// arm; the other backends always evaluate in full.
pub(crate) fn eq_prime_backend(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
    scratch: &mut EvalScratch,
    stats: &mut EvalStats,
    bound: Option<f64>,
    reuse: Option<usize>,
) -> (Option<u64>, usize) {
    match config.backend {
        BackendSpec::Interp => eq_prime_interp(config, suite, prepared, stats, bound),
        BackendSpec::Prepared => eq_prime_prepared(config, suite, prepared, stats, bound),
        BackendSpec::Batched => eq_prime_batched(config, suite, prepared, scratch, stats, bound),
        BackendSpec::Incremental => {
            eq_prime_incremental(config, suite, prepared, scratch, stats, bound, reuse)
        }
    }
}

/// Whether a candidate passes every test case of `suite` (`eq' == 0`).
/// Does not touch any statistics — used by the re-rank / verification
/// stage, whose probe executions are not part of the search statistics.
pub(crate) fn passes_suite(
    config: &Config,
    suite: &TestSuite,
    prepared: &PreparedProgram<'_>,
) -> bool {
    let mut stats = EvalStats::default();
    let mut scratch = EvalScratch::default();
    eq_prime_backend(
        config,
        suite,
        prepared,
        &mut scratch,
        &mut stats,
        None,
        None,
    )
    .0 == Some(0)
}

/// Reusable evaluation buffers, owned by [`CostFn`] and lent to cost
/// models through [`EvalContext`](crate::model::EvalContext).
///
/// This holds the batched backend's [`BatchState`] — reloading one scratch
/// batch per evaluation is what keeps the hot path allocation-free — plus
/// the incremental backend's prefix checkpoints and adaptive test-case
/// ordering state. The struct is deliberately opaque so future backends
/// can add buffers without breaking the `EvalContext` API.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    pub(crate) batch: BatchState,
    /// Prefix checkpoints of the last committed baseline rewrite
    /// (incremental backend only; see [`CostFn::commit_baseline`]).
    pub(crate) ckpt: PrefixCheckpoints,
    /// Evaluation order over test-case columns: `perm[k]` is the k-th
    /// column walked. Identity until a reorder pass fires.
    pub(crate) perm: Vec<usize>,
    /// Per-column discrimination counters: how often each test case
    /// tripped the §4.5 early exit.
    pub(crate) hits: Vec<u64>,
    /// Bounded evaluations since the last reorder pass.
    pub(crate) bounded_evals: u64,
    /// Decoded metadata of the last committed baseline rewrite, so the
    /// incremental backend's per-proposal preparation decodes only the
    /// instructions a proposal changed
    /// ([`PreparedProgram::new_diffed`]).
    pub(crate) pmeta: PreparedMeta,
}

/// The cost function of §4: `c(R; T) = eq'(R; T, τ) + perf_weight · H(R)`.
#[derive(Debug, Clone)]
pub struct CostFn {
    config: Config,
    suite: TestSuite,
    scratch: EvalScratch,
    /// One-shot prefix-reuse hint for the next evaluation (incremental
    /// backend only); consumed by [`eval_context`](CostFn::eval_context),
    /// [`eq_prime`](CostFn::eq_prime) and
    /// [`eq_prime_bounded`](CostFn::eq_prime_bounded).
    reuse_prefix: Option<usize>,
    /// Static latency of the target, kept for reporting speedups.
    pub target_latency: u64,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl CostFn {
    /// Build a cost function from a configuration and a test suite.
    pub fn new(config: Config, suite: TestSuite, target_latency: u64) -> CostFn {
        CostFn {
            config,
            suite,
            scratch: EvalScratch::default(),
            reuse_prefix: None,
            target_latency,
            stats: EvalStats::default(),
        }
    }

    /// Set the prefix-reuse hint for the *next* evaluation: `Some(f)`
    /// promises that the first `f` dense instructions of the rewrite about
    /// to be evaluated are identical to the program last passed to
    /// [`commit_baseline`](CostFn::commit_baseline). The hint is one-shot
    /// — it is consumed (and cleared) by the next call to
    /// [`eval_context`](CostFn::eval_context),
    /// [`eq_prime`](CostFn::eq_prime) or
    /// [`eq_prime_bounded`](CostFn::eq_prime_bounded) — and it is ignored
    /// by every backend except [`BackendSpec::Incremental`]. A wrong hint
    /// is unsound: the incremental backend trusts it and will resume from
    /// a checkpoint mid-program.
    pub fn set_reuse_prefix(&mut self, prefix: Option<usize>) {
        self.reuse_prefix = prefix;
    }

    /// Commit `prepared` as the incremental backend's baseline rewrite:
    /// drop checkpoints past `keep_prefix` (dense instruction count of the
    /// unchanged prefix), then re-execute from the deepest surviving
    /// checkpoint, snapshotting the suite's column states every
    /// [`Config::checkpoint_interval`](crate::config::Config::checkpoint_interval)
    /// instructions (`0` auto-tunes to `max(1, ⌊√len⌋)`, balancing
    /// snapshot cost against expected re-execution length).
    ///
    /// Call this after *accepting* a proposal (and once at chain start for
    /// the initial rewrite). Rejected proposals need no call — they only
    /// touch the scratch batch, never the checkpoints. No-op unless the
    /// configured backend is [`BackendSpec::Incremental`].
    pub fn commit_baseline(&mut self, prepared: &PreparedProgram<'_>, keep_prefix: usize) {
        if self.config.backend != BackendSpec::Incremental {
            return;
        }
        let batched = BatchedProgram::new(prepared);
        let interval = if self.config.checkpoint_interval > 0 {
            self.config.checkpoint_interval
        } else {
            batched.len().isqrt().max(1)
        };
        self.scratch.ckpt.commit(
            &batched,
            &mut self.scratch.batch,
            self.suite.cases.iter().map(|c| &c.input),
            keep_prefix,
            interval,
        );
        // Keep the committed program's decoded form so the next proposals'
        // preparation can reuse it for everything they did not change.
        self.scratch.pmeta.store(prepared);
    }

    /// Prepare a rewrite for evaluation through this cost function's
    /// backend. For [`BackendSpec::Incremental`] this decodes only the
    /// instructions that differ from the last
    /// [committed](CostFn::commit_baseline) baseline (the result is
    /// identical to [`PreparedProgram::new`], just cheaper for the
    /// single-slot edits MCMC proposals make); every other backend decodes
    /// in full.
    pub fn prepare_rewrite<'a>(
        &self,
        rewrite: impl IntoIterator<Item = &'a Instruction>,
    ) -> PreparedProgram<'a> {
        if self.config.backend == BackendSpec::Incremental {
            PreparedProgram::new_diffed(rewrite, &self.scratch.pmeta)
        } else {
            PreparedProgram::new(rewrite)
        }
    }

    /// The test suite (e.g. to add validator counterexamples).
    pub fn suite(&self) -> &TestSuite {
        &self.suite
    }

    /// Mutable access to the test suite.
    pub fn suite_mut(&mut self) -> &mut TestSuite {
        &mut self.suite
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to switch the equality
    /// metric or toggle early termination between experiments).
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// An [`EvalContext`](crate::model::EvalContext) over this cost
    /// function's configuration, suite and statistics, for scoring through
    /// a [`CostModel`](crate::model::CostModel).
    pub fn eval_context(&mut self) -> crate::model::EvalContext<'_> {
        crate::model::EvalContext {
            config: &self.config,
            suite: &self.suite,
            scratch: &mut self.scratch,
            target_latency: self.target_latency,
            stats: &mut self.stats,
            reuse_prefix: self.reuse_prefix.take(),
        }
    }

    /// The `err(·)` term (Equation 11).
    pub fn err_term(&self, faults: &Faults) -> u64 {
        err_term(&self.config, faults)
    }

    /// The register distance term for one test case: strict (Equation 9)
    /// or improved (Equation 15) depending on the configuration.
    pub fn reg_term(&self, case: &Testcase, rewrite_out: &MachineState) -> u64 {
        reg_term(&self.config, &self.suite, case, rewrite_out)
    }

    /// The memory distance term for one test case: Hamming distance over
    /// every byte written by either the target or the rewrite (unwritten
    /// sandbox bytes are identical by construction). This is the strict
    /// metric; the improved variant is only applied to registers in this
    /// reproduction.
    pub fn mem_term(&self, case: &Testcase, rewrite_out: &MachineState) -> u64 {
        mem_term(&self.suite, case, rewrite_out)
    }

    /// Evaluate `eq'` on a single test case.
    pub fn case_cost(&self, case: &Testcase, rewrite: &[Instruction]) -> CaseCost {
        case_cost_prepared(
            &self.config,
            &self.suite,
            case,
            &PreparedProgram::new(rewrite),
        )
    }

    /// Evaluate the full correctness term `eq'(R; T, τ)` (Equation 8).
    ///
    /// The rewrite is prepared once and then executed on every test case
    /// through the backend selected by
    /// [`Config::backend`](crate::config::Config::backend).
    pub fn eq_prime(&mut self, rewrite: &[Instruction]) -> u64 {
        let prepared = self.prepare_rewrite(rewrite);
        let reuse = self.reuse_prefix.take();
        eq_prime_backend(
            &self.config,
            &self.suite,
            &prepared,
            &mut self.scratch,
            &mut self.stats,
            None,
            reuse,
        )
        .0
        .expect("unbounded evaluation always completes")
    }

    /// The performance term: the static latency heuristic `H(R)` of
    /// Equation 13, weighted by the configuration.
    pub fn perf_term(&self, rewrite: &[Instruction]) -> f64 {
        let h: u64 = rewrite.iter().map(|i| u64::from(i.latency())).sum();
        self.config.perf_weight * h as f64
    }

    /// The full cost used by the optimization phase.
    pub fn full_cost(&mut self, rewrite: &[Instruction]) -> f64 {
        self.eq_prime(rewrite) as f64 + self.perf_term(rewrite)
    }

    /// Evaluate `eq'` but stop as soon as the running sum exceeds `bound`
    /// (the early-termination optimization of §4.5). Returns `None` when
    /// the bound was exceeded — the proposal is guaranteed to be rejected.
    /// Also returns the number of test cases evaluated.
    pub fn eq_prime_bounded(
        &mut self,
        rewrite: &[Instruction],
        bound: f64,
    ) -> (Option<u64>, usize) {
        let prepared = self.prepare_rewrite(rewrite);
        let reuse = self.reuse_prefix.take();
        eq_prime_backend(
            &self.config,
            &self.suite,
            &prepared,
            &mut self.scratch,
            &mut self.stats,
            Some(bound),
            reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{generate_testcases, TargetSpec};
    use stoke_x86::Program;

    fn setup(metric: EqMetric) -> (CostFn, Program) {
        let target: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let spec = TargetSpec::with_gprs(target.clone(), &[Gpr::Rdi, Gpr::Rsi], &[Gpr::Rax]);
        let suite = generate_testcases(&spec, 8, 42);
        let config = Config {
            eq_metric: metric,
            ..Config::quick_test()
        };
        let latency = target.static_latency();
        (CostFn::new(config, suite, latency), target)
    }

    #[test]
    fn correct_rewrite_has_zero_eq() {
        let (mut cost, target) = setup(EqMetric::Improved);
        assert_eq!(cost.eq_prime(target.instrs()), 0);
        let equivalent: Program = "leaq (rdi,rsi,1), rax".parse().unwrap();
        assert_eq!(cost.eq_prime(equivalent.instrs()), 0);
    }

    #[test]
    fn wrong_rewrite_has_positive_eq() {
        let (mut cost, _) = setup(EqMetric::Improved);
        let wrong: Program = "movq rdi, rax\nsubq rsi, rax".parse().unwrap();
        assert!(cost.eq_prime(wrong.instrs()) > 0);
        let empty: Program = Program::new();
        assert!(cost.eq_prime(empty.instrs()) > 0);
    }

    #[test]
    fn improved_metric_rewards_value_in_wrong_register() {
        // Figure 6: the correct value lands in rbx instead of rax.
        let (mut strict, _) = setup(EqMetric::Strict);
        let (mut improved, _) = setup(EqMetric::Improved);
        let misplaced: Program = "movq rdi, rbx\naddq rsi, rbx".parse().unwrap();
        let s = strict.eq_prime(misplaced.instrs());
        let i = improved.eq_prime(misplaced.instrs());
        assert!(
            i < s,
            "improved ({}) must be cheaper than strict ({})",
            i,
            s
        );
        // The improved cost is exactly wm per test case (value present but
        // misplaced), while the strict cost is the full Hamming distance.
        assert_eq!(i, improved.config().wm * improved.suite().len() as u64);
    }

    #[test]
    // The expected value spells out count x weight per fault class.
    #[allow(clippy::identity_op)]
    fn err_term_weights_faults() {
        let (cost, _) = setup(EqMetric::Improved);
        let faults = Faults {
            sigsegv: 2,
            sigfpe: 1,
            undef: 3,
        };
        assert_eq!(cost.err_term(&faults), 2 * 1 + 1 * 1 + 3 * 2);
    }

    #[test]
    fn undefined_reads_are_penalized() {
        let (mut cost, _) = setup(EqMetric::Improved);
        // r11 is never defined in the test cases.
        let uses_undef: Program = "movq r11, rax\nmovq rdi, rax\naddq rsi, rax"
            .parse()
            .unwrap();
        let clean: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        assert!(cost.eq_prime(uses_undef.instrs()) > cost.eq_prime(clean.instrs()));
    }

    #[test]
    fn perf_term_prefers_shorter_code() {
        let (cost, target) = setup(EqMetric::Improved);
        let shorter: Program = "leaq (rdi,rsi,1), rax".parse().unwrap();
        assert!(cost.perf_term(shorter.instrs()) < cost.perf_term(target.instrs()));
    }

    #[test]
    fn early_termination_stops_early() {
        let (mut cost, _) = setup(EqMetric::Improved);
        let wrong: Program = "movq 0, rax".parse().unwrap();
        let (res, evaluated) = cost.eq_prime_bounded(wrong.instrs(), 5.0);
        assert!(res.is_none());
        assert!(
            evaluated < cost.suite().len(),
            "should stop before all {} cases",
            cost.suite().len()
        );
        assert_eq!(cost.stats.early_terminations, 1);
        // A permissive bound evaluates everything.
        let (res, evaluated) = cost.eq_prime_bounded(wrong.instrs(), 1e18);
        assert!(res.is_some());
        assert_eq!(evaluated, cost.suite().len());
    }

    #[test]
    fn backends_agree_on_totals_decisions_and_stats() {
        use crate::config::BackendSpec;
        let programs: [Program; 4] = [
            "movq rdi, rax\naddq rsi, rax".parse().unwrap(),
            "movq rdi, rax\nsubq rsi, rax".parse().unwrap(),
            "movq (rbx), rax".parse().unwrap(),
            "movq 0, rax".parse().unwrap(),
        ];
        for bound in [None, Some(5.0), Some(60.0), Some(1e18)] {
            for program in &programs {
                let mut results = Vec::new();
                for backend in [
                    BackendSpec::Interp,
                    BackendSpec::Prepared,
                    BackendSpec::Batched,
                    // Hintless incremental evaluation reloads and runs in
                    // full, so even the new checkpoint counters stay 0.
                    BackendSpec::Incremental,
                ] {
                    let (mut cost, _) = setup(EqMetric::Improved);
                    cost.config_mut().backend = backend;
                    let out = match bound {
                        None => (Some(cost.eq_prime(program.instrs())), cost.suite().len()),
                        Some(b) => cost.eq_prime_bounded(program.instrs(), b),
                    };
                    results.push((backend, out, cost.stats));
                }
                let (_, first_out, first_stats) = results[0];
                for (backend, out, stats) in &results[1..] {
                    assert_eq!(*out, first_out, "{backend:?} diverges on {program}");
                    assert_eq!(
                        *stats, first_stats,
                        "{backend:?} stats diverge on {program}"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_term_compares_stores() {
        use crate::testcase::InputSpec;
        let target: Program = "movl esi, (rdi)".parse().unwrap();
        let spec = TargetSpec::new(
            target.clone(),
            vec![
                InputSpec::pointer(Gpr::Rdi, 4),
                InputSpec::value32(Gpr::Rsi),
            ],
            stoke_x86::flow::LocSet::new(),
        );
        let suite = generate_testcases(&spec, 4, 9);
        let mut cost = CostFn::new(Config::quick_test(), suite, target.static_latency());
        assert_eq!(cost.eq_prime(target.instrs()), 0);
        let wrong: Program = "movl 0, (rdi)".parse().unwrap();
        assert!(cost.eq_prime(wrong.instrs()) > 0);
    }
}
