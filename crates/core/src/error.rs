//! Typed errors for the search driver: configuration validation failures
//! ([`ConfigError`]) and the top-level [`StokeError`] returned by
//! [`Session`](crate::driver::Session) runs, replacing the `expect`/panic
//! paths of the original blocking API.

use crate::search::StokeResult;
use std::fmt;
use stoke_x86::ParseError;

/// A violated [`Config`](crate::config::Config) invariant, detected by
/// [`ConfigBuilder::build`](crate::config::ConfigBuilder::build) or
/// [`Config::validate`](crate::config::Config::validate).
///
/// Each variant names one invariant that the raw `pub`-field struct could
/// previously violate silently (producing NaN move distributions, empty
/// sampling pools, or division by zero deep inside the MCMC chain).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A move probability (`pc`, `po`, `ps`, `pi` or `pu`) is negative or
    /// not finite.
    InvalidMoveProbability {
        /// The offending field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// All four move-kind probabilities (`pc + po + ps + pi`) sum to zero,
    /// which would make the proposal distribution undefined.
    AllMoveProbabilitiesZero,
    /// `pu` exceeds `1.0`. Unlike the move-kind weights, which are
    /// normalized, `pu` is compared against a uniform sample directly, so
    /// it must lie in `[0, 1]` (at `1.0` every instruction move proposes
    /// `UNUSED` — legal, but degenerate).
    UnusedProbabilityOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// The rewrite length ℓ is zero; a zero-slot rewrite cannot represent
    /// any program.
    ZeroRewriteLength,
    /// The opcode pool is empty: instruction moves would have nothing to
    /// sample.
    EmptyOpcodePool,
    /// The register pool is empty: operand moves would have nothing to
    /// sample.
    EmptyRegisterPool,
    /// `rerank_margin` is below `1.0` (or not finite), which would discard
    /// the best candidate from its own re-rank window.
    RerankMarginTooSmall {
        /// The offending value.
        value: f64,
    },
    /// `threads` is zero; the search needs at least one chain.
    ZeroThreads,
    /// The annealing constant β is not finite or not positive. A zero or
    /// NaN β degrades the Metropolis acceptance test to "accept
    /// everything" (the early-termination bound becomes infinite or NaN),
    /// silently turning the search into a pure random walk.
    InvalidBeta {
        /// The offending value.
        value: f64,
    },
    /// `perf_weight` is negative or not finite; a negative weight would
    /// reward *slower* rewrites during optimization.
    InvalidPerfWeight {
        /// The offending value.
        value: f64,
    },
    /// `num_testcases` is zero: with an empty suite every rewrite has
    /// cost 0, so synthesis instantly "succeeds" with garbage.
    ZeroTestcases,
    /// A backend name failed to parse as a
    /// [`BackendSpec`](crate::config::BackendSpec); the recognized names
    /// are `interp`, `prepared` and `batched`.
    UnknownBackend {
        /// The unrecognized name.
        name: String,
    },
    /// A [`CostModelSpec::Weighted`](crate::model::CostModelSpec::Weighted)
    /// term weight is out of range: weights must be finite and
    /// non-negative, and the correctness weight strictly positive — a
    /// negative weight would reward *incorrect* or *slower* rewrites, and
    /// a zero correctness weight makes every rewrite score as "correct",
    /// silently degenerating the search into a perf-only random walk.
    InvalidCostWeight {
        /// The offending weight (`correctness` or `performance`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidMoveProbability { field, value } => {
                write!(
                    f,
                    "move probability `{field}` must be finite and non-negative, got {value}"
                )
            }
            ConfigError::AllMoveProbabilitiesZero => {
                write!(
                    f,
                    "move probabilities pc + po + ps + pi must not all be zero"
                )
            }
            ConfigError::UnusedProbabilityOutOfRange { value } => {
                write!(
                    f,
                    "`pu` is an absolute probability and must be <= 1.0, got {value}"
                )
            }
            ConfigError::ZeroRewriteLength => {
                write!(f, "rewrite length `ell` must be at least 1")
            }
            ConfigError::EmptyOpcodePool => write!(f, "the opcode pool must not be empty"),
            ConfigError::EmptyRegisterPool => write!(f, "the register pool must not be empty"),
            ConfigError::RerankMarginTooSmall { value } => {
                write!(
                    f,
                    "`rerank_margin` must be a finite value >= 1.0, got {value}"
                )
            }
            ConfigError::ZeroThreads => write!(f, "`threads` must be at least 1"),
            ConfigError::InvalidBeta { value } => {
                write!(f, "`beta` must be a finite value > 0, got {value}")
            }
            ConfigError::InvalidPerfWeight { value } => {
                write!(
                    f,
                    "`perf_weight` must be finite and non-negative, got {value}"
                )
            }
            ConfigError::ZeroTestcases => {
                write!(f, "`num_testcases` must be at least 1")
            }
            ConfigError::UnknownBackend { name } => {
                write!(
                    f,
                    "unknown execution backend `{name}` \
                     (expected `interp`, `prepared`, `batched` or `incremental`)"
                )
            }
            ConfigError::InvalidCostWeight { field, value } => {
                write!(
                    f,
                    "cost model weight `{field}` must be finite and non-negative \
                     (and `correctness` strictly positive), got {value}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The error type of the session-based driver API.
#[derive(Debug, Clone)]
pub enum StokeError {
    /// Assembly text failed to parse.
    Parse(ParseError),
    /// The configuration violates an invariant (see [`ConfigError`]).
    InvalidConfig(ConfigError),
    /// The target program contains no instructions, so there is nothing to
    /// optimize against.
    EmptyTarget,
    /// The search budget (wall clock, proposal count, or an explicit
    /// cancellation) ran out before the pipeline completed.
    BudgetExhausted {
        /// The best result assembled from the work finished before the
        /// budget ran out. Its candidates passed every test case run so
        /// far, but the symbolic validation stage was skipped, so the
        /// verification status is at most
        /// [`Verification::TestsOnly`](crate::search::Verification::TestsOnly).
        partial: Box<StokeResult>,
    },
}

impl fmt::Display for StokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StokeError::Parse(e) => write!(f, "{e}"),
            StokeError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            StokeError::EmptyTarget => write!(f, "the target program is empty"),
            StokeError::BudgetExhausted { .. } => {
                write!(f, "search budget exhausted before the pipeline completed")
            }
        }
    }
}

impl std::error::Error for StokeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StokeError::Parse(e) => Some(e),
            StokeError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for StokeError {
    fn from(e: ParseError) -> StokeError {
        StokeError::Parse(e)
    }
}

impl From<ConfigError> for StokeError {
    fn from(e: ConfigError) -> StokeError {
        StokeError::InvalidConfig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_field() {
        let e = ConfigError::InvalidMoveProbability {
            field: "pc",
            value: -0.5,
        };
        assert!(e.to_string().contains("pc"));
        assert!(e.to_string().contains("-0.5"));
    }

    #[test]
    fn stoke_error_wraps_sources() {
        let parse: StokeError = "bogus instruction"
            .parse::<stoke_x86::Program>()
            .unwrap_err()
            .into();
        assert!(matches!(parse, StokeError::Parse(_)));
        let config: StokeError = ConfigError::ZeroThreads.into();
        assert!(std::error::Error::source(&config).is_some());
        assert!(config.to_string().contains("threads"));
    }
}
