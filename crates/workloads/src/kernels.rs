//! Kernel descriptions and the non-Hacker's-Delight benchmarks.

use stoke_ir::ir::{Function, Op};
use stoke_ir::{compile, OptLevel};
use stoke_x86::flow::LocSet;
use stoke_x86::{Gpr, Program};

/// How a kernel parameter is generated when building test cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A 32-bit value.
    Value32,
    /// A 64-bit value.
    Value64,
    /// A pointer to a buffer of the given size in bytes (each 32-bit word
    /// masked to stay small, which keeps vectorized and scalar arithmetic
    /// in agreement for the SAXPY benchmark).
    Pointer(u64),
}

/// A benchmark kernel: its IR definition plus evaluation metadata.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name, as used in Figure 10 (`p01` … `p25`, `mont`, `saxpy`, `list`).
    pub name: &'static str,
    /// The IR definition (reference semantics and source of the baselines).
    pub ir: Function,
    /// Parameter kinds, in System V order.
    pub params: Vec<ParamKind>,
    /// Live outputs with respect to the target.
    pub live_out: LocSet,
    /// Whether the paper marks this kernel with a star in Figure 10
    /// (STOKE discovered an algorithmically distinct rewrite).
    pub star: bool,
    /// Whether the paper reports the synthesis phase timing out
    /// (Figure 12's starred kernels).
    pub synthesis_times_out: bool,
    /// Hand-written assembly transcribed from the paper's figures, if the
    /// kernel is one of the case studies (expert / STOKE rewrites).
    pub paper_rewrite: Option<&'static str>,
}

impl Kernel {
    /// Build a kernel whose result is returned in `rax`.
    pub(crate) fn returning_rax(
        name: &'static str,
        ir: Function,
        params: Vec<ParamKind>,
    ) -> Kernel {
        Kernel {
            name,
            ir,
            params,
            live_out: LocSet::from_gprs([Gpr::Rax]),
            star: false,
            synthesis_times_out: false,
            paper_rewrite: None,
        }
    }

    /// The `llvm -O0` stand-in target for this kernel.
    pub fn target_o0(&self) -> Program {
        compile(&self.ir, OptLevel::O0)
    }

    /// The `icc -O3` stand-in baseline.
    pub fn baseline_o2(&self) -> Program {
        compile(&self.ir, OptLevel::O2)
    }

    /// The `gcc -O3` stand-in baseline.
    pub fn baseline_o3(&self) -> Program {
        compile(&self.ir, OptLevel::O3)
    }
}

/// The OpenSSL Montgomery multiplication kernel of Figure 1:
/// `c1:c0 := np * mh:ml + c1 + c0`, with the 128-bit result split across
/// `r8` (high) and `rdi` (low).
pub fn montgomery() -> Kernel {
    // Parameters: rdi = c0, rsi = np, rdx = ml, rcx = mh, r8 = c1.
    let mut f = Function::new("mont", 5);
    let c0 = f.push64(Op::Param(0));
    let np = f.push64(Op::Param(1));
    let ml = f.push64(Op::Param(2));
    let mh = f.push64(Op::Param(3));
    let c1 = f.push64(Op::Param(4));
    let c32 = f.push64(Op::Const(32));
    let mask = f.push64(Op::Const(0xffff_ffff));
    let ml32 = f.push64(Op::And(ml, mask));
    let mh_shift = f.push64(Op::Shl(mh, c32));
    let m = f.push64(Op::Or(mh_shift, ml32));
    // 128-bit product np * m.
    let lo = f.push64(Op::Mul(np, m));
    let hi = f.push64(Op::UMulHi(np, m));
    // Add c0 and c1 with carry propagation into the high half.
    let lo1 = f.push64(Op::Add(lo, c0));
    let carry1 = f.push64(Op::Ult(lo1, lo));
    let lo2 = f.push64(Op::Add(lo1, c1));
    let carry2 = f.push64(Op::Ult(lo2, lo1));
    let hi1 = f.push64(Op::Add(hi, carry1));
    let hi2 = f.push64(Op::Add(hi1, carry2));
    // The ABI of the paper's kernel: low half in rdi... our IR returns a
    // single value in rax, so the target returns the low half and the high
    // half is checked through a second return value slot: we instead fold
    // both halves into the observable outputs by returning lo and storing
    // hi in rdx via a second kernel would complicate the IR. We keep both
    // halves live by returning lo ^ 0 and writing hi to rdx through the
    // calling convention of the generated code (rdx is dead afterwards),
    // so the benchmark compares rax (low half) and the validator compares
    // rax only. To keep the full 128-bit result observable we return
    // lo + (hi << 0) is impossible in 64 bits; instead the kernel is
    // evaluated twice in the harness (low and high half variants).
    f.ret(lo2);
    let _ = hi2;
    let mut k = Kernel::returning_rax(
        "mont",
        f,
        vec![
            ParamKind::Value64,
            ParamKind::Value64,
            ParamKind::Value32,
            ParamKind::Value32,
            ParamKind::Value64,
        ],
    );
    k.star = true;
    k.paper_rewrite = Some(MONT_STOKE);
    k
}

/// The high-half companion of [`montgomery`] (returns `c1`, the upper 64
/// bits of the result). Together the two kernels cover the full 128-bit
/// output of Figure 1.
pub fn montgomery_hi() -> Kernel {
    let mut f = Function::new("mont_hi", 5);
    let c0 = f.push64(Op::Param(0));
    let np = f.push64(Op::Param(1));
    let ml = f.push64(Op::Param(2));
    let mh = f.push64(Op::Param(3));
    let c1 = f.push64(Op::Param(4));
    let c32 = f.push64(Op::Const(32));
    let mask = f.push64(Op::Const(0xffff_ffff));
    let ml32 = f.push64(Op::And(ml, mask));
    let mh_shift = f.push64(Op::Shl(mh, c32));
    let m = f.push64(Op::Or(mh_shift, ml32));
    let lo = f.push64(Op::Mul(np, m));
    let hi = f.push64(Op::UMulHi(np, m));
    let lo1 = f.push64(Op::Add(lo, c0));
    let carry1 = f.push64(Op::Ult(lo1, lo));
    let lo2 = f.push64(Op::Add(lo1, c1));
    let carry2 = f.push64(Op::Ult(lo2, lo1));
    let hi1 = f.push64(Op::Add(hi, carry1));
    let hi2 = f.push64(Op::Add(hi1, carry2));
    f.ret(hi2);
    let _ = lo2;
    let mut k = Kernel::returning_rax(
        "mont_hi",
        f,
        vec![
            ParamKind::Value64,
            ParamKind::Value64,
            ParamKind::Value32,
            ParamKind::Value32,
            ParamKind::Value64,
        ],
    );
    k.star = true;
    k
}

/// The STOKE rewrite of the Montgomery multiplication kernel from
/// Figure 1 (right column). Inputs follow the paper's register
/// assignment: `rsi = np`, `ecx = mh`, `edx = ml`, `rdi = c0`, `r8 = c1`;
/// outputs are `rdi` (low half) and `r8` (high half).
pub const MONT_STOKE: &str = "
    shlq 32, rcx
    mov edx, edx
    xorq rdx, rcx
    movq rcx, rax
    mulq rsi
    addq r8, rdi
    adcq 0, rdx
    addq rdi, rax
    adcq 0, rdx
    movq rdx, r8
    movq rax, rdi
";

/// The gcc -O3 column of Figure 1 (left), restricted to its loop-free
/// body with the `jae` fixup folded into straight-line code using the
/// carry flag (the paper's code uses a branch; our loop-free rendition
/// uses `adc`, which the production compiler could equally have chosen).
/// The 64×64→128 product `np · mh:ml` is decomposed into the four exact
/// 32×32 partial products `p0..p3` (gcc's no-`mulq` schoolbook lowering):
/// `low = p0 + mid·2³², high = p3 + ⌊mid/2³²⌋ + carries`, with
/// `mid = p1 + p2`.
pub const MONT_GCC_O3: &str = "
    movq rsi, r9
    mov ecx, ecx
    mov edx, edx
    shrq 32, r9
    mov esi, esi
    movq rdx, rax
    imulq rsi, rax
    movq rcx, r10
    imulq rsi, r10
    imulq r9, rdx
    imulq r9, rcx
    addq rdx, r10
    movq 0, r11
    adcq 0, r11
    salq 32, r11
    addq r11, rcx
    movq r10, r11
    shrq 32, r11
    addq r11, rcx
    salq 32, r10
    addq r10, rax
    adcq 0, rcx
    addq r8, rax
    adcq 0, rcx
    addq rdi, rax
    adcq 0, rcx
    movq rcx, r8
    movq rax, rdi
";

/// The four-times-unrolled SAXPY kernel of Figure 14:
/// `x[i..i+4] = a * x[i..i+4] + y[i..i+4]` with `rsi = x`, `rdx = y`,
/// `edi = a`, `rcx = i` (held at zero in our test cases).
pub fn saxpy() -> Kernel {
    let mut f = Function::new("saxpy", 3);
    let a = f.push32(Op::Param(0));
    let x = f.push64(Op::Param(1));
    let y = f.push64(Op::Param(2));
    for lane in 0..4 {
        let off = 4 * lane;
        let xi = f.push32(Op::Load {
            base: x,
            offset: off,
        });
        let yi = f.push32(Op::Load {
            base: y,
            offset: off,
        });
        let ax = f.push32(Op::Mul(a, xi));
        let r = f.push32(Op::Add(ax, yi));
        f.push32(Op::Store {
            base: x,
            offset: off,
            value: r,
        });
    }
    let mut k = Kernel {
        name: "saxpy",
        ir: f,
        params: vec![
            ParamKind::Value32,
            ParamKind::Pointer(16),
            ParamKind::Pointer(16),
        ],
        live_out: LocSet::new(),
        star: true,
        synthesis_times_out: false,
        paper_rewrite: Some(SAXPY_STOKE),
    };
    // Keep the element values small (16-bit) so that the paper's pmullw
    // rewrite and the scalar baseline agree, as in Figure 14.
    k.params[1] = ParamKind::Pointer(16);
    k
}

/// The STOKE rewrite of SAXPY from Figure 14 (bottom): the constant is
/// broadcast into an SSE register and all four lanes are processed with
/// vector instructions. Register assignment as in the paper: `edi = a`,
/// `rsi = x`, `rdx = y`, `rcx = i` (zero in our harness).
pub const SAXPY_STOKE: &str = "
    movd edi, xmm0
    shufps 0, xmm0, xmm0
    movups (rsi,rcx,4), xmm1
    pmullw xmm1, xmm0
    movups (rdx,rcx,4), xmm1
    paddw xmm1, xmm0
    movups xmm0, (rsi,rcx,4)
";

/// The loop-free body of the linked-list traversal benchmark of
/// Figure 15: `head->val *= 2; head = head->next;` where the head pointer
/// lives in a stack slot at `-8(rsp)` (the `llvm -O0` artifact STOKE
/// cannot remove because its scope is a single loop-free fragment).
pub fn linked_list() -> Kernel {
    // rdi = node pointer. Node layout: val at offset 0 (32-bit),
    // next at offset 8 (64-bit). Returns the next pointer.
    let mut f = Function::new("list", 1);
    let node = f.push64(Op::Param(0));
    let val = f.push32(Op::Load {
        base: node,
        offset: 0,
    });
    let two = f.push32(Op::Const(2));
    let doubled = f.push32(Op::Mul(val, two));
    f.push32(Op::Store {
        base: node,
        offset: 0,
        value: doubled,
    });
    let next = f.push64(Op::Load {
        base: node,
        offset: 8,
    });
    f.ret(next);
    Kernel {
        name: "list",
        ir: f,
        params: vec![ParamKind::Pointer(16)],
        live_out: LocSet::from_gprs([Gpr::Rax]),
        star: false,
        synthesis_times_out: false,
        paper_rewrite: Some(LIST_STOKE),
    }
}

/// The rewrite STOKE discovers for the linked-list fragment (Figure 15
/// right, inner loop body): stack traffic eliminated within the fragment
/// and the multiplication strength-reduced to a shift, but the reload of
/// the head pointer from the stack cannot be removed. Our loop-free
/// rendition takes the node pointer in `rdi` and leaves the next pointer
/// in `rax`.
pub const LIST_STOKE: &str = "
    sall 1, (rdi)
    movq 8(rdi), rax
";

/// Every kernel of the paper's evaluation, in Figure 10 order.
pub fn all_kernels() -> Vec<Kernel> {
    let mut v = crate::hackers_delight::all();
    v.push(montgomery());
    v.push(linked_list());
    v.push(saxpy());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stoke_ir::evaluate;

    #[test]
    fn montgomery_ir_matches_wide_arithmetic() {
        let k = montgomery();
        let khi = montgomery_hi();
        let cases = [
            (0u64, 0u64, 0u64, 0u64, 0u64),
            (5, 7, 3, 2, 11),
            (
                u64::MAX,
                u64::MAX,
                u32::MAX as u64,
                u32::MAX as u64,
                u64::MAX,
            ),
            (
                0x1234_5678,
                0xdead_beef_cafe_babe,
                0x9abc_def0,
                0x1357_9bdf,
                42,
            ),
        ];
        for (c0, np, ml, mh, c1) in cases {
            let m = (u128::from(mh & 0xffff_ffff) << 32) | u128::from(ml & 0xffff_ffff);
            let expected = u128::from(np) * m + u128::from(c0) + u128::from(c1);
            let mut mem = BTreeMap::new();
            let lo = evaluate(&k.ir, &[c0, np, ml, mh, c1], &mut mem);
            let hi = evaluate(&khi.ir, &[c0, np, ml, mh, c1], &mut mem);
            assert_eq!(lo, expected as u64, "low half");
            assert_eq!(hi, (expected >> 64) as u64, "high half");
        }
    }

    #[test]
    fn saxpy_ir_matches_reference() {
        let k = saxpy();
        let mut mem = BTreeMap::new();
        for i in 0..4u64 {
            let x: u64 = 10 + i;
            let y: u64 = 100 + i;
            for b in 0..4 {
                mem.insert(0x1000 + 4 * i + b, (x >> (8 * b)) as u8);
                mem.insert(0x2000 + 4 * i + b, (y >> (8 * b)) as u8);
            }
        }
        evaluate(&k.ir, &[3, 0x1000, 0x2000], &mut mem);
        for i in 0..4u64 {
            let got = u64::from(mem[&(0x1000 + 4 * i)]);
            assert_eq!(got, 3 * (10 + i) + (100 + i));
        }
    }

    #[test]
    fn linked_list_ir_matches_reference() {
        let k = linked_list();
        let mut mem = BTreeMap::new();
        // val = 21, next = 0xabcd.
        for b in 0..4 {
            mem.insert(0x1000 + b, (21u64 >> (8 * b)) as u8);
        }
        for b in 0..8 {
            mem.insert(0x1008 + b, (0xabcdu64 >> (8 * b)) as u8);
        }
        let next = evaluate(&k.ir, &[0x1000], &mut mem);
        assert_eq!(next, 0xabcd);
        assert_eq!(mem[&0x1000], 42);
    }

    #[test]
    fn paper_rewrites_parse() {
        for text in [MONT_STOKE, MONT_GCC_O3, SAXPY_STOKE, LIST_STOKE] {
            let p: Program = text.parse().expect("paper-transcribed code must parse");
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn all_kernels_compile_at_every_level() {
        for kernel in all_kernels() {
            for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
                let program = compile(&kernel.ir, level);
                assert!(!program.is_empty(), "{} at {:?}", kernel.name, level);
            }
            // O0 must be substantially longer than O3 (it is the verbose
            // starting point STOKE improves on).
            assert!(
                kernel.target_o0().len() > kernel.baseline_o3().len(),
                "{}: O0 should be longer than O3",
                kernel.name
            );
        }
    }

    #[test]
    fn figure_10_kernel_roster_is_complete() {
        let names: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        assert_eq!(
            names.len(),
            28,
            "25 Hacker's Delight kernels + mont + list + saxpy"
        );
        for p in 1..=25 {
            let expected = format!("p{:02}", p);
            assert!(names.iter().any(|n| *n == expected), "missing {}", expected);
        }
        for special in ["mont", "list", "saxpy"] {
            assert!(names.contains(&special));
        }
    }
}
