//! The 25 Hacker's Delight kernels (p01–p25) of Gulwani's program
//! synthesis benchmark, as used in §6.1 of the paper. Each kernel is the
//! straightforward C formulation from the book, transcribed into the
//! `stoke-ir` expression IR; widths are 32-bit except where the kernel is
//! inherently 64-bit (p25).

use crate::kernels::{Kernel, ParamKind};
use stoke_ir::ir::{Function, Op, ValueId};

fn kernel32(
    name: &'static str,
    params: usize,
    build: impl FnOnce(&mut Function, &[ValueId]),
) -> Kernel {
    let mut f = Function::new(name, params);
    let ps: Vec<ValueId> = (0..params).map(|i| f.push32(Op::Param(i))).collect();
    build(&mut f, &ps);
    Kernel::returning_rax(name, f, vec![ParamKind::Value32; params])
}

/// p01: turn off the rightmost set bit — `x & (x - 1)`.
pub fn p01() -> Kernel {
    kernel32("p01", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Sub(p[0], one));
        let r = f.push32(Op::And(p[0], m));
        f.ret(r);
    })
}

/// p02: test whether `x` is of the form `2^n - 1` — `x & (x + 1)`.
pub fn p02() -> Kernel {
    kernel32("p02", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Add(p[0], one));
        let r = f.push32(Op::And(p[0], m));
        f.ret(r);
    })
}

/// p03: isolate the rightmost set bit — `x & -x`.
pub fn p03() -> Kernel {
    kernel32("p03", 1, |f, p| {
        let n = f.push32(Op::Neg(p[0]));
        let r = f.push32(Op::And(p[0], n));
        f.ret(r);
    })
}

/// p04: mask identifying the rightmost set bit and the trailing zeros —
/// `x ^ (x - 1)`.
pub fn p04() -> Kernel {
    kernel32("p04", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Sub(p[0], one));
        let r = f.push32(Op::Xor(p[0], m));
        f.ret(r);
    })
}

/// p05: right-propagate the rightmost set bit — `x | (x - 1)`.
pub fn p05() -> Kernel {
    kernel32("p05", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Sub(p[0], one));
        let r = f.push32(Op::Or(p[0], m));
        f.ret(r);
    })
}

/// p06: turn on the rightmost zero bit — `x | (x + 1)`.
pub fn p06() -> Kernel {
    kernel32("p06", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Add(p[0], one));
        let r = f.push32(Op::Or(p[0], m));
        f.ret(r);
    })
}

/// p07: isolate the rightmost zero bit — `~x & (x + 1)`.
pub fn p07() -> Kernel {
    kernel32("p07", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let n = f.push32(Op::Not(p[0]));
        let m = f.push32(Op::Add(p[0], one));
        let r = f.push32(Op::And(n, m));
        f.ret(r);
    })
}

/// p08: mask of the trailing zeros — `~x & (x - 1)`.
pub fn p08() -> Kernel {
    kernel32("p08", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let n = f.push32(Op::Not(p[0]));
        let m = f.push32(Op::Sub(p[0], one));
        let r = f.push32(Op::And(n, m));
        f.ret(r);
    })
}

/// p09: absolute value — `t = x >> 31; (x ^ t) - t`.
pub fn p09() -> Kernel {
    kernel32("p09", 1, |f, p| {
        let c31 = f.push32(Op::Const(31));
        let t = f.push32(Op::Sar(p[0], c31));
        let x = f.push32(Op::Xor(p[0], t));
        let r = f.push32(Op::Sub(x, t));
        f.ret(r);
    })
}

/// p10: test whether `nlz(x) == nlz(y)` — `(x & y) >= (x ^ y)` (unsigned).
pub fn p10() -> Kernel {
    kernel32("p10", 2, |f, p| {
        let a = f.push32(Op::And(p[0], p[1]));
        let b = f.push32(Op::Xor(p[0], p[1]));
        let lt = f.push32(Op::Ult(a, b));
        let one = f.push32(Op::Const(1));
        let r = f.push32(Op::Xor(lt, one));
        f.ret(r);
    })
}

/// p11: test whether `nlz(x) < nlz(y)` — `(~y & x) > y` (unsigned).
pub fn p11() -> Kernel {
    kernel32("p11", 2, |f, p| {
        let ny = f.push32(Op::Not(p[1]));
        let a = f.push32(Op::And(ny, p[0]));
        let r = f.push32(Op::Ult(p[1], a));
        f.ret(r);
    })
}

/// p12: test whether `nlz(x) <= nlz(y)` — `(~x & y) <= x` (unsigned).
pub fn p12() -> Kernel {
    kernel32("p12", 2, |f, p| {
        let nx = f.push32(Op::Not(p[0]));
        let a = f.push32(Op::And(nx, p[1]));
        let gt = f.push32(Op::Ult(p[0], a));
        let one = f.push32(Op::Const(1));
        let r = f.push32(Op::Xor(gt, one));
        f.ret(r);
    })
}

/// p13: sign function — `(x >> 31) | ((unsigned)-x >> 31)`.
pub fn p13() -> Kernel {
    kernel32("p13", 1, |f, p| {
        let c31 = f.push32(Op::Const(31));
        let a = f.push32(Op::Sar(p[0], c31));
        let n = f.push32(Op::Neg(p[0]));
        let b = f.push32(Op::Shr(n, c31));
        let r = f.push32(Op::Or(a, b));
        f.ret(r);
    })
}

/// p14: floor of the average — `(x & y) + ((x ^ y) >> 1)`.
pub fn p14() -> Kernel {
    kernel32("p14", 2, |f, p| {
        let a = f.push32(Op::And(p[0], p[1]));
        let b = f.push32(Op::Xor(p[0], p[1]));
        let one = f.push32(Op::Const(1));
        let h = f.push32(Op::Shr(b, one));
        let r = f.push32(Op::Add(a, h));
        f.ret(r);
    })
}

/// p15: ceiling of the average — `(x | y) - ((x ^ y) >> 1)`.
pub fn p15() -> Kernel {
    kernel32("p15", 2, |f, p| {
        let a = f.push32(Op::Or(p[0], p[1]));
        let b = f.push32(Op::Xor(p[0], p[1]));
        let one = f.push32(Op::Const(1));
        let h = f.push32(Op::Shr(b, one));
        let r = f.push32(Op::Sub(a, h));
        f.ret(r);
    })
}

/// p16: maximum of two integers — `x ^ ((x ^ y) & -(x < y))`.
pub fn p16() -> Kernel {
    kernel32("p16", 2, |f, p| {
        let d = f.push32(Op::Xor(p[0], p[1]));
        let lt = f.push32(Op::Slt(p[0], p[1]));
        let m = f.push32(Op::Neg(lt));
        let a = f.push32(Op::And(d, m));
        let r = f.push32(Op::Xor(p[0], a));
        f.ret(r);
    })
}

/// p17: turn off the rightmost contiguous string of set bits —
/// `((x | (x - 1)) + 1) & x`.
pub fn p17() -> Kernel {
    kernel32("p17", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let m = f.push32(Op::Sub(p[0], one));
        let o = f.push32(Op::Or(p[0], m));
        let a = f.push32(Op::Add(o, one));
        let r = f.push32(Op::And(a, p[0]));
        f.ret(r);
    })
}

/// p18: determine whether `x` is a power of two —
/// `(x & (x - 1)) == 0 && x != 0`.
pub fn p18() -> Kernel {
    let mut k = kernel32("p18", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let zero = f.push32(Op::Const(0));
        let m = f.push32(Op::Sub(p[0], one));
        let a = f.push32(Op::And(p[0], m));
        let is_zero = f.push32(Op::Eq(a, zero));
        let nonzero = f.push32(Op::Ne(p[0], zero));
        let r = f.push32(Op::And(is_zero, nonzero));
        f.ret(r);
    });
    k.star = true;
    k
}

/// p19: exchange two bit fields of a word (fields selected by mask `m`,
/// distance `k`): `t = ((x >> k) ^ x) & m; x ^ t ^ (t << k)`.
pub fn p19() -> Kernel {
    let mut k = kernel32("p19", 3, |f, p| {
        // p[0] = x, p[1] = m, p[2] = k.
        let sh = f.push32(Op::Shr(p[0], p[2]));
        let x1 = f.push32(Op::Xor(sh, p[0]));
        let t = f.push32(Op::And(x1, p[1]));
        let back = f.push32(Op::Shl(t, p[2]));
        let a = f.push32(Op::Xor(p[0], t));
        let r = f.push32(Op::Xor(a, back));
        f.ret(r);
    });
    k.synthesis_times_out = true;
    k
}

/// p20: next higher unsigned number with the same number of set bits
/// (Gosper's hack, division replaced by shifts as in the Brahma suite).
pub fn p20() -> Kernel {
    let mut k = kernel32("p20", 1, |f, p| {
        // c = x & -x; r = x + c; y = r | (((x ^ r) >> 2) / c)  — the
        // division by the low bit c is a right shift by tz(c); we use the
        // book's divisor-free variant: ((x ^ r) >> 2) / c == ((x ^ r) >> 2) >> tz(c),
        // expressed here with an explicit division-free sequence using
        // multiplication-free operations only.
        let c = {
            let n = f.push32(Op::Neg(p[0]));
            f.push32(Op::And(p[0], n))
        };
        let r = f.push32(Op::Add(p[0], c));
        let x_xor_r = f.push32(Op::Xor(p[0], r));
        let two = f.push32(Op::Const(2));
        let q = f.push32(Op::Shr(x_xor_r, two));
        // q / c where c is a power of two: shift right by the bit index of
        // c. The bit index is recovered by a de-Bruijn-free small loop-free
        // trick: since c is a power of two, q / c == (q * reciprocal) is
        // overkill; we use the identity q >> log2(c) computed via
        // conditional shifts on each bit of log2(c) (5 steps for 32 bits).
        let mut acc = q;
        let mut shift_amount = 16u32;
        let mut cbit = c;
        // Build log2(c) by testing whether c >= 2^16, 2^8, ... and
        // shifting both c and q accordingly.
        for _ in 0..5 {
            let threshold = f.push32(Op::Const(1i64 << shift_amount));
            let ge = {
                let lt = f.push32(Op::Ult(cbit, threshold));
                let one = f.push32(Op::Const(1));
                f.push32(Op::Xor(lt, one))
            };
            let amount = f.push32(Op::Const(i64::from(shift_amount)));
            let shifted_q = f.push32(Op::Shr(acc, amount));
            acc = f.push32(Op::Ite(ge, shifted_q, acc));
            let shifted_c = f.push32(Op::Shr(cbit, amount));
            cbit = f.push32(Op::Ite(ge, shifted_c, cbit));
            shift_amount /= 2;
        }
        let out = f.push32(Op::Or(r, acc));
        f.ret(out);
    });
    k.synthesis_times_out = true;
    k
}

/// p21: cycle through the three values a, b, c (Figure 13):
/// `((-(x == c)) & (a ^ c)) ^ ((-(x == a)) & (b ^ c)) ^ c`.
pub fn p21() -> Kernel {
    let mut k = kernel32("p21", 4, |f, p| {
        // p[0] = x, p[1] = a, p[2] = b, p[3] = c.
        let eq_c = f.push32(Op::Eq(p[0], p[3]));
        let m1 = f.push32(Op::Neg(eq_c));
        let a_xor_c = f.push32(Op::Xor(p[1], p[3]));
        let t1 = f.push32(Op::And(m1, a_xor_c));
        let eq_a = f.push32(Op::Eq(p[0], p[1]));
        let m2 = f.push32(Op::Neg(eq_a));
        let b_xor_c = f.push32(Op::Xor(p[2], p[3]));
        let t2 = f.push32(Op::And(m2, b_xor_c));
        let x1 = f.push32(Op::Xor(t1, t2));
        let r = f.push32(Op::Xor(x1, p[3]));
        f.ret(r);
    });
    k.star = true;
    k.paper_rewrite = Some(P21_STOKE);
    k
}

/// The rewrite STOKE discovers for p21 (Figure 13, right): the natural
/// conditional-move implementation. Inputs: `edi = x`, `esi = a`,
/// `edx = b`, `ecx = c`; output in `rax`/`eax`.
pub const P21_STOKE: &str = "
    cmpl edi, ecx
    cmovel esi, ecx
    xorl edi, esi
    cmovel edx, ecx
    movq rcx, rax
";

/// p22: compute the parity of a word (the book's xor-folding formulation).
pub fn p22() -> Kernel {
    let mut k = kernel32("p22", 1, |f, p| {
        let mut x = p[0];
        for shift in [16i64, 8, 4, 2, 1] {
            let c = f.push32(Op::Const(shift));
            let s = f.push32(Op::Shr(x, c));
            x = f.push32(Op::Xor(x, s));
        }
        let one = f.push32(Op::Const(1));
        let r = f.push32(Op::And(x, one));
        f.ret(r);
    });
    k.star = true;
    k
}

/// p23: count the set bits of a word (the book's SWAR popcount).
pub fn p23() -> Kernel {
    let mut k = kernel32("p23", 1, |f, p| {
        let c1 = f.push32(Op::Const(1));
        let c2 = f.push32(Op::Const(2));
        let c4 = f.push32(Op::Const(4));
        let m1 = f.push32(Op::Const(0x5555_5555));
        let m2 = f.push32(Op::Const(0x3333_3333));
        let m4 = f.push32(Op::Const(0x0f0f_0f0f));
        let s1 = f.push32(Op::Shr(p[0], c1));
        let a1 = f.push32(Op::And(s1, m1));
        let x1 = f.push32(Op::Sub(p[0], a1));
        let lo = f.push32(Op::And(x1, m2));
        let s2 = f.push32(Op::Shr(x1, c2));
        let hi = f.push32(Op::And(s2, m2));
        let x2 = f.push32(Op::Add(lo, hi));
        let s4 = f.push32(Op::Shr(x2, c4));
        let x3 = f.push32(Op::Add(x2, s4));
        let x4 = f.push32(Op::And(x3, m4));
        let mul = f.push32(Op::Const(0x0101_0101));
        let x5 = f.push32(Op::Mul(x4, mul));
        let c24 = f.push32(Op::Const(24));
        let r = f.push32(Op::Shr(x5, c24));
        f.ret(r);
    });
    k.star = true;
    k
}

/// p24: round up to the next highest power of two (the book's five-shift
/// formulation).
pub fn p24() -> Kernel {
    let mut k = kernel32("p24", 1, |f, p| {
        let one = f.push32(Op::Const(1));
        let mut x = f.push32(Op::Sub(p[0], one));
        for shift in [1i64, 2, 4, 8, 16] {
            let c = f.push32(Op::Const(shift));
            let s = f.push32(Op::Shr(x, c));
            x = f.push32(Op::Or(x, s));
        }
        let r = f.push32(Op::Add(x, one));
        f.ret(r);
    });
    k.synthesis_times_out = true;
    k
}

/// p25: the higher-order half of a 64-bit product of two 32-bit values,
/// computed in four 32-bit parts as the book recommends for machines
/// without a widening multiply.
pub fn p25() -> Kernel {
    let mut k = kernel32("p25", 2, |f, p| {
        let mask = f.push32(Op::Const(0xffff));
        let c16 = f.push32(Op::Const(16));
        let x_lo = f.push32(Op::And(p[0], mask));
        let x_hi = f.push32(Op::Shr(p[0], c16));
        let y_lo = f.push32(Op::And(p[1], mask));
        let y_hi = f.push32(Op::Shr(p[1], c16));
        let ll = f.push32(Op::Mul(x_lo, y_lo));
        let lh = f.push32(Op::Mul(x_lo, y_hi));
        let hl = f.push32(Op::Mul(x_hi, y_lo));
        let hh = f.push32(Op::Mul(x_hi, y_hi));
        let t = {
            let ll_hi = f.push32(Op::Shr(ll, c16));
            f.push32(Op::Add(hl, ll_hi))
        };
        let t_lo = f.push32(Op::And(t, mask));
        let t_hi = f.push32(Op::Shr(t, c16));
        let u = f.push32(Op::Add(lh, t_lo));
        let u_hi = f.push32(Op::Shr(u, c16));
        let r1 = f.push32(Op::Add(hh, t_hi));
        let r = f.push32(Op::Add(r1, u_hi));
        f.ret(r);
    });
    k.star = true;
    k
}

/// All 25 kernels in order.
pub fn all() -> Vec<Kernel> {
    vec![
        p01(),
        p02(),
        p03(),
        p04(),
        p05(),
        p06(),
        p07(),
        p08(),
        p09(),
        p10(),
        p11(),
        p12(),
        p13(),
        p14(),
        p15(),
        p16(),
        p17(),
        p18(),
        p19(),
        p20(),
        p21(),
        p22(),
        p23(),
        p24(),
        p25(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stoke_ir::evaluate;

    fn eval1(k: &Kernel, x: u64) -> u64 {
        evaluate(&k.ir, &[x], &mut BTreeMap::new())
    }

    fn eval2(k: &Kernel, x: u64, y: u64) -> u64 {
        evaluate(&k.ir, &[x, y], &mut BTreeMap::new())
    }

    #[test]
    fn reference_semantics_spot_checks() {
        assert_eq!(eval1(&p01(), 0b1011_0100), 0b1011_0000);
        assert_eq!(eval1(&p02(), 0b0111), 0);
        assert_eq!(eval1(&p02(), 0b0110), 0b0110);
        assert_eq!(eval1(&p03(), 0b1011_0100), 0b100);
        assert_eq!(eval1(&p04(), 0b1011_0100), 0b111);
        assert_eq!(eval1(&p05(), 0b1011_0100), 0b1011_0111);
        assert_eq!(eval1(&p06(), 0b1011_0101), 0b1011_0111);
        assert_eq!(eval1(&p07(), 0b1011_0101), 0b10);
        assert_eq!(eval1(&p08(), 0b1011_0100), 0b11);
        assert_eq!(eval1(&p09(), (-5i32) as u32 as u64), 5);
        assert_eq!(eval1(&p09(), 5), 5);
        assert_eq!(eval2(&p14(), 7, 9), 8);
        assert_eq!(
            eval2(&p14(), u32::MAX as u64, u32::MAX as u64 - 1),
            u64::from(u32::MAX) - 1
        );
        assert_eq!(eval2(&p15(), 7, 10), 9);
        assert_eq!(eval2(&p16(), 3, 9), 9);
        assert_eq!(eval2(&p16(), (-3i32) as u32 as u64, 2), 2);
        assert_eq!(eval1(&p17(), 0b0101_1100), 0b0100_0000);
        assert_eq!(eval1(&p18(), 64), 1);
        assert_eq!(eval1(&p18(), 65), 0);
        assert_eq!(eval1(&p18(), 0), 0);
        assert_eq!(eval1(&p22(), 0b1011), 1);
        assert_eq!(eval1(&p22(), 0b1001), 0);
        assert_eq!(eval1(&p23(), 0xffff_ffff), 32);
        assert_eq!(eval1(&p23(), 0b1011_0100), 4);
        assert_eq!(eval1(&p24(), 17), 32);
        assert_eq!(eval1(&p24(), 64), 64);
        assert_eq!(
            eval2(&p25(), 0xffff_ffff, 0xffff_ffff),
            (0xffff_ffffu64 * 0xffff_ffffu64) >> 32
        );
        assert_eq!(
            eval2(&p25(), 123_456, 654_321),
            (123_456u64 * 654_321) >> 32
        );
    }

    #[test]
    fn p13_sign_function() {
        assert_eq!(eval1(&p13(), 5), 1);
        assert_eq!(eval1(&p13(), 0), 0);
        assert_eq!(eval1(&p13(), (-9i32) as u32 as u64), u64::from(u32::MAX));
    }

    #[test]
    fn p19_exchanges_fields() {
        // Swap the low nibble with the next nibble (mask 0xf, distance 4).
        let k = p19();
        let r = evaluate(&k.ir, &[0xab, 0xf, 4], &mut BTreeMap::new());
        assert_eq!(r, 0xba);
    }

    #[test]
    fn p20_next_same_popcount() {
        let k = p20();
        for x in [0b0011u64, 0b0101, 0b0110, 0b1001_1100, 7, 12] {
            let r = evaluate(&k.ir, &[x], &mut BTreeMap::new());
            assert!(r > x, "{:b} -> {:b}", x, r);
            assert_eq!(
                (r as u32).count_ones(),
                (x as u32).count_ones(),
                "{:b} -> {:b}",
                x,
                r
            );
            // And it is the *next* such number.
            for between in (x + 1)..r {
                assert_ne!(
                    (between as u32).count_ones(),
                    (x as u32).count_ones(),
                    "{:b} skipped {:b}",
                    x,
                    between
                );
            }
        }
    }

    #[test]
    fn p21_cycles_three_values() {
        let k = p21();
        let (a, b, c) = (11u64, 22u64, 33u64);
        // The kernel maps a -> b, b -> c and c -> a (Figure 13's sequence).
        assert_eq!(evaluate(&k.ir, &[a, a, b, c], &mut BTreeMap::new()), b);
        assert_eq!(evaluate(&k.ir, &[b, a, b, c], &mut BTreeMap::new()), c);
        assert_eq!(evaluate(&k.ir, &[c, a, b, c], &mut BTreeMap::new()), a);
    }

    #[test]
    fn p10_p11_p12_nlz_relations() {
        let nlz = |x: u64| (x as u32).leading_zeros();
        for (x, y) in [
            (1u64, 1u64),
            (0x80, 0xff),
            (0xff, 0x80),
            (0x10, 0x1000),
            (7, 7),
        ] {
            assert_eq!(
                eval2(&p10(), x, y),
                u64::from(nlz(x) == nlz(y)),
                "p10({:x},{:x})",
                x,
                y
            );
            assert_eq!(
                eval2(&p11(), x, y),
                u64::from(nlz(x) < nlz(y)),
                "p11({:x},{:x})",
                x,
                y
            );
            assert_eq!(
                eval2(&p12(), x, y),
                u64::from(nlz(x) <= nlz(y)),
                "p12({:x},{:x})",
                x,
                y
            );
        }
    }

    #[test]
    fn star_annotations_match_figure_10() {
        let starred: Vec<&str> = all()
            .into_iter()
            .filter(|k| k.star)
            .map(|k| k.name)
            .collect();
        assert_eq!(starred, vec!["p18", "p21", "p22", "p23", "p25"]);
        let timed_out: Vec<&str> = all()
            .into_iter()
            .filter(|k| k.synthesis_times_out)
            .map(|k| k.name)
            .collect();
        assert_eq!(timed_out, vec!["p19", "p20", "p24"]);
    }
}
