//! # stoke-workloads
//!
//! The benchmark kernels of the paper's evaluation (§6): the 25 Hacker's
//! Delight programs of Gulwani's synthesis benchmark (p01–p25), the
//! OpenSSL Montgomery multiplication kernel, the unrolled SAXPY kernel and
//! the linked-list traversal fragment.
//!
//! Every kernel is defined once in the `stoke-ir` expression IR (its
//! reference semantics), from which the `llvm -O0` / `icc -O3` /
//! `gcc -O3` stand-in baselines are generated. The case-study kernels also
//! carry the hand-written codes transcribed from the paper's figures
//! (Figure 1, 13, 14 and 15).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hackers_delight;
pub mod kernels;

pub use kernels::{all_kernels, linked_list, montgomery, saxpy, Kernel, ParamKind};
