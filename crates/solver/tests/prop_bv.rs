//! Property-based tests for the bit-vector layer and the bit-blaster: the
//! term evaluator agrees with native Rust arithmetic, and every model the
//! SAT solver returns actually satisfies the original terms.

use proptest::prelude::*;
use std::collections::HashMap;
use stoke_solver::{check, CheckResult, TermPool};

fn env(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The concrete term evaluator agrees with native u64/u32 arithmetic on
    /// every modelled operation.
    #[test]
    fn eval_matches_native_arithmetic(a in any::<u64>(), b in any::<u64>(), shift in 0u64..64) {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let e = env(&[("x", a), ("y", b)]);

        let sum = p.add(x, y);
        prop_assert_eq!(p.eval(sum, &e), a.wrapping_add(b));
        let diff = p.sub(x, y);
        prop_assert_eq!(p.eval(diff, &e), a.wrapping_sub(b));
        let prod = p.mul(x, y);
        prop_assert_eq!(p.eval(prod, &e), a.wrapping_mul(b));
        let conj = p.and(x, y);
        prop_assert_eq!(p.eval(conj, &e), a & b);
        let s = p.constant(64, shift);
        let shl = p.shl(x, s);
        prop_assert_eq!(p.eval(shl, &e), if shift >= 64 { 0 } else { a << shift });
        let lshr = p.lshr(x, s);
        prop_assert_eq!(p.eval(lshr, &e), if shift >= 64 { 0 } else { a >> shift });
        let ashr = p.ashr(x, s);
        prop_assert_eq!(p.eval(ashr, &e), ((a as i64) >> shift.min(63)) as u64);
        let ult = p.ult(x, y);
        prop_assert_eq!(p.eval(ult, &e), u64::from(a < b));
        let slt = p.slt(x, y);
        prop_assert_eq!(p.eval(slt, &e), u64::from((a as i64) < (b as i64)));
    }

    /// 32-bit operations wrap at 32 bits.
    #[test]
    fn eval_respects_narrow_widths(a in any::<u32>(), b in any::<u32>()) {
        let mut p = TermPool::new();
        let x = p.var(32, "x");
        let y = p.var(32, "y");
        let e = env(&[("x", u64::from(a)), ("y", u64::from(b))]);
        let sum = p.add(x, y);
        prop_assert_eq!(p.eval(sum, &e), u64::from(a.wrapping_add(b)));
        let prod = p.mul(x, y);
        prop_assert_eq!(p.eval(prod, &e), u64::from(a.wrapping_mul(b)));
    }

    /// Solving `x + a == b` over 16-bit vectors always succeeds and the
    /// model is the arithmetically correct witness.
    #[test]
    fn linear_equations_have_correct_models(a in any::<u16>(), b in any::<u16>()) {
        let mut p = TermPool::new();
        let x = p.var(16, "x");
        let ca = p.constant(16, u64::from(a));
        let cb = p.constant(16, u64::from(b));
        let sum = p.add(x, ca);
        let eqn = p.eq(sum, cb);
        match check(&p, &[eqn]) {
            CheckResult::Sat(m) => {
                prop_assert_eq!(m.value("x") as u16, b.wrapping_sub(a));
            }
            CheckResult::Unsat => prop_assert!(false, "x + a == b is always satisfiable"),
        }
    }

    /// The blasted semantics agree with the evaluator: asserting
    /// `f(x, y) != <concrete result>` for fixed x, y is unsatisfiable.
    #[test]
    fn blasting_agrees_with_eval(a in any::<u16>(), b in any::<u16>()) {
        let mut p = TermPool::new();
        let x = p.var(16, "x");
        let y = p.var(16, "y");
        let ca = p.constant(16, u64::from(a));
        let cb = p.constant(16, u64::from(b));
        let fix_x = p.eq(x, ca);
        let fix_y = p.eq(y, cb);
        // A nontrivial combination of operations.
        let sum = p.add(x, y);
        let three = p.constant(16, 3);
        let shifted = p.lshr(sum, three);
        let masked = p.and(shifted, y);
        let expected_val = ((u64::from(a).wrapping_add(u64::from(b)) & 0xffff) >> 3) & u64::from(b);
        let expected = p.constant(16, expected_val);
        let wrong = p.ne(masked, expected);
        prop_assert_eq!(check(&p, &[fix_x, fix_y, wrong]), CheckResult::Unsat);
    }
}
