//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the decision procedure at the bottom of the validator stack,
//! standing in for the STP theorem prover used by the paper. It implements
//! the standard modern architecture: two-watched-literal unit propagation,
//! first-UIP conflict analysis with clause learning and non-chronological
//! backjumping, VSIDS-style branching with phase saving, and geometric
//! restarts. The solver is deliberately free of heuristic bells and
//! whistles (no clause-database reduction, no preprocessing): the
//! equivalence queries produced by `stoke-verify` are small enough that
//! correctness and clarity matter more than raw speed.

use std::fmt;

/// A propositional variable, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Build a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negation of this literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

/// The result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (retrieve it with
    /// [`Solver::value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

impl Value {
    fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Whether the clause was learnt during conflict analysis (kept for
    /// statistics and a future clause-database reduction pass).
    #[allow(dead_code)]
    learnt: bool,
}

const REASON_NONE: u32 = u32::MAX;
const REASON_DECISION: u32 = u32::MAX - 1;

/// The CDCL SAT solver.
///
/// ```
/// use stoke_solver::sat::{Solver, SatResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit] = clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    assign: Vec<Value>,
    /// Reason clause index for each variable, or REASON_DECISION / REASON_NONE.
    reason: Vec<u32>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    propagate_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    phase: Vec<bool>,
    /// Set when an empty/contradictory clause has been added.
    unsat: bool,
    /// Statistics: number of conflicts seen.
    conflicts: u64,
    /// Statistics: number of decisions made.
    decisions: u64,
    /// Statistics: number of propagations performed.
    propagations: u64,
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Solver {
        Solver {
            activity_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(Value::Unassigned);
        self.reason.push(REASON_NONE);
        self.level.push(0);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses added (including learnt clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of conflicts encountered so far.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Add a clause (a disjunction of literals).
    ///
    /// Duplicate literals are removed; a clause containing `x ∨ !x` is
    /// ignored as trivially true. Adding an empty clause makes the
    /// instance unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert_eq!(
            self.trail_lim.len(),
            0,
            "clauses must be added at decision level 0"
        );
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        // Remove literals already false at level 0; drop clause if any
        // literal is already true at level 0.
        lits.retain(|l| self.lit_value(*l) != Value::False || self.level[l.var().index()] != 0);
        if lits
            .iter()
            .any(|l| self.lit_value(*l) == Value::True && self.level[l.var().index()] == 0)
        {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], REASON_NONE) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach_clause(Clause {
                    lits,
                    learnt: false,
                });
            }
        }
    }

    fn attach_clause(&mut self, clause: Clause) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[clause.lits[0].index()].push(idx);
        self.watches[clause.lits[1].index()].push(idx);
        self.clauses.push(clause);
        idx
    }

    fn lit_value(&self, l: Lit) -> Value {
        match self.assign[l.var().index()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => Value::from_bool(l.is_positive()),
            Value::False => Value::from_bool(!l.is_positive()),
        }
    }

    /// The value of a variable in the satisfying assignment found by the
    /// last successful [`Solver::solve`] call, or `None` if unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            Value::True => true,
            Value::False => false,
            Value::Unassigned => {
                let v = l.var().index();
                self.assign[v] = Value::from_bool(l.is_positive());
                self.reason[v] = reason;
                self.level[v] = self.trail_lim.len() as u32;
                self.phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.propagate_head < self.trail.len() {
            let l = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.propagations += 1;
            let false_lit = !l;
            // Clauses watching `false_lit` must be updated.
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Ensure the false literal is in slot 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                if self.lit_value(w0) == Value::True {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci as usize].lits[k];
                    if self.lit_value(cand) != Value::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(w0, ci) {
                    // Conflict: restore remaining watchers.
                    self.watches[false_lit.index()] = watchers;
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.index()] = watchers;
        }
        None
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.activity_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut asserting = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            let reason_lits: Vec<Lit> = match asserting {
                None => self.clauses[clause_idx as usize].lits.clone(),
                Some(l) => {
                    let lits = self.clauses[clause_idx as usize].lits.clone();
                    lits.into_iter().filter(|x| *x != l).collect()
                }
            };
            for l in reason_lits {
                let v = l.var();
                if seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                seen[v.index()] = true;
                self.bump_activity(v);
                if self.level[v.index()] == current_level {
                    counter += 1;
                } else {
                    learnt.push(l);
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().index()] {
                    asserting = Some(l);
                    break;
                }
            }
            let l = asserting.unwrap();
            seen[l.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, !l);
                break;
            }
            clause_idx = self.reason[l.var().index()];
            debug_assert!(
                clause_idx < REASON_DECISION,
                "resolved literal must have a reason"
            );
        }

        // Backjump level = second highest level in the learnt clause.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        (learnt, backjump)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().index();
                self.assign[v] = Value::Unassigned;
                self.reason[v] = REASON_NONE;
            }
        }
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(f64, Var)> = None;
        for (i, val) in self.assign.iter().enumerate() {
            if *val == Value::Unassigned {
                let act = self.activity[i];
                if best.is_none_or(|(a, _)| act > a) {
                    best = Some((act, Var(i as u32)));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// Decide satisfiability of the clause set added so far.
    ///
    /// After `Sat`, the satisfying assignment is available through
    /// [`Solver::value`]. The solver may be reused: additional clauses can
    /// be added afterwards (incremental use), which restarts the search.
    pub fn solve(&mut self) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut conflicts_until_restart = 100u64;
        let mut conflicts_this_restart = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.backtrack(backjump);
                self.decay_activity();
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], REASON_NONE);
                    debug_assert!(ok);
                } else {
                    let ci = self.attach_clause(Clause {
                        lits: learnt.clone(),
                        learnt: true,
                    });
                    let ok = self.enqueue(learnt[0], ci);
                    debug_assert!(ok);
                }
            } else if conflicts_this_restart >= conflicts_until_restart {
                // Restart: keep learnt clauses, drop the partial assignment.
                conflicts_this_restart = 0;
                conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                self.backtrack(0);
            } else {
                match self.pick_branch_var() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.phase[v.index()]);
                        let ok = self.enqueue(lit, REASON_DECISION);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize;
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], i > 0)
    }

    fn add(s: &mut Solver, vars: &mut Vec<Var>, clause: &[i32]) {
        let lits: Vec<Lit> = clause.iter().map(|i| lit(s, vars, *i)).collect();
        s.add_clause(&lits);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let mut v = Vec::new();
        add(&mut s, &mut v, &[1, 2]);
        add(&mut s, &mut v, &[-1]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));

        let mut s = Solver::new();
        let mut v = Vec::new();
        add(&mut s, &mut v, &[1]);
        add(&mut s, &mut v, &[-1]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn no_clauses_is_sat() {
        let mut s = Solver::new();
        s.new_var();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires
        // actual search (not just unit propagation).
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        // Each pigeon in some hole.
        for pigeon in &p {
            s.add_clause(&[pigeon[0].positive(), pigeon[1].positive()]);
        }
        // No two pigeons share a hole.
        for h in 0..2 {
            for (i, pi) in p.iter().enumerate() {
                for pj in &p[i + 1..] {
                    s.add_clause(&[pi[h].negative(), pj[h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn chain_of_implications() {
        // x0 -> x1 -> ... -> x49, x0 forced true, all must be true.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..50).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        s.add_clause(&[vars[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for v in &vars {
            assert_eq!(s.value(*v), Some(true));
        }
    }

    #[test]
    fn xor_chain_parity() {
        // Encode x0 ^ x1 ^ x2 = 1 via CNF and check a model satisfies it.
        let mut s = Solver::new();
        let x: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let t = s.new_var(); // t = x0 ^ x1
                             // t <-> x0 xor x1
        s.add_clause(&[t.negative(), x[0].positive(), x[1].positive()]);
        s.add_clause(&[t.negative(), x[0].negative(), x[1].negative()]);
        s.add_clause(&[t.positive(), x[0].negative(), x[1].positive()]);
        s.add_clause(&[t.positive(), x[0].positive(), x[1].negative()]);
        // t xor x2 = 1  <=>  t <-> !x2
        s.add_clause(&[t.positive(), x[2].positive()]);
        s.add_clause(&[t.negative(), x[2].negative()]);
        assert_eq!(s.solve(), SatResult::Sat);
        let m: Vec<bool> = x.iter().map(|v| s.value(*v).unwrap()).collect();
        assert!(m[0] ^ m[1] ^ m[2]);
    }

    #[test]
    fn tautological_and_duplicate_clauses_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive(), a.negative()]);
        s.add_clause(&[a.positive(), a.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn incremental_use_after_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Force a contradiction afterwards.
        s.backtrack(0);
        s.add_clause(&[a.negative()]);
        s.add_clause(&[b.negative()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_satisfiable_instances() {
        // Planted-solution random 3-SAT: always satisfiable, and the solver
        // must find some model.
        let mut seed = 0x12345678u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let n = 30usize;
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let planted: Vec<bool> = (0..n).map(|_| rand() & 1 == 1).collect();
            for _ in 0..120 {
                let mut clause = Vec::new();
                // Ensure at least one literal agrees with the planted model.
                let forced = (rand() as usize) % n;
                clause.push(Lit::new(vars[forced], planted[forced]));
                for _ in 0..2 {
                    let v = (rand() as usize) % n;
                    clause.push(Lit::new(vars[v], rand() & 1 == 1));
                }
                s.add_clause(&clause);
            }
            assert_eq!(s.solve(), SatResult::Sat);
            // Every clause must be satisfied by the reported model.
            for c in &s.clauses {
                assert!(c.lits.iter().any(|l| s.lit_value(*l) == Value::True));
            }
        }
    }
}
