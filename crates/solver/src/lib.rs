//! # stoke-solver
//!
//! The decision-procedure substrate of the STOKE reproduction, replacing
//! the STP theorem prover used by the paper: a CDCL SAT solver
//! ([`sat`]), a hash-consed quantifier-free bit-vector term language
//! ([`bv`]) and a Tseitin bit-blaster with Ackermann expansion of
//! uninterpreted functions ([`blast`]).
//!
//! ```
//! use stoke_solver::{TermPool, check, CheckResult};
//!
//! // Prove Hacker's Delight p01: x & (x - 1) turns off the lowest set bit,
//! // i.e. it equals x - (x & -x) for every 32-bit x.
//! let mut pool = TermPool::new();
//! let x = pool.var(32, "x");
//! let one = pool.constant(32, 1);
//! let xm1 = pool.sub(x, one);
//! let lhs = pool.and(x, xm1);
//! let negx = pool.neg(x);
//! let low = pool.and(x, negx);
//! let rhs = pool.sub(x, low);
//! let counterexample = pool.ne(lhs, rhs);
//! assert_eq!(check(&pool, &[counterexample]), CheckResult::Unsat);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blast;
pub mod bv;
pub mod sat;

pub use blast::{check, CheckResult, Checker, Model};
pub use bv::{TermData, TermId, TermPool};
pub use sat::{Lit, SatResult, Solver, Var};
