//! Bit-blasting of bit-vector terms to CNF, and the top-level
//! satisfiability [`Checker`].
//!
//! Every term is lowered to a vector of SAT literals (least significant
//! bit first) with Tseitin-encoded gates: ripple-carry adders for
//! addition/subtraction/comparison, shift-and-add multipliers, and
//! logarithmic barrel shifters for variable shift amounts. Uninterpreted
//! function applications receive fresh result literals plus Ackermann
//! congruence constraints (equal arguments force equal results), which is
//! how the validator handles 64-bit widening multiplication, exactly as
//! the paper does with STP.

use crate::bv::{TermData, TermId, TermPool};
use crate::sat::{Lit, SatResult, Solver};
use std::collections::HashMap;

/// The outcome of a [`Checker::check`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The assertions are satisfiable; a witness assignment is included.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }
}

/// A satisfying assignment, mapping variable names to concrete values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    values: HashMap<String, u64>,
}

impl Model {
    /// The value assigned to variable `name` (zero if the variable did not
    /// occur in the query).
    pub fn value(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterate over all (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The assignment as a map, e.g. for re-evaluation with
    /// [`TermPool::eval`].
    pub fn as_env(&self) -> HashMap<String, u64> {
        self.values.clone()
    }
}

/// A bit-blasting satisfiability checker over a [`TermPool`].
pub struct Checker {
    solver: Solver,
    bits: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<String, Vec<Lit>>,
    /// (func, args, result bits) for Ackermann expansion.
    uf_apps: Vec<(u32, Vec<TermId>, Vec<Lit>)>,
    true_lit: Lit,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// Create a checker with an empty clause database.
    pub fn new() -> Checker {
        let mut solver = Solver::new();
        let t = solver.new_var();
        let true_lit = t.positive();
        solver.add_clause(&[true_lit]);
        Checker {
            solver,
            bits: HashMap::new(),
            var_bits: HashMap::new(),
            uf_apps: Vec::new(),
            true_lit,
        }
    }

    /// Number of SAT variables allocated so far.
    pub fn num_sat_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of CNF clauses generated so far.
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    fn fresh(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// Tseitin AND gate: returns a literal equivalent to `a ∧ b`.
    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() || b == self.false_lit() {
            return self.false_lit();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let o = self.fresh();
        self.solver.add_clause(&[!o, a]);
        self.solver.add_clause(&[!o, b]);
        self.solver.add_clause(&[o, !a, !b]);
        o
    }

    /// Tseitin OR gate.
    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    /// Tseitin XOR gate.
    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() {
            return b;
        }
        if b == self.false_lit() {
            return a;
        }
        if a == self.true_lit {
            return !b;
        }
        if b == self.true_lit {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        let o = self.fresh();
        self.solver.add_clause(&[!o, a, b]);
        self.solver.add_clause(&[!o, !a, !b]);
        self.solver.add_clause(&[o, !a, b]);
        self.solver.add_clause(&[o, a, !b]);
        o
    }

    /// Tseitin multiplexer: `cond ? a : b`.
    fn ite_gate(&mut self, cond: Lit, a: Lit, b: Lit) -> Lit {
        if cond == self.true_lit {
            return a;
        }
        if cond == self.false_lit() {
            return b;
        }
        if a == b {
            return a;
        }
        let then_part = self.and_gate(cond, a);
        let else_part = self.and_gate(!cond, b);
        self.or_gate(then_part, else_part)
    }

    /// Full adder returning (sum, carry).
    fn full_adder(&mut self, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, c);
        let ab = self.and_gate(a, b);
        let axb_c = self.and_gate(axb, c);
        let carry = self.or_gate(ab, axb_c);
        (sum, carry)
    }

    /// Ripple-carry addition of two bit vectors plus a carry-in; returns
    /// (sum bits, carry-out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(*x, *y, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    /// The literal `a == b` for equal-width bit vectors.
    fn equal(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = self.true_lit;
        for (x, y) in a.iter().zip(b) {
            let ne = self.xor_gate(*x, *y);
            acc = self.and_gate(acc, !ne);
        }
        acc
    }

    /// The literal `a < b` (unsigned), computed as the carry-out of
    /// `a + ~b + 1` being 0 (i.e. borrow).
    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let nb: Vec<Lit> = b.iter().map(|l| !*l).collect();
        let (_, carry) = self.adder(a, &nb, self.true_lit);
        !carry
    }

    /// Bit-blast a term to its literal vector (LSB first). Memoized.
    fn blast(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&t) {
            return bits.clone();
        }
        let w = pool.width(t) as usize;
        let bits: Vec<Lit> = match pool.data(t).clone() {
            TermData::Const { value, .. } => (0..w)
                .map(|i| self.const_lit((value >> i) & 1 == 1))
                .collect(),
            TermData::Var { name, .. } => {
                if let Some(existing) = self.var_bits.get(&name) {
                    existing.clone()
                } else {
                    let fresh: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                    self.var_bits.insert(name.clone(), fresh.clone());
                    fresh
                }
            }
            TermData::Not(a) => {
                let a = self.blast(pool, a);
                a.into_iter().map(|l| !l).collect()
            }
            TermData::And(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.and_gate(*x, *y))
                    .collect()
            }
            TermData::Or(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.or_gate(*x, *y))
                    .collect()
            }
            TermData::Xor(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.xor_gate(*x, *y))
                    .collect()
            }
            TermData::Neg(a) => {
                let a = self.blast(pool, a);
                let na: Vec<Lit> = a.iter().map(|l| !*l).collect();
                let zero = vec![self.false_lit(); w];
                let (sum, _) = self.adder(&na, &zero, self.true_lit);
                sum
            }
            TermData::Add(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                let (sum, _) = self.adder(&a, &b, self.false_lit());
                sum
            }
            TermData::Sub(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                let nb: Vec<Lit> = b.iter().map(|l| !*l).collect();
                let (sum, _) = self.adder(&a, &nb, self.true_lit);
                sum
            }
            TermData::Mul(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                // Shift-and-add: acc += (b[i] ? a << i : 0).
                let mut acc = vec![self.false_lit(); w];
                for (i, bi) in b.iter().enumerate() {
                    let shifted: Vec<Lit> = (0..w)
                        .map(|k| {
                            if k >= i {
                                self.and_gate(a[k - i], *bi)
                            } else {
                                self.false_lit()
                            }
                        })
                        .collect();
                    let (sum, _) = self.adder(&acc, &shifted, self.false_lit());
                    acc = sum;
                }
                acc
            }
            TermData::Shl(a, b) => self.barrel_shift(pool, a, b, ShiftKind::Left),
            TermData::Lshr(a, b) => self.barrel_shift(pool, a, b, ShiftKind::LogicalRight),
            TermData::Ashr(a, b) => self.barrel_shift(pool, a, b, ShiftKind::ArithmeticRight),
            TermData::Eq(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                vec![self.equal(&a, &b)]
            }
            TermData::Ult(a, b) => {
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                vec![self.ult(&a, &b)]
            }
            TermData::Slt(a, b) => {
                // a <s b  <=>  (a xor sign) <u (b xor sign): flip sign bits.
                let (mut a, mut b) = (self.blast(pool, a), self.blast(pool, b));
                let last = a.len() - 1;
                a[last] = !a[last];
                b[last] = !b[last];
                vec![self.ult(&a, &b)]
            }
            TermData::Ite(c, a, b) => {
                let c = self.blast(pool, c)[0];
                let (a, b) = (self.blast(pool, a), self.blast(pool, b));
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| self.ite_gate(c, *x, *y))
                    .collect()
            }
            TermData::Extract { hi, lo, arg } => {
                let a = self.blast(pool, arg);
                a[lo as usize..=hi as usize].to_vec()
            }
            TermData::Concat(hi, lo) => {
                let (h, l) = (self.blast(pool, hi), self.blast(pool, lo));
                let mut bits = l;
                bits.extend(h);
                bits
            }
            TermData::ZeroExt { arg, .. } => {
                let mut a = self.blast(pool, arg);
                while a.len() < w {
                    a.push(self.false_lit());
                }
                a
            }
            TermData::SignExt { arg, .. } => {
                let a = self.blast(pool, arg);
                let sign = *a.last().expect("non-empty");
                let mut bits = a;
                while bits.len() < w {
                    bits.push(sign);
                }
                bits
            }
            TermData::Uf { func, args, .. } => {
                let result: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                // Make sure argument bits exist before recording the application.
                for a in &args {
                    let _ = self.blast(pool, *a);
                }
                self.uf_apps.push((func, args, result.clone()));
                result
            }
        };
        debug_assert_eq!(bits.len(), w);
        self.bits.insert(t, bits.clone());
        bits
    }

    fn barrel_shift(&mut self, pool: &TermPool, a: TermId, b: TermId, kind: ShiftKind) -> Vec<Lit> {
        let w = pool.width(a) as usize;
        let a_bits = self.blast(pool, a);
        let b_bits = self.blast(pool, b);
        let fill = match kind {
            ShiftKind::ArithmeticRight => *a_bits.last().expect("non-empty"),
            _ => self.false_lit(),
        };
        // Stage i shifts by 2^i if the corresponding count bit is set.
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2(w))
        let mut cur = a_bits;
        for s in 0..stages {
            let amount = 1usize << s;
            let ctrl = b_bits[s as usize];
            let shifted: Vec<Lit> = (0..w)
                .map(|k| match kind {
                    ShiftKind::Left => {
                        if k >= amount {
                            cur[k - amount]
                        } else {
                            self.false_lit()
                        }
                    }
                    ShiftKind::LogicalRight | ShiftKind::ArithmeticRight => {
                        if k + amount < w {
                            cur[k + amount]
                        } else {
                            fill
                        }
                    }
                })
                .collect();
            cur = cur
                .iter()
                .zip(&shifted)
                .map(|(orig, sh)| self.ite_gate(ctrl, *sh, *orig))
                .collect();
        }
        // If any count bit >= stages is set the result is fully shifted out
        // (or all sign bits for arithmetic right shifts).
        let mut overflow = self.false_lit();
        for bit in b_bits.iter().skip(stages as usize) {
            overflow = self.or_gate(overflow, *bit);
        }
        cur.into_iter()
            .map(|l| self.ite_gate(overflow, fill, l))
            .collect()
    }

    /// Assert that a 1-bit term is true.
    pub fn assert_true(&mut self, pool: &TermPool, t: TermId) {
        assert_eq!(pool.width(t), 1, "assertions must be 1-bit terms");
        let bits = self.blast(pool, t);
        self.solver.add_clause(&[bits[0]]);
    }

    /// Apply Ackermann congruence constraints for all uninterpreted
    /// function applications recorded so far.
    fn apply_ackermann(&mut self) {
        let apps = std::mem::take(&mut self.uf_apps);
        for i in 0..apps.len() {
            for j in (i + 1)..apps.len() {
                let (f1, args1, res1) = &apps[i];
                let (f2, args2, res2) = &apps[j];
                if f1 != f2 || args1.len() != args2.len() {
                    continue;
                }
                // args_equal literal.
                let mut eq_acc = self.true_lit;
                for (a1, a2) in args1.iter().zip(args2) {
                    let b1 = self.bits[a1].clone();
                    let b2 = self.bits[a2].clone();
                    let e = self.equal(&b1, &b2);
                    eq_acc = self.and_gate(eq_acc, e);
                }
                // eq_acc -> (res1 == res2), bitwise.
                for (r1, r2) in res1.iter().zip(res2) {
                    self.solver.add_clause(&[!eq_acc, !*r1, *r2]);
                    self.solver.add_clause(&[!eq_acc, *r1, !*r2]);
                }
            }
        }
        self.uf_apps = apps;
    }

    /// Check satisfiability of everything asserted so far.
    ///
    /// The pool argument is accepted for interface symmetry with
    /// [`Checker::assert_true`] (all blasting has already happened there).
    pub fn check(&mut self, _pool: &TermPool) -> CheckResult {
        self.apply_ackermann();
        match self.solver.solve() {
            SatResult::Unsat => CheckResult::Unsat,
            SatResult::Sat => {
                let mut model = Model::default();
                for (name, bits) in &self.var_bits {
                    let mut v = 0u64;
                    for (i, l) in bits.iter().enumerate() {
                        let bit = self
                            .solver
                            .value(l.var())
                            .map(|b| b == l.is_positive())
                            .unwrap_or(false);
                        if bit {
                            v |= 1 << i;
                        }
                    }
                    model.values.insert(name.clone(), v);
                }
                CheckResult::Sat(model)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithmeticRight,
}

/// Convenience entry point: check whether the conjunction of 1-bit
/// `assertions` is satisfiable.
pub fn check(pool: &TermPool, assertions: &[TermId]) -> CheckResult {
    let mut checker = Checker::new();
    for a in assertions {
        checker.assert_true(pool, *a);
    }
    checker.check(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_equation_has_model() {
        // x + 5 == 12  =>  x == 7
        let mut p = TermPool::new();
        let x = p.var(16, "x");
        let five = p.constant(16, 5);
        let twelve = p.constant(16, 12);
        let sum = p.add(x, five);
        let eq = p.eq(sum, twelve);
        match check(&p, &[eq]) {
            CheckResult::Sat(m) => assert_eq!(m.value("x"), 7),
            CheckResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let zero = p.constant(8, 0);
        let one = p.constant(8, 1);
        let e1 = p.eq(x, zero);
        let e2 = p.eq(x, one);
        assert_eq!(check(&p, &[e1, e2]), CheckResult::Unsat);
    }

    #[test]
    fn x_and_x_minus_1_theorem() {
        // Hacker's Delight p01: x & (x - 1) clears the lowest set bit, so
        // (x & (x-1)) & (x ^ (x & (x-1))) == 0 ... simpler canonical check:
        // prove that x & (x-1) == x - (x & -x) has no counterexample.
        let mut p = TermPool::new();
        let x = p.var(32, "x");
        let one = p.constant(32, 1);
        let xm1 = p.sub(x, one);
        let lhs = p.and(x, xm1);
        let negx = p.neg(x);
        let lowbit = p.and(x, negx);
        let rhs = p.sub(x, lowbit);
        let diff = p.ne(lhs, rhs);
        assert_eq!(
            check(&p, &[diff]),
            CheckResult::Unsat,
            "identity must hold for all x"
        );
    }

    #[test]
    fn multiplication_matches_shift_for_constant() {
        // x * 8 == x << 3 for all 16-bit x.
        let mut p = TermPool::new();
        let x = p.var(16, "x");
        let eight = p.constant(16, 8);
        let three = p.constant(16, 3);
        let lhs = p.mul(x, eight);
        let rhs = p.shl(x, three);
        let diff = p.ne(lhs, rhs);
        assert_eq!(check(&p, &[diff]), CheckResult::Unsat);
    }

    #[test]
    fn find_factorization() {
        // 6-bit factorization: x * y == 35 with x, y > 1.
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let y = p.var(8, "y");
        let prod = p.mul(x, y);
        let c35 = p.constant(8, 35);
        let one = p.constant(8, 1);
        let e = p.eq(prod, c35);
        let gx = p.ult(one, x);
        let gy = p.ult(one, y);
        // Keep the factors small so the product cannot wrap.
        let sixteen = p.constant(8, 16);
        let lx = p.ult(x, sixteen);
        let ly = p.ult(y, sixteen);
        match check(&p, &[e, gx, gy, lx, ly]) {
            CheckResult::Sat(m) => {
                let (a, b) = (m.value("x"), m.value("y"));
                assert_eq!(a * b, 35, "{} * {}", a, b);
            }
            CheckResult::Unsat => panic!("35 = 5 * 7 is factorable"),
        }
    }

    #[test]
    fn variable_shifts() {
        // (x << s) >> s == x & (0xffff >> s) for 16-bit x — check a
        // weaker but still universally quantified property:
        // ((x << s) >> s) <= x is NOT generally true; instead check
        // (x >> s) << s has its low s bits cleared: ((x >> s) << s) & 1 == 0 when s != 0.
        let mut p = TermPool::new();
        let x = p.var(16, "x");
        let s = p.var(16, "s");
        let zero = p.constant(16, 0);
        let one = p.constant(16, 1);
        let shr = p.lshr(x, s);
        let back = p.shl(shr, s);
        let low = p.and(back, one);
        let s_nonzero = p.ne(s, zero);
        let low_set = p.eq(low, one);
        assert_eq!(check(&p, &[s_nonzero, low_set]), CheckResult::Unsat);
    }

    #[test]
    fn arithmetic_shift_keeps_sign() {
        // For 8-bit x with the sign bit set, x >>a 7 == 0xff.
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let seven = p.constant(8, 7);
        let c80 = p.constant(8, 0x80);
        let cff = p.constant(8, 0xff);
        let sign = p.and(x, c80);
        let has_sign = p.eq(sign, c80);
        let shifted = p.ashr(x, seven);
        let not_ff = p.ne(shifted, cff);
        assert_eq!(check(&p, &[has_sign, not_ff]), CheckResult::Unsat);
    }

    #[test]
    fn signed_comparison_blasting() {
        // There is no 8-bit x with x <s 0 and 0 <s x.
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let zero = p.constant(8, 0);
        let a = p.slt(x, zero);
        let b = p.slt(zero, x);
        assert_eq!(check(&p, &[a, b]), CheckResult::Unsat);
        // But x <s 0 alone has a model whose sign bit is set.
        match check(&p, &[a]) {
            CheckResult::Sat(m) => assert!(m.value("x") & 0x80 != 0),
            CheckResult::Unsat => panic!("negative numbers exist"),
        }
    }

    #[test]
    fn ite_and_extract() {
        // ite(x == 0, 1, 2) extracted low bit differs from high bits.
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let zero = p.constant(8, 0);
        let one = p.constant(8, 1);
        let two = p.constant(8, 2);
        let c = p.eq(x, zero);
        let sel = p.ite(c, one, two);
        // Claim: sel is never 3.
        let three = p.constant(8, 3);
        let bad = p.eq(sel, three);
        assert_eq!(check(&p, &[bad]), CheckResult::Unsat);
        // sel == 2 implies x != 0.
        let sel_is_two = p.eq(sel, two);
        let x_is_zero = p.eq(x, zero);
        assert_eq!(check(&p, &[sel_is_two, x_is_zero]), CheckResult::Unsat);
    }

    #[test]
    fn uninterpreted_function_congruence() {
        // f(x) != f(y) and x == y is unsatisfiable (Ackermann).
        let mut p = TermPool::new();
        let x = p.var(32, "x");
        let y = p.var(32, "y");
        let fx = p.uf(7, vec![x], 32);
        let fy = p.uf(7, vec![y], 32);
        let xeqy = p.eq(x, y);
        let fneq = p.ne(fx, fy);
        assert_eq!(check(&p, &[xeqy, fneq]), CheckResult::Unsat);
        // Without x == y it is satisfiable (f is unconstrained).
        assert!(check(&p, &[fneq]).is_sat());
    }

    #[test]
    fn model_satisfies_original_terms() {
        // Whatever model comes back must evaluate the asserted terms to 1.
        let mut p = TermPool::new();
        let x = p.var(24, "x");
        let y = p.var(24, "y");
        let xy = p.add(x, y);
        let c = p.constant(24, 0xabcdef);
        let e = p.eq(xy, c);
        let five = p.constant(24, 5);
        let ylow = p.and(y, five);
        let e2 = p.eq(ylow, five);
        match check(&p, &[e, e2]) {
            CheckResult::Sat(m) => {
                let env = m.as_env();
                assert_eq!(p.eval(e, &env), 1);
                assert_eq!(p.eval(e2, &env), 1);
            }
            CheckResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn sixty_four_bit_addition_commutes() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let a = p.add(x, y);
        let b = p.add(y, x);
        let d = p.ne(a, b);
        assert_eq!(check(&p, &[d]), CheckResult::Unsat);
    }
}
