//! A quantifier-free bit-vector term language (the `QF_BV` fragment the
//! validator needs), with hash-consing, constant folding and a concrete
//! evaluator.
//!
//! Terms are built through a [`TermPool`]; the pool owns every term and
//! returns small copyable [`TermId`] handles. Widths range from 1 to 64
//! bits; 1-bit terms double as booleans (`0` = false, `1` = true).

use std::collections::HashMap;
use std::fmt;

/// A handle to a term stored in a [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structure of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// A constant of the given width.
    Const {
        /// Bit width (1..=64).
        width: u32,
        /// Value, truncated to `width` bits.
        value: u64,
    },
    /// A free variable.
    Var {
        /// Bit width (1..=64).
        width: u32,
        /// Unique name (used for model extraction).
        name: String,
    },
    /// Bitwise complement.
    Not(TermId),
    /// Bitwise conjunction.
    And(TermId, TermId),
    /// Bitwise disjunction.
    Or(TermId, TermId),
    /// Bitwise exclusive or.
    Xor(TermId, TermId),
    /// Two's complement negation.
    Neg(TermId),
    /// Modular addition.
    Add(TermId, TermId),
    /// Modular subtraction.
    Sub(TermId, TermId),
    /// Modular multiplication (low half).
    Mul(TermId, TermId),
    /// Logical left shift by a (same width) amount.
    Shl(TermId, TermId),
    /// Logical right shift.
    Lshr(TermId, TermId),
    /// Arithmetic right shift.
    Ashr(TermId, TermId),
    /// Equality (1-bit result).
    Eq(TermId, TermId),
    /// Unsigned less-than (1-bit result).
    Ult(TermId, TermId),
    /// Signed less-than (1-bit result).
    Slt(TermId, TermId),
    /// If-then-else on a 1-bit condition.
    Ite(TermId, TermId, TermId),
    /// Bit extraction `[hi:lo]` (inclusive); result width `hi - lo + 1`.
    Extract {
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
        /// Source term.
        arg: TermId,
    },
    /// Concatenation; `hi` occupies the upper bits.
    Concat(TermId, TermId),
    /// Zero extension to `width`.
    ZeroExt {
        /// Target width.
        width: u32,
        /// Source term.
        arg: TermId,
    },
    /// Sign extension to `width`.
    SignExt {
        /// Target width.
        width: u32,
        /// Source term.
        arg: TermId,
    },
    /// Application of an uninterpreted function (used for 64-bit widening
    /// multiplication, following §5.2 of the paper).
    Uf {
        /// Function identifier (same id ⇒ same function).
        func: u32,
        /// Argument terms.
        args: Vec<TermId>,
        /// Result width.
        width: u32,
    },
}

/// An arena of hash-consed terms.
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<TermData>,
    widths: Vec<u32>,
    dedup: HashMap<TermData, TermId>,
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sext(width: u32, value: u64) -> i64 {
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

impl TermPool {
    /// Create an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of distinct terms in the pool.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The structure of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.terms[t.index()]
    }

    /// The width of a term in bits.
    pub fn width(&self, t: TermId) -> u32 {
        self.widths[t.index()]
    }

    fn intern(&mut self, data: TermData, width: u32) -> TermId {
        if let Some(id) = self.dedup.get(&data) {
            return *id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.widths.push(width);
        self.dedup.insert(data, id);
        id
    }

    /// A constant of the given width.
    pub fn constant(&mut self, width: u32, value: u64) -> TermId {
        assert!((1..=64).contains(&width), "width {} out of range", width);
        self.intern(
            TermData::Const {
                width,
                value: value & mask(width),
            },
            width,
        )
    }

    /// A fresh or existing variable of the given width and name. Variables
    /// are identified by name: requesting the same name twice returns the
    /// same term (the width must match).
    pub fn var(&mut self, width: u32, name: impl Into<String>) -> TermId {
        assert!((1..=64).contains(&width), "width {} out of range", width);
        let name = name.into();
        let id = self.intern(TermData::Var { width, name }, width);
        assert_eq!(
            self.width(id),
            width,
            "variable redeclared at a different width"
        );
        id
    }

    /// The 1-bit constant true.
    pub fn tru(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The 1-bit constant false.
    pub fn fals(&mut self) -> TermId {
        self.constant(1, 0)
    }

    fn const_value(&self, t: TermId) -> Option<u64> {
        match self.data(t) {
            TermData::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    fn binary_same_width(&self, a: TermId, b: TermId) -> u32 {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "operand widths must match");
        w
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.const_value(a) {
            return self.constant(w, !v);
        }
        self.intern(TermData::Not(a), w)
    }

    /// Bitwise conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x & y),
            (Some(0), _) | (_, Some(0)) => self.constant(w, 0),
            (Some(m), _) if m == mask(w) => b,
            (_, Some(m)) if m == mask(w) => a,
            _ => self.intern(TermData::And(a, b), w),
        }
    }

    /// Bitwise disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x | y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(m), _) | (_, Some(m)) if m == mask(w) => self.constant(w, mask(w)),
            _ => self.intern(TermData::Or(a, b), w),
        }
    }

    /// Bitwise exclusive or.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        if a == b {
            return self.constant(w, 0);
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x ^ y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => self.intern(TermData::Xor(a, b), w),
        }
    }

    /// Two's complement negation.
    pub fn neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(v) = self.const_value(a) {
            return self.constant(w, v.wrapping_neg());
        }
        self.intern(TermData::Neg(a), w)
    }

    /// Modular addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_add(y)),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => self.intern(TermData::Add(a, b), w),
        }
    }

    /// Modular subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        if a == b {
            return self.constant(w, 0);
        }
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_sub(y)),
            (_, Some(0)) => a,
            _ => self.intern(TermData::Sub(a, b), w),
        }
    }

    /// Modular multiplication (low `width` bits).
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_mul(y)),
            (Some(0), _) | (_, Some(0)) => self.constant(w, 0),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => self.intern(TermData::Mul(a, b), w),
        }
    }

    /// Logical left shift (`a << b`), where `b` has the same width.
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => {
                let r = if y >= u64::from(w) { 0 } else { x << y };
                self.constant(w, r)
            }
            (_, Some(0)) => a,
            _ => self.intern(TermData::Shl(a, b), w),
        }
    }

    /// Logical right shift.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => {
                let r = if y >= u64::from(w) {
                    0
                } else {
                    (x & mask(w)) >> y
                };
                self.constant(w, r)
            }
            (_, Some(0)) => a,
            _ => self.intern(TermData::Lshr(a, b), w),
        }
    }

    /// Arithmetic right shift.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => {
                let sx = sext(w, x);
                let shift = y.min(u64::from(w - 1)) as u32;
                self.constant(w, (sx >> shift) as u64)
            }
            (_, Some(0)) => a,
            _ => self.intern(TermData::Ashr(a, b), w),
        }
    }

    /// Equality (1-bit result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary_same_width(a, b);
        if a == b {
            return self.tru();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.constant(1, u64::from(x == y));
        }
        self.intern(TermData::Eq(a, b), 1)
    }

    /// Disequality (1-bit result).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary_same_width(a, b);
        if a == b {
            return self.fals();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.constant(1, u64::from(x < y));
        }
        self.intern(TermData::Ult(a, b), 1)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not(gt)
    }

    /// Signed less-than (1-bit result).
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binary_same_width(a, b);
        if a == b {
            return self.fals();
        }
        if let (Some(x), Some(y)) = (self.const_value(a), self.const_value(b)) {
            return self.constant(1, u64::from(sext(w, x) < sext(w, y)));
        }
        self.intern(TermData::Slt(a, b), 1)
    }

    /// If-then-else on a 1-bit condition.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must be 1 bit wide");
        let w = self.binary_same_width(then, els);
        if then == els {
            return then;
        }
        match self.const_value(cond) {
            Some(1) => then,
            Some(0) => els,
            _ => self.intern(TermData::Ite(cond, then, els), w),
        }
    }

    /// Extract bits `[hi:lo]` (inclusive).
    pub fn extract(&mut self, hi: u32, lo: u32, arg: TermId) -> TermId {
        let w = self.width(arg);
        assert!(
            hi >= lo && hi < w,
            "bad extract [{}:{}] of width {}",
            hi,
            lo,
            w
        );
        let out_w = hi - lo + 1;
        if lo == 0 && out_w == w {
            return arg;
        }
        if let Some(v) = self.const_value(arg) {
            return self.constant(out_w, (v >> lo) & mask(out_w));
        }
        self.intern(TermData::Extract { hi, lo, arg }, out_w)
    }

    /// Concatenate `hi` above `lo`.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        assert!(w <= 64, "concatenation width {} exceeds 64 bits", w);
        if let (Some(h), Some(l)) = (self.const_value(hi), self.const_value(lo)) {
            return self.constant(w, (h << self.width(lo)) | l);
        }
        self.intern(TermData::Concat(hi, lo), w)
    }

    /// Zero-extend to `width`.
    pub fn zero_ext(&mut self, width: u32, arg: TermId) -> TermId {
        let aw = self.width(arg);
        assert!(width >= aw && width <= 64);
        if width == aw {
            return arg;
        }
        if let Some(v) = self.const_value(arg) {
            return self.constant(width, v);
        }
        self.intern(TermData::ZeroExt { width, arg }, width)
    }

    /// Sign-extend to `width`.
    pub fn sign_ext(&mut self, width: u32, arg: TermId) -> TermId {
        let aw = self.width(arg);
        assert!(width >= aw && width <= 64);
        if width == aw {
            return arg;
        }
        if let Some(v) = self.const_value(arg) {
            return self.constant(width, (sext(aw, v) as u64) & mask(width));
        }
        self.intern(TermData::SignExt { width, arg }, width)
    }

    /// Apply an uninterpreted function.
    pub fn uf(&mut self, func: u32, args: Vec<TermId>, width: u32) -> TermId {
        assert!((1..=64).contains(&width));
        self.intern(TermData::Uf { func, args, width }, width)
    }

    /// Boolean conjunction of 1-bit terms.
    pub fn bool_and(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.tru();
        for t in terms {
            assert_eq!(self.width(*t), 1);
            acc = self.and(acc, *t);
        }
        acc
    }

    /// Boolean disjunction of 1-bit terms.
    pub fn bool_or(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.fals();
        for t in terms {
            assert_eq!(self.width(*t), 1);
            acc = self.or(acc, *t);
        }
        acc
    }

    /// Concretely evaluate a term under an assignment of variable names to
    /// values. Uninterpreted functions are evaluated with a fixed
    /// deterministic hash-mix of their arguments (the same inputs always
    /// produce the same output, as the paper's validator assumes).
    ///
    /// # Panics
    /// Panics if a variable is missing from `env`.
    pub fn eval(&self, t: TermId, env: &HashMap<String, u64>) -> u64 {
        let w = self.width(t);
        let v = match self.data(t) {
            TermData::Const { value, .. } => *value,
            TermData::Var { name, .. } => *env.get(name).unwrap_or_else(|| {
                panic!("variable '{}' missing from evaluation environment", name)
            }),
            TermData::Not(a) => !self.eval(*a, env),
            TermData::And(a, b) => self.eval(*a, env) & self.eval(*b, env),
            TermData::Or(a, b) => self.eval(*a, env) | self.eval(*b, env),
            TermData::Xor(a, b) => self.eval(*a, env) ^ self.eval(*b, env),
            TermData::Neg(a) => self.eval(*a, env).wrapping_neg(),
            TermData::Add(a, b) => self.eval(*a, env).wrapping_add(self.eval(*b, env)),
            TermData::Sub(a, b) => self.eval(*a, env).wrapping_sub(self.eval(*b, env)),
            TermData::Mul(a, b) => self.eval(*a, env).wrapping_mul(self.eval(*b, env)),
            TermData::Shl(a, b) => {
                let (x, y) = (self.eval(*a, env), self.eval(*b, env));
                if y >= u64::from(w) {
                    0
                } else {
                    x << y
                }
            }
            TermData::Lshr(a, b) => {
                let (x, y) = (self.eval(*a, env), self.eval(*b, env));
                if y >= u64::from(w) {
                    0
                } else {
                    (x & mask(w)) >> y
                }
            }
            TermData::Ashr(a, b) => {
                let (x, y) = (self.eval(*a, env), self.eval(*b, env));
                let shift = y.min(u64::from(w - 1)) as u32;
                (sext(w, x) >> shift) as u64
            }
            TermData::Eq(a, b) => u64::from(
                self.eval(*a, env) & mask(self.width(*a))
                    == self.eval(*b, env) & mask(self.width(*b)),
            ),
            TermData::Ult(a, b) => u64::from(
                self.eval(*a, env) & mask(self.width(*a))
                    < self.eval(*b, env) & mask(self.width(*b)),
            ),
            TermData::Slt(a, b) => {
                let wa = self.width(*a);
                u64::from(sext(wa, self.eval(*a, env)) < sext(wa, self.eval(*b, env)))
            }
            TermData::Ite(c, a, b) => {
                if self.eval(*c, env) & 1 == 1 {
                    self.eval(*a, env)
                } else {
                    self.eval(*b, env)
                }
            }
            TermData::Extract { hi: _, lo, arg } => self.eval(*arg, env) >> lo,
            TermData::Concat(hi, lo) => {
                let lw = self.width(*lo);
                (self.eval(*hi, env) << lw) | (self.eval(*lo, env) & mask(lw))
            }
            TermData::ZeroExt { arg, .. } => self.eval(*arg, env) & mask(self.width(*arg)),
            TermData::SignExt { arg, .. } => {
                let aw = self.width(*arg);
                sext(aw, self.eval(*arg, env)) as u64
            }
            TermData::Uf { func, args, .. } => {
                // A deterministic pseudo-random function of the arguments.
                let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ u64::from(*func).wrapping_mul(0xff51_afd7);
                for a in args {
                    let v = self.eval(*a, env) & mask(self.width(*a));
                    h ^= v.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
                    h = h.rotate_left(31).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
                h
            }
        };
        v & mask(w)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.constant(32, 7);
        let b = p.constant(32, 5);
        let s = p.add(a, b);
        assert_eq!(
            p.data(s),
            &TermData::Const {
                width: 32,
                value: 12
            }
        );
        let x = p.var(32, "x");
        let zero = p.constant(32, 0);
        assert_eq!(p.add(x, zero), x);
        assert_eq!(p.mul(x, zero), zero);
        let m = p.xor(x, x);
        assert_eq!(p.const_value(m), Some(0));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let a = p.add(x, y);
        let b = p.add(x, y);
        assert_eq!(a, b);
        let n = p.len();
        let _ = p.add(x, y);
        assert_eq!(p.len(), n);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let five = p.constant(64, 5);
        let sum = p.add(x, y);
        let shifted = p.shl(sum, five);
        let cmp = p.ult(x, y);
        let env: HashMap<String, u64> = [("x".to_string(), 3u64), ("y".to_string(), 11u64)]
            .into_iter()
            .collect();
        assert_eq!(p.eval(shifted, &env), (3u64 + 11) << 5);
        assert_eq!(p.eval(cmp, &env), 1);
    }

    #[test]
    fn eval_width_truncation() {
        let mut p = TermPool::new();
        let x = p.var(8, "x");
        let one = p.constant(8, 1);
        let sum = p.add(x, one);
        let env: HashMap<String, u64> = [("x".to_string(), 255u64)].into_iter().collect();
        assert_eq!(p.eval(sum, &env), 0, "8-bit overflow wraps");
    }

    #[test]
    fn extract_concat_extensions() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let lo = p.extract(31, 0, x);
        let hi = p.extract(63, 32, x);
        let back = p.concat(hi, lo);
        let env: HashMap<String, u64> = [("x".to_string(), 0x1234_5678_9abc_def0u64)]
            .into_iter()
            .collect();
        assert_eq!(p.eval(back, &env), 0x1234_5678_9abc_def0);
        let sx = p.sign_ext(64, lo);
        assert_eq!(p.eval(sx, &env), 0xffff_ffff_9abc_def0);
        let zx = p.zero_ext(64, lo);
        assert_eq!(p.eval(zx, &env), 0x9abc_def0);
    }

    #[test]
    fn signed_comparisons_and_shifts() {
        let mut p = TermPool::new();
        let a = p.constant(32, 0xffff_ffff); // -1
        let b = p.constant(32, 1);
        let slt = p.slt(a, b);
        assert_eq!(p.const_value(slt), Some(1));
        let ult = p.ult(a, b);
        assert_eq!(p.const_value(ult), Some(0));
        let sh = p.constant(32, 31);
        let ar = p.ashr(a, sh);
        assert_eq!(p.const_value(ar), Some(0xffff_ffff));
    }

    #[test]
    fn ite_simplification() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let t = p.tru();
        assert_eq!(p.ite(t, x, y), x);
        let f = p.fals();
        assert_eq!(p.ite(f, x, y), y);
        let c = p.var(1, "c");
        assert_eq!(p.ite(c, x, x), x);
    }

    #[test]
    fn uf_is_deterministic() {
        let mut p = TermPool::new();
        let x = p.var(64, "x");
        let y = p.var(64, "y");
        let f1 = p.uf(0, vec![x, y], 64);
        let f2 = p.uf(0, vec![x, y], 64);
        assert_eq!(f1, f2, "identical applications are the same term");
        let env: HashMap<String, u64> = [("x".to_string(), 3u64), ("y".to_string(), 4u64)]
            .into_iter()
            .collect();
        assert_eq!(p.eval(f1, &env), p.eval(f2, &env));
        let g = p.uf(1, vec![x, y], 64);
        assert_ne!(
            p.eval(f1, &env),
            p.eval(g, &env),
            "different functions differ (w.h.p.)"
        );
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn width_mismatch_panics() {
        let mut p = TermPool::new();
        let a = p.var(32, "a");
        let b = p.var(64, "b");
        let _ = p.add(a, b);
    }
}
