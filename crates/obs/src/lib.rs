//! `stoke-obs`: observability primitives for the stoke workspace.
//!
//! Two independent layers, both dependency-free:
//!
//! - [`MetricsRegistry`] — a hand-rolled metrics registry. Registration
//!   happens once up front; the returned [`Counter`], [`Gauge`], and
//!   [`Histogram`] handles are updated with plain atomic operations, so the
//!   hot path takes no locks and performs no allocation. Export via
//!   [`MetricsRegistry::snapshot`] (owned, programmatic) or
//!   [`MetricsRegistry::render_text`] (Prometheus text exposition).
//! - [`TraceSink`] — structured trace export as versioned JSONL span/event
//!   records with monotonic timestamps. [`JsonlSink`] writes to a file or
//!   any writer; [`RingSink`] is a bounded in-memory sink for tests.
//!   [`validate_trace`] checks a stream against the wire schema (the
//!   `obs-check` binary wraps it for CI).
//!
//! ```
//! use stoke_obs::{MetricsRegistry, RingSink, TraceRecord, TraceSink, Value};
//!
//! let registry = MetricsRegistry::new();
//! let proposals = registry.counter("proposals_total");
//! let latency = registry.histogram("latency_seconds", &[0.01, 0.1, 1.0]);
//! proposals.add(2);
//! latency.observe(0.05);
//! assert_eq!(registry.snapshot().counter("proposals_total"), 2);
//!
//! let trace = RingSink::new(16);
//! trace.record(TraceRecord::Event {
//!     name: "accept".into(),
//!     target: 0,
//!     fields: vec![("cost".into(), Value::F64(3.5))],
//! });
//! assert_eq!(trace.records().len(), 1);
//! ```

#![deny(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    exponential_buckets, Bucket, Counter, CounterSample, Gauge, GaugeSample, Histogram,
    HistogramSample, MetricsRegistry, Snapshot,
};
pub use trace::{
    encode_line, parse_line, validate_trace, JsonlSink, RingSink, TraceError, TraceRecord,
    TraceSink, TraceSummary, Value, TRACE_VERSION,
};
