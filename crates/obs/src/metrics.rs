//! A hand-rolled metrics registry with atomic counters, gauges, and
//! fixed-bucket histograms.
//!
//! The design goal is an allocation-free hot path: registration (which
//! allocates and takes a lock) happens once up front and hands back cheap
//! cloneable handles; recording a sample afterwards is a handful of atomic
//! operations. [`MetricsRegistry::snapshot`] produces an owned point-in-time
//! copy for programmatic inspection and [`MetricsRegistry::render_text`]
//! emits Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter backed by an [`AtomicU64`].
///
/// Handles are cheap to clone; all clones observe the same underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment the counter by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment the counter by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move up and down, backed by an [`AtomicI64`].
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (possibly negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the gauge by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement the gauge by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Read the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Sorted, finite upper bounds. The implicit final `+Inf` bucket lives at
    /// `counts[bounds.len()]`.
    bounds: Box<[f64]>,
    /// Per-bucket observation counts (not cumulative).
    counts: Box<[AtomicU64]>,
    /// Total of all observed values, stored as `f64::to_bits`.
    sum_bits: AtomicU64,
    /// Total number of observations.
    total: AtomicU64,
}

/// A fixed-bucket histogram.
///
/// Bucket semantics follow Prometheus: an observation `v` lands in the first
/// bucket whose upper bound satisfies `v <= bound`, with an implicit `+Inf`
/// bucket catching everything beyond the largest bound.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation. Lock- and allocation-free.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        // CAS loop to accumulate an f64 sum in an AtomicU64 bit cell.
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        core.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Build `count` exponentially spaced histogram bounds starting at `start`
/// and multiplying by `factor` at each step.
///
/// ```
/// let b = stoke_obs::exponential_buckets(0.001, 10.0, 4);
/// assert_eq!(b.len(), 4);
/// assert!((b[2] - 0.1).abs() < 1e-12);
/// ```
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0, "need start > 0 and factor > 1");
    let mut out = Vec::with_capacity(count);
    let mut v = start;
    for _ in 0..count {
        out.push(v);
        v *= factor;
    }
    out
}

/// Identifies one registered metric: a family name plus a rendered label set.
///
/// `labels` holds the inner `key="value"` list without braces (empty when the
/// metric has no labels) so histogram exposition can splice in `le`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    family: String,
    labels: String,
}

impl Key {
    fn new(family: &str, labels: &[(&str, &str)]) -> Key {
        let mut rendered = String::new();
        for (i, (k, v)) in labels.iter().enumerate() {
            debug_assert!(
                !k.contains('"') && !v.contains('"') && !v.contains('\\'),
                "label keys/values must not contain quotes or backslashes"
            );
            if i > 0 {
                rendered.push(',');
            }
            let _ = write!(rendered, "{k}=\"{v}\"");
        }
        Key {
            family: family.to_string(),
            labels: rendered,
        }
    }

    fn full_name(&self) -> String {
        if self.labels.is_empty() {
            self.family.clone()
        } else {
            format!("{}{{{}}}", self.family, self.labels)
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
    /// Family name -> metric type, used to reject cross-type re-registration.
    families: BTreeMap<String, &'static str>,
}

impl RegistryInner {
    fn claim_family(&mut self, family: &str, ty: &'static str) {
        match self.families.get(family) {
            Some(prev) if *prev != ty => panic!(
                "metric family `{family}` already registered as a {prev}, cannot re-register as a {ty}"
            ),
            Some(_) => {}
            None => {
                self.families.insert(family.to_string(), ty);
            }
        }
    }
}

/// One counter sample in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Full metric name including any label set, e.g. `moves_total{kind="swap"}`.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge sample in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Full metric name including any label set.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: i64,
}

/// One cumulative histogram bucket in a [`HistogramSample`].
#[derive(Clone, Debug, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of this bucket (`f64::INFINITY` for the last).
    pub le: f64,
    /// Number of observations `<= le` (cumulative, Prometheus-style).
    pub cumulative: u64,
}

/// One histogram sample in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSample {
    /// Full metric name including any label set.
    pub name: String,
    /// Cumulative bucket counts, ending with the `+Inf` bucket.
    pub buckets: Vec<Bucket>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// A point-in-time copy of every metric in a [`MetricsRegistry`], sorted by
/// name for deterministic iteration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All registered counters.
    pub counters: Vec<CounterSample>,
    /// All registered gauges.
    pub gauges: Vec<GaugeSample>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Look up a counter value by its full name. Returns 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Look up a gauge value by its full name. Returns 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map_or(0, |g| g.value)
    }

    /// Look up a histogram sample by its full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A registry of named metrics.
///
/// Registration takes a lock and allocates; it is meant to run once during
/// setup. The returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are then
/// updated with plain atomic operations — no locks, no allocation.
/// Registering the same family + label set twice returns a handle to the
/// same underlying cell (for histograms, the first registration's bounds
/// win). Registering one family under two different metric types panics.
///
/// ```
/// use stoke_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let accepted = registry.counter_with("moves_total", &[("kind", "swap")]);
/// accepted.add(3);
/// let text = registry.render_text();
/// assert!(text.contains("# TYPE moves_total counter"));
/// assert!(text.contains("moves_total{kind=\"swap\"} 3"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) an unlabelled counter.
    pub fn counter(&self, family: &str) -> Counter {
        self.counter_with(family, &[])
    }

    /// Register (or look up) a counter with a label set.
    pub fn counter_with(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.claim_family(family, "counter");
        inner
            .counters
            .entry(Key::new(family, labels))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Register (or look up) an unlabelled gauge.
    pub fn gauge(&self, family: &str) -> Gauge {
        self.gauge_with(family, &[])
    }

    /// Register (or look up) a gauge with a label set.
    pub fn gauge_with(&self, family: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.claim_family(family, "gauge");
        inner
            .gauges
            .entry(Key::new(family, labels))
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Register (or look up) an unlabelled histogram with the given finite
    /// upper bounds. Bounds are sorted and deduplicated; non-finite entries
    /// are dropped. An implicit `+Inf` bucket is always appended.
    pub fn histogram(&self, family: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(family, &[], bounds)
    }

    /// Register (or look up) a histogram with a label set.
    pub fn histogram_with(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner.claim_family(family, "histogram");
        inner
            .histograms
            .entry(Key::new(family, labels))
            .or_insert_with(|| {
                let mut bounds: Vec<f64> =
                    bounds.iter().copied().filter(|b| b.is_finite()).collect();
                bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                bounds.dedup();
                let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.into_boxed_slice(),
                    counts,
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    total: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Take a point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let counters = inner
            .counters
            .iter()
            .map(|(k, c)| CounterSample {
                name: k.full_name(),
                value: c.get(),
            })
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, g)| GaugeSample {
                name: k.full_name(),
                value: g.get(),
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                let core = &h.0;
                let mut cumulative = 0u64;
                let mut buckets = Vec::with_capacity(core.bounds.len() + 1);
                for (i, count) in core.counts.iter().enumerate() {
                    cumulative += count.load(Ordering::Relaxed);
                    let le = core.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                    buckets.push(Bucket { le, cumulative });
                }
                HistogramSample {
                    name: k.full_name(),
                    buckets,
                    count: h.count(),
                    sum: h.sum(),
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render every metric in Prometheus text exposition format: a `# TYPE`
    /// line per family followed by one sample line per metric, histograms
    /// expanded into cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, counter) in &inner.counters {
            if key.family != last_family {
                let _ = writeln!(out, "# TYPE {} counter", key.family);
                last_family.clone_from(&key.family);
            }
            let _ = writeln!(out, "{} {}", key.full_name(), counter.get());
        }
        last_family.clear();
        for (key, gauge) in &inner.gauges {
            if key.family != last_family {
                let _ = writeln!(out, "# TYPE {} gauge", key.family);
                last_family.clone_from(&key.family);
            }
            let _ = writeln!(out, "{} {}", key.full_name(), gauge.get());
        }
        last_family.clear();
        for (key, hist) in &inner.histograms {
            if key.family != last_family {
                let _ = writeln!(out, "# TYPE {} histogram", key.family);
                last_family.clone_from(&key.family);
            }
            let core = &hist.0;
            let mut cumulative = 0u64;
            for (i, count) in core.counts.iter().enumerate() {
                cumulative += count.load(Ordering::Relaxed);
                let le = match core.bounds.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                let labels = if key.labels.is_empty() {
                    format!("le=\"{le}\"")
                } else {
                    format!("{},le=\"{le}\"", key.labels)
                };
                let _ = writeln!(out, "{}_bucket{{{labels}}} {cumulative}", key.family);
            }
            let suffix = if key.labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", key.labels)
            };
            let _ = writeln!(out, "{}_sum{suffix} {}", key.family, hist.sum());
            let _ = writeln!(out, "{}_count{suffix} {}", key.family, hist.count());
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_exactly_under_threaded_hammering() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("hammered_total");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 80_000);
        assert_eq!(registry.snapshot().counter("hammered_total"), 80_000);
    }

    #[test]
    fn histogram_concurrent_observations_count_exactly() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("latency_seconds", &[0.5, 1.0]);
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let hist = hist.clone();
                thread::spawn(move || {
                    for _ in 0..5_000 {
                        hist.observe(0.25 * (i + 1) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.count(), 20_000);
        // Sum is exact: each thread adds 5000 * 0.25 * (i+1); all terms are
        // representable in binary so the CAS accumulation has no rounding.
        let expected: f64 = (1..=4).map(|i| 5_000.0 * 0.25 * i as f64).sum();
        assert!((hist.sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("bounds_seconds", &[1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bound's bucket (v <= le).
        hist.observe(1.0);
        hist.observe(2.0);
        hist.observe(2.0000001);
        hist.observe(100.0); // +Inf bucket
        let snap = registry.snapshot();
        let sample = snap.histogram("bounds_seconds").unwrap();
        let cumulative: Vec<u64> = sample.buckets.iter().map(|b| b.cumulative).collect();
        assert_eq!(cumulative, vec![1, 2, 3, 4]);
        assert_eq!(sample.buckets[3].le, f64::INFINITY);
        assert_eq!(sample.count, 4);
    }

    #[test]
    fn reregistration_returns_same_cell() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("dup_total", &[("k", "v")]);
        let b = registry.counter_with("dup_total", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        // A different label set is a different cell in the same family.
        let c = registry.counter_with("dup_total", &[("k", "other")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_type_registration_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("conflict");
        registry.gauge("conflict");
    }

    #[test]
    fn gauge_moves_both_directions() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("queue_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-5);
        assert_eq!(registry.snapshot().gauge("queue_depth"), -5);
    }

    #[test]
    fn render_text_exposition_format() {
        let registry = MetricsRegistry::new();
        registry.counter_with("m_total", &[("kind", "a")]).add(1);
        registry.counter_with("m_total", &[("kind", "b")]).add(2);
        registry.gauge("depth").set(7);
        let h = registry.histogram("dur_seconds", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        let text = registry.render_text();
        let lines: Vec<&str> = text.lines().collect();
        // One TYPE line per family, samples sorted by label set.
        assert_eq!(
            lines,
            vec![
                "# TYPE m_total counter",
                "m_total{kind=\"a\"} 1",
                "m_total{kind=\"b\"} 2",
                "# TYPE depth gauge",
                "depth 7",
                "# TYPE dur_seconds histogram",
                "dur_seconds_bucket{le=\"0.1\"} 1",
                "dur_seconds_bucket{le=\"1\"} 2",
                "dur_seconds_bucket{le=\"+Inf\"} 2",
                "dur_seconds_sum 0.55",
                "dur_seconds_count 2",
            ]
        );
    }

    #[test]
    fn exponential_buckets_grow_by_factor() {
        let b = exponential_buckets(0.5, 2.0, 3);
        assert_eq!(b, vec![0.5, 1.0, 2.0]);
    }
}
