//! Structured trace export: versioned JSONL span/event records with
//! monotonic timestamps.
//!
//! A trace is a sequence of newline-delimited JSON objects. Every line
//! carries the wire version (`"v"`) and a microsecond timestamp (`"ts_us"`)
//! measured from the sink's creation instant; timestamps are stamped while
//! holding the sink's writer lock, so they are non-decreasing in file order.
//! The first line of a well-formed trace is always a `meta` record.
//!
//! Line shapes (this is the schema [`validate_trace`] checks):
//!
//! ```text
//! {"v":1,"ts_us":N,"kind":"meta","version":1,"source":"..."}
//! {"v":1,"ts_us":N,"kind":"span_start","name":"...","target":T}
//! {"v":1,"ts_us":N,"kind":"span_end","name":"...","target":T,"micros":M}
//! {"v":1,"ts_us":N,"kind":"event","name":"...","target":T,"fields":{...}}
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::sync::Mutex;
use std::time::Instant;

/// Wire version stamped into every record as `"v"` and into the `meta`
/// record's `version` field.
pub const TRACE_VERSION: u64 = 1;

/// A typed field value carried by [`TraceRecord::Event`] records.
///
/// Numbers are encoded as bare JSON numbers. On parse, a number containing
/// `.` / `e` / `E` becomes [`Value::F64`], a leading `-` becomes
/// [`Value::I64`], and anything else becomes [`Value::U64`] — so encode
/// non-negative integers as `U64` if you want exact round-trips. Non-finite
/// floats are encoded as JSON strings (`"inf"`, `"-inf"`, `"NaN"`) and
/// round-trip as [`Value::Str`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (use for values that can be negative).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
}

/// One structured trace record.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// Stream header: wire version plus a free-form producer description.
    Meta {
        /// Wire version of the records that follow (see [`TRACE_VERSION`]).
        version: u64,
        /// Human-readable producer description, e.g. a binary name.
        source: String,
    },
    /// A span (a named duration) has begun.
    SpanStart {
        /// Span name, e.g. `phase:synthesis`.
        name: String,
        /// The search target (or job) index the span belongs to.
        target: u64,
    },
    /// A span has ended.
    SpanEnd {
        /// Span name matching the corresponding [`TraceRecord::SpanStart`].
        name: String,
        /// The search target (or job) index the span belongs to.
        target: u64,
        /// Span duration in microseconds.
        micros: u64,
    },
    /// A point-in-time event with free-form typed fields.
    Event {
        /// Event name, e.g. `chain_end`.
        name: String,
        /// The search target (or job) index the event belongs to.
        target: u64,
        /// Ordered key/value payload.
        fields: Vec<(String, Value)>,
    },
}

/// An error produced while parsing or validating a trace stream.
///
/// `line` is 1-based; records produced by [`parse_line`] (which sees a single
/// line without context) report `line: 0`.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// A line was not a well-formed record.
    Malformed {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The stream did not start with a `meta` record.
    MissingMeta,
    /// The `meta` record declared an unsupported wire version.
    BadVersion {
        /// 1-based line number.
        line: usize,
        /// The version found.
        found: u64,
    },
    /// Timestamps went backwards between consecutive records.
    NonMonotonic {
        /// 1-based line number of the offending record.
        line: usize,
        /// Timestamp of the previous record.
        prev: u64,
        /// Timestamp of the offending record.
        found: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line, detail } => {
                write!(f, "line {line}: malformed trace record: {detail}")
            }
            TraceError::MissingMeta => write!(f, "trace does not start with a meta record"),
            TraceError::BadVersion { line, found } => write!(
                f,
                "line {line}: unsupported trace version {found} (expected {TRACE_VERSION})"
            ),
            TraceError::NonMonotonic { line, prev, found } => write!(
                f,
                "line {line}: timestamp went backwards ({found} after {prev})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            // Debug formatting keeps a `.` or exponent so the value parses
            // back as F64 ("1.0", not "1").
            let _ = write!(out, "{x:?}");
        }
        Value::F64(x) => {
            out.push('"');
            let _ = write!(out, "{x}");
            out.push('"');
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// Encode one record as a single JSONL line (no trailing newline).
///
/// ```
/// use stoke_obs::{encode_line, parse_line, TraceRecord, Value};
///
/// let record = TraceRecord::Event {
///     name: "accept".into(),
///     target: 0,
///     fields: vec![("cost".into(), Value::F64(12.5))],
/// };
/// let line = encode_line(42, &record);
/// assert_eq!(
///     line,
///     r#"{"v":1,"ts_us":42,"kind":"event","name":"accept","target":0,"fields":{"cost":12.5}}"#
/// );
/// assert_eq!(parse_line(&line).unwrap(), (42, record));
/// ```
pub fn encode_line(ts_us: u64, record: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"v\":{TRACE_VERSION},\"ts_us\":{ts_us},");
    match record {
        TraceRecord::Meta { version, source } => {
            let _ = write!(out, "\"kind\":\"meta\",\"version\":{version},\"source\":\"");
            escape_into(&mut out, source);
            out.push('"');
        }
        TraceRecord::SpanStart { name, target } => {
            out.push_str("\"kind\":\"span_start\",\"name\":\"");
            escape_into(&mut out, name);
            let _ = write!(out, "\",\"target\":{target}");
        }
        TraceRecord::SpanEnd {
            name,
            target,
            micros,
        } => {
            out.push_str("\"kind\":\"span_end\",\"name\":\"");
            escape_into(&mut out, name);
            let _ = write!(out, "\",\"target\":{target},\"micros\":{micros}");
        }
        TraceRecord::Event {
            name,
            target,
            fields,
        } => {
            out.push_str("\"kind\":\"event\",\"name\":\"");
            escape_into(&mut out, name);
            let _ = write!(out, "\",\"target\":{target},\"fields\":{{");
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, key);
                out.push_str("\":");
                write_value(&mut out, value);
            }
            out.push('}');
        }
    }
    out.push('}');
    out
}

/// A minimal strict parser over one JSONL line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Parser<'a> {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, detail: &str) -> Result<T, String> {
        Err(format!("{detail} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected `{}`", b as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.fail("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return self.fail("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number_text(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return self.fail("expected number");
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap())
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let text = self.parse_number_text()?;
        text.parse::<u64>()
            .map_err(|_| format!("expected unsigned integer, got `{text}`"))
    }

    /// Parse a `"key":` prefix and check the key matches.
    fn parse_key(&mut self, expected: &str) -> Result<(), String> {
        let key = self.parse_string()?;
        if key != expected {
            return Err(format!("expected key `{expected}`, got `{key}`"));
        }
        self.expect(b':')
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(_) => {
                let text = self.parse_number_text()?;
                if text.contains(['.', 'e', 'E']) {
                    text.parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| format!("bad float `{text}`"))
                } else if let Some(stripped) = text.strip_prefix('-') {
                    stripped
                        .parse::<i64>()
                        .map(|n| Value::I64(-n))
                        .map_err(|_| format!("bad integer `{text}`"))
                } else {
                    text.parse::<u64>()
                        .map(Value::U64)
                        .map_err(|_| format!("bad integer `{text}`"))
                }
            }
            None => self.fail("expected value"),
        }
    }

    fn parse_fields(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return self.fail("expected `,` or `}` in fields"),
            }
        }
    }
}

fn parse_line_inner(line: &str) -> Result<(u64, TraceRecord), String> {
    let mut p = Parser::new(line.trim_end());
    p.expect(b'{')?;
    p.parse_key("v")?;
    let v = p.parse_u64()?;
    if v != TRACE_VERSION {
        return Err(format!("unsupported wire version {v}"));
    }
    p.expect(b',')?;
    p.parse_key("ts_us")?;
    let ts_us = p.parse_u64()?;
    p.expect(b',')?;
    p.parse_key("kind")?;
    let kind = p.parse_string()?;
    let record = match kind.as_str() {
        "meta" => {
            p.expect(b',')?;
            p.parse_key("version")?;
            let version = p.parse_u64()?;
            p.expect(b',')?;
            p.parse_key("source")?;
            let source = p.parse_string()?;
            TraceRecord::Meta { version, source }
        }
        "span_start" => {
            p.expect(b',')?;
            p.parse_key("name")?;
            let name = p.parse_string()?;
            p.expect(b',')?;
            p.parse_key("target")?;
            let target = p.parse_u64()?;
            TraceRecord::SpanStart { name, target }
        }
        "span_end" => {
            p.expect(b',')?;
            p.parse_key("name")?;
            let name = p.parse_string()?;
            p.expect(b',')?;
            p.parse_key("target")?;
            let target = p.parse_u64()?;
            p.expect(b',')?;
            p.parse_key("micros")?;
            let micros = p.parse_u64()?;
            TraceRecord::SpanEnd {
                name,
                target,
                micros,
            }
        }
        "event" => {
            p.expect(b',')?;
            p.parse_key("name")?;
            let name = p.parse_string()?;
            p.expect(b',')?;
            p.parse_key("target")?;
            let target = p.parse_u64()?;
            p.expect(b',')?;
            p.parse_key("fields")?;
            let fields = p.parse_fields()?;
            TraceRecord::Event {
                name,
                target,
                fields,
            }
        }
        other => return Err(format!("unknown record kind `{other}`")),
    };
    p.expect(b'}')?;
    if p.pos != p.bytes.len() {
        return p.fail("trailing bytes after record");
    }
    Ok((ts_us, record))
}

/// Parse one JSONL line back into `(ts_us, record)`.
///
/// The parser is strict: it accepts exactly the key order [`encode_line`]
/// emits (that fixed shape *is* the schema). Errors carry `line: 0`; stream
/// validators re-wrap them with real line numbers.
pub fn parse_line(line: &str) -> Result<(u64, TraceRecord), TraceError> {
    parse_line_inner(line).map_err(|detail| TraceError::Malformed { line: 0, detail })
}

/// Summary statistics returned by a successful [`validate_trace`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of records (including the `meta` header).
    pub records: u64,
    /// Number of `span_start` records.
    pub spans_started: u64,
    /// Number of `span_end` records.
    pub spans_ended: u64,
    /// Number of `event` records.
    pub events: u64,
}

/// Validate a JSONL trace stream against the schema: every line parses, the
/// first record is a `meta` with the supported version, and timestamps never
/// go backwards. Blank lines are rejected. Returns summary counts on success.
pub fn validate_trace<'a, I: IntoIterator<Item = &'a str>>(
    lines: I,
) -> Result<TraceSummary, TraceError> {
    let mut summary = TraceSummary::default();
    let mut prev_ts: Option<u64> = None;
    for (idx, line) in lines.into_iter().enumerate() {
        let line_no = idx + 1;
        let (ts_us, record) = parse_line(line).map_err(|e| match e {
            TraceError::Malformed { detail, .. } => TraceError::Malformed {
                line: line_no,
                detail,
            },
            other => other,
        })?;
        match (&record, line_no) {
            (TraceRecord::Meta { version, .. }, 1) if *version != TRACE_VERSION => {
                return Err(TraceError::BadVersion {
                    line: line_no,
                    found: *version,
                });
            }
            (TraceRecord::Meta { .. }, 1) => {}
            (_, 1) => return Err(TraceError::MissingMeta),
            _ => {}
        }
        if let Some(prev) = prev_ts {
            if ts_us < prev {
                return Err(TraceError::NonMonotonic {
                    line: line_no,
                    prev,
                    found: ts_us,
                });
            }
        }
        prev_ts = Some(ts_us);
        summary.records += 1;
        match record {
            TraceRecord::SpanStart { .. } => summary.spans_started += 1,
            TraceRecord::SpanEnd { .. } => summary.spans_ended += 1,
            TraceRecord::Event { .. } => summary.events += 1,
            TraceRecord::Meta { .. } => {}
        }
    }
    if prev_ts.is_none() {
        return Err(TraceError::MissingMeta);
    }
    Ok(summary)
}

/// A destination for structured trace records.
///
/// Implementations stamp their own timestamps so that records appear in the
/// output in non-decreasing timestamp order.
pub trait TraceSink: Send + Sync {
    /// Append one record to the trace.
    fn record(&self, record: TraceRecord);

    /// Flush any buffered records to their final destination.
    fn flush(&self) {}
}

struct JsonlInner {
    writer: BufWriter<Box<dyn Write + Send>>,
    failed: bool,
}

/// A [`TraceSink`] that writes JSONL to an underlying writer.
///
/// Timestamps are microseconds since sink creation and are stamped while the
/// writer lock is held, guaranteeing monotonic file order. The constructor
/// writes the `meta` header line. I/O errors after construction are recorded
/// and silently swallow subsequent records (tracing must never take down the
/// search).
pub struct JsonlSink {
    epoch: Instant,
    inner: Mutex<JsonlInner>,
}

impl JsonlSink {
    /// Wrap an arbitrary writer. `source` describes the producer and goes
    /// into the `meta` header.
    pub fn new(writer: Box<dyn Write + Send>, source: &str) -> JsonlSink {
        let sink = JsonlSink {
            epoch: Instant::now(),
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(writer),
                failed: false,
            }),
        };
        sink.record(TraceRecord::Meta {
            version: TRACE_VERSION,
            source: source.to_string(),
        });
        sink
    }

    /// Create (truncating) a trace file at `path`.
    pub fn create(path: &std::path::Path, source: &str) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(file), source))
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, record: TraceRecord) {
        let mut inner = self.inner.lock().unwrap();
        if inner.failed {
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let line = encode_line(ts_us, &record);
        if writeln!(inner.writer, "{line}").is_err() {
            inner.failed = true;
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.writer.flush().is_err() {
            inner.failed = true;
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.inner.lock().map(|mut inner| inner.writer.flush());
    }
}

struct RingInner {
    records: VecDeque<(u64, TraceRecord)>,
    dropped: u64,
}

/// An in-memory bounded [`TraceSink`] for tests and overhead benchmarks.
///
/// Keeps the most recent `capacity` records; older records are discarded and
/// counted in [`RingSink::dropped`].
pub struct RingSink {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingSink {
    /// Create a ring buffer holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner {
                records: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Copy out the buffered `(ts_us, record)` pairs in arrival order.
    pub fn records(&self) -> Vec<(u64, TraceRecord)> {
        self.inner.lock().unwrap().records.iter().cloned().collect()
    }

    /// Number of records discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

impl TraceSink for RingSink {
    fn record(&self, record: TraceRecord) {
        let mut inner = self.inner.lock().unwrap();
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back((ts_us, record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip(record: TraceRecord) {
        let line = encode_line(123, &record);
        let (ts, parsed) = parse_line(&line).unwrap();
        assert_eq!(ts, 123);
        assert_eq!(parsed, record, "line was: {line}");
    }

    #[test]
    fn roundtrip_every_record_type() {
        roundtrip(TraceRecord::Meta {
            version: TRACE_VERSION,
            source: "unit-test".into(),
        });
        roundtrip(TraceRecord::SpanStart {
            name: "phase:synthesis".into(),
            target: 3,
        });
        roundtrip(TraceRecord::SpanEnd {
            name: "phase:synthesis".into(),
            target: 3,
            micros: 1_500_000,
        });
        roundtrip(TraceRecord::Event {
            name: "chain_end".into(),
            target: 0,
            fields: vec![
                ("proposals".into(), Value::U64(60_000)),
                ("delta".into(), Value::I64(-42)),
                ("cost".into(), Value::F64(17.25)),
                ("whole".into(), Value::F64(2.0)),
                ("kind".into(), Value::Str("opcode".into())),
            ],
        });
        roundtrip(TraceRecord::Event {
            name: "empty".into(),
            target: 1,
            fields: vec![],
        });
    }

    #[test]
    fn roundtrip_escaped_strings() {
        roundtrip(TraceRecord::Event {
            name: "quo\"te\\and\nnewline\ttab".into(),
            target: 0,
            fields: vec![("k\u{1}ey".into(), Value::Str("héllo \u{7f}".into()))],
        });
    }

    #[test]
    fn nonfinite_floats_become_strings() {
        let line = encode_line(
            0,
            &TraceRecord::Event {
                name: "e".into(),
                target: 0,
                fields: vec![("x".into(), Value::F64(f64::INFINITY))],
            },
        );
        let (_, parsed) = parse_line(&line).unwrap();
        match parsed {
            TraceRecord::Event { fields, .. } => {
                assert_eq!(fields[0].1, Value::Str("inf".into()));
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"v\":99,\"ts_us\":0,\"kind\":\"meta\"}").is_err());
        // Trailing bytes are rejected.
        let good = encode_line(
            0,
            &TraceRecord::SpanStart {
                name: "s".into(),
                target: 0,
            },
        );
        assert!(parse_line(&format!("{good}x")).is_err());
    }

    #[test]
    fn jsonl_sink_emits_valid_monotonic_stream() {
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonlSink::new(Box::new(buf.clone()), "test-producer");
        sink.record(TraceRecord::SpanStart {
            name: "s".into(),
            target: 0,
        });
        sink.record(TraceRecord::SpanEnd {
            name: "s".into(),
            target: 0,
            micros: 10,
        });
        sink.record(TraceRecord::Event {
            name: "done".into(),
            target: 0,
            fields: vec![("ok".into(), Value::U64(1))],
        });
        sink.flush();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let summary = validate_trace(text.lines()).unwrap();
        assert_eq!(summary.records, 4);
        assert_eq!(summary.spans_started, 1);
        assert_eq!(summary.spans_ended, 1);
        assert_eq!(summary.events, 1);
        assert!(text.lines().next().unwrap().contains("\"kind\":\"meta\""));
    }

    #[test]
    fn validate_rejects_missing_meta_and_backwards_time() {
        let span = encode_line(
            5,
            &TraceRecord::SpanStart {
                name: "s".into(),
                target: 0,
            },
        );
        assert_eq!(
            validate_trace([span.as_str()]),
            Err(TraceError::MissingMeta)
        );
        assert_eq!(validate_trace([]), Err(TraceError::MissingMeta));

        let meta = encode_line(
            10,
            &TraceRecord::Meta {
                version: TRACE_VERSION,
                source: "t".into(),
            },
        );
        let early = encode_line(
            4,
            &TraceRecord::SpanStart {
                name: "s".into(),
                target: 0,
            },
        );
        assert_eq!(
            validate_trace([meta.as_str(), early.as_str()]),
            Err(TraceError::NonMonotonic {
                line: 2,
                prev: 10,
                found: 4
            })
        );
    }

    #[test]
    fn ring_sink_caps_and_counts_drops() {
        let ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(TraceRecord::SpanStart {
                name: format!("s{i}"),
                target: i,
            });
        }
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(ring.dropped(), 3);
        match &records[1].1 {
            TraceRecord::SpanStart { target, .. } => assert_eq!(*target, 4),
            _ => panic!("wrong kind"),
        }
        // Timestamps are non-decreasing in arrival order.
        assert!(records[0].0 <= records[1].0);
    }
}
