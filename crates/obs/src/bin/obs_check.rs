//! `obs-check`: validate a JSONL trace file against the stoke-obs schema.
//!
//! Usage: `obs-check <trace.jsonl>`
//!
//! Exits 0 and prints summary counts when the file is a well-formed trace
//! (every line parses, the first record is a supported `meta` header, and
//! timestamps never go backwards); exits 1 with a diagnostic otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(path), None) => path,
        _ => {
            eprintln!("usage: obs-check <trace.jsonl>");
            return ExitCode::FAILURE;
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(err) => {
            eprintln!("obs-check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match stoke_obs::validate_trace(contents.lines()) {
        Ok(summary) => {
            println!(
                "{path}: OK — {} records ({} span starts, {} span ends, {} events)",
                summary.records, summary.spans_started, summary.spans_ended, summary.events
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("obs-check: {path}: {err}");
            ExitCode::FAILURE
        }
    }
}
