//! Constant-time violations and the Spectector-style relative leakage
//! check.
//!
//! A program is *constant-time* with respect to a set of secret inputs
//! when neither its memory-access addresses nor the latency of any
//! instruction it executes depends on a secret. The checks here are
//! static: they run the forward [taint analysis](crate::taint) and flag
//! instructions whose observable behaviour may become secret-dependent.
//!
//! The relative check follows Spectector's philosophy of comparing a
//! transformed program against the original: a rewrite is acceptable when
//! every *kind* of secret observation it makes was already made by the
//! target, so superoptimization never introduces a new side channel even
//! when the target itself is not fully constant-time.

use crate::defuse::DefUse;
use crate::taint::{reads_taint, taint_analysis, TaintFact};
use stoke_x86::flow::LocSet;
use stoke_x86::{Instruction, Opcode, Operand};

/// A way an instruction's observable behaviour can depend on a secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakKind {
    /// A load or store whose address (base or index register) is
    /// secret-derived: the cache line touched reveals the secret.
    SecretAddress,
    /// A shift or rotate whose `cl` count is secret-derived: on several
    /// microarchitectures the latency of a variable shift depends on the
    /// count.
    SecretShiftCount,
    /// A division whose operands are secret-derived: `div`/`idiv` latency
    /// is strongly data-dependent.
    SecretDivOperand,
}

impl LeakKind {
    /// A short human-readable description of the channel.
    pub fn describe(self) -> &'static str {
        match self {
            LeakKind::SecretAddress => "memory address depends on a secret",
            LeakKind::SecretShiftCount => "shift count depends on a secret",
            LeakKind::SecretDivOperand => "division operand depends on a secret",
        }
    }
}

/// A constant-time violation at one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending instruction.
    pub index: usize,
    /// The channel through which it observes a secret.
    pub kind: LeakKind,
}

fn violations_at(instr: &Instruction, fact: &TaintFact) -> Vec<LeakKind> {
    let mut kinds = Vec::new();
    let tainted_gpr = |r: stoke_x86::Gpr| fact.locs.gprs.contains(&r);
    if !matches!(instr.opcode(), Opcode::Lea(_)) {
        if let Some(m) = instr.mem_operand() {
            if m.regs().any(tainted_gpr) {
                kinds.push(LeakKind::SecretAddress);
            }
        }
    }
    match instr.opcode() {
        Opcode::Shift(_, _) => {
            if let Some(Operand::Reg(r)) = instr.operands().first() {
                if tainted_gpr(r.parent()) {
                    kinds.push(LeakKind::SecretShiftCount);
                }
            }
        }
        Opcode::Div(_) | Opcode::Idiv(_) => {
            let du = DefUse::of_instruction(instr);
            if reads_taint(instr, &du, fact) {
                kinds.push(LeakKind::SecretDivOperand);
            }
        }
        _ => {}
    }
    kinds
}

/// All constant-time violations of a program with respect to the given
/// secret entry locations. Returns one [`Violation`] per (instruction,
/// channel) pair, in program order.
pub fn constant_time_violations<'a>(
    instrs: impl IntoIterator<Item = &'a Instruction>,
    secrets: &LocSet,
) -> Vec<Violation> {
    let instrs: Vec<&Instruction> = instrs.into_iter().collect();
    if secrets.is_empty() {
        return Vec::new();
    }
    let taint = taint_analysis(&instrs, secrets);
    let mut out = Vec::new();
    for (i, instr) in instrs.iter().enumerate() {
        for kind in violations_at(instr, taint.before(i)) {
            out.push(Violation { index: i, kind });
        }
    }
    out
}

/// The relative leakage check: violations of `rewrite` whose [`LeakKind`]
/// the `target` never exhibits.
///
/// An empty result means the rewrite observes secrets through at most the
/// channels the target already used, so substituting it does not widen
/// the program's side-channel surface. A non-empty result lists the new
/// observations, ready for an error message.
pub fn introduces_new_leaks<'a, 'b>(
    target: impl IntoIterator<Item = &'a Instruction>,
    rewrite: impl IntoIterator<Item = &'b Instruction>,
    secrets: &LocSet,
) -> Vec<Violation> {
    let allowed: std::collections::BTreeSet<LeakKind> = constant_time_violations(target, secrets)
        .into_iter()
        .map(|v| v.kind)
        .collect();
    constant_time_violations(rewrite, secrets)
        .into_iter()
        .filter(|v| !allowed.contains(&v.kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::{Gpr, Program};

    fn violations(text: &str, secrets: &[Gpr]) -> Vec<Violation> {
        let p: Program = text.parse().unwrap();
        constant_time_violations(p.iter(), &LocSet::from_gprs(secrets.iter().copied()))
    }

    #[test]
    fn secret_shift_count_flagged() {
        let v = violations("movq rdi, rcx\nshlq cl, rax", &[Gpr::Rdi]);
        assert_eq!(
            v,
            vec![Violation {
                index: 1,
                kind: LeakKind::SecretShiftCount
            }]
        );
    }

    #[test]
    fn immediate_shift_is_clean() {
        assert!(violations("shlq 32, rdi", &[Gpr::Rdi]).is_empty());
    }

    #[test]
    fn secret_address_flagged_lea_exempt() {
        let v = violations("movq (rdi), rax", &[Gpr::Rdi]);
        assert_eq!(v[0].kind, LeakKind::SecretAddress);
        assert!(
            violations("leaq (rdi,rdi,4), rax", &[Gpr::Rdi]).is_empty(),
            "lea computes an address without touching memory"
        );
    }

    #[test]
    fn secret_division_flagged() {
        let v = violations("movq rdi, rax\ncqto\nidivq rsi", &[Gpr::Rdi]);
        assert_eq!(v.last().unwrap().kind, LeakKind::SecretDivOperand);
    }

    #[test]
    fn no_secrets_means_no_violations() {
        assert!(violations("movq (rdi), rax\nshlq cl, rax", &[]).is_empty());
    }

    #[test]
    fn relative_check_allows_existing_channels() {
        let target: Program = "movq rdi, rcx\nshlq cl, rax".parse().unwrap();
        let same: Program = "movl edi, ecx\nshlq cl, rax".parse().unwrap();
        let worse: Program = "movq rdi, rcx\nshlq cl, rax\nmovq (rdi), rdx"
            .parse()
            .unwrap();
        let secrets = LocSet::from_gprs([Gpr::Rdi]);
        assert!(introduces_new_leaks(target.iter(), same.iter(), &secrets).is_empty());
        let new = introduces_new_leaks(target.iter(), worse.iter(), &secrets);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].kind, LeakKind::SecretAddress);
    }
}
