//! Per-instruction def/use extraction.
//!
//! The same information is available from two sources: the instruction
//! metadata in `stoke-x86`, and the use lists a
//! [`stoke_emu::PreparedProgram`] has already flattened for the
//! undefined-read fault counter. [`DefUse::of_prepared`] reuses the
//! latter so an analysis running per proposal shares the decode work the
//! evaluation backend has already paid for; a unit test pins the two
//! sources to identical results.

use stoke_emu::PreparedProgram;
use stoke_x86::flow::{self, LocSet};
use stoke_x86::{Instruction, Width};

/// The locations an instruction reads and writes, at the 64-bit register
/// granularity the cost function and validator compare states at.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefUse {
    /// Locations read (including memory-operand address registers and
    /// implicit uses).
    pub uses: LocSet,
    /// Locations fully overwritten (64/32-bit register writes, xmm and
    /// flag writes).
    pub defs: LocSet,
    /// Registers only partially written (8/16-bit views merge into the
    /// parent, so these do not kill the old value).
    pub partial_defs: LocSet,
}

impl DefUse {
    /// Extract def/use information from instruction metadata.
    pub fn of_instruction(instr: &Instruction) -> DefUse {
        let (defs, partial_defs) = flow::defs(instr);
        DefUse {
            uses: flow::uses(instr),
            defs,
            partial_defs,
        }
    }

    /// Extract def/use information for instruction `index` of a prepared
    /// program, reading the use sets from the program's flattened use
    /// lists instead of re-deriving them.
    pub fn of_prepared(prepared: &PreparedProgram<'_>, index: usize) -> DefUse {
        let instr = prepared
            .instructions()
            .nth(index)
            .expect("index within prepared program");
        let mut uses = LocSet::new();
        for r in prepared.gpr_uses_of(index) {
            uses.gprs.insert(r.parent());
        }
        for x in prepared.xmm_uses_of(index) {
            uses.xmms.insert(*x);
        }
        for f in prepared.flag_uses_of(index) {
            uses.flags.insert(*f);
        }
        let mut defs = LocSet::new();
        let mut partial_defs = LocSet::new();
        for r in instr.gpr_defs() {
            match r.width() {
                Width::B | Width::W => partial_defs.gprs.insert(r.parent()),
                _ => defs.gprs.insert(r.parent()),
            };
        }
        for x in instr.xmm_defs() {
            defs.xmms.insert(x);
        }
        for f in instr.flag_defs() {
            defs.flags.insert(*f);
        }
        DefUse {
            uses,
            defs,
            partial_defs,
        }
    }
}

/// Def/use information for every instruction of a program.
pub fn def_use<'a>(instrs: impl IntoIterator<Item = &'a Instruction>) -> Vec<DefUse> {
    instrs.into_iter().map(DefUse::of_instruction).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Program;

    #[test]
    fn prepared_and_metadata_sources_agree() {
        // One instruction of each interesting def/use shape: plain moves,
        // read-modify-write, implicit rdx:rax, narrow merges, memory
        // addressing, flags producers and consumers, xchg, SSE.
        let text = "
            movq rdi, rax
            addq rsi, rax
            mulq rsi
            divq rcx
            sete dl
            shlq cl, rax
            movl (rsi,rcx,4), eax
            movq rax, (rsi)
            xchgq rax, rbx
            cmovneq rdx, rax
            pushq rdi
            popq rdx
            cqto
            paddd xmm1, xmm0
        ";
        let p: Program = text.parse().unwrap();
        let prepared = PreparedProgram::of_program(&p);
        for (i, instr) in p.iter().enumerate() {
            assert_eq!(
                DefUse::of_prepared(&prepared, i),
                DefUse::of_instruction(instr),
                "def/use mismatch at {i}: {instr}"
            );
        }
        assert_eq!(def_use(p.iter()).len(), p.len());
    }

    #[test]
    fn narrow_write_is_partial() {
        let p: Program = "sete dl".parse().unwrap();
        let du = DefUse::of_instruction(&p.instrs()[0]);
        assert!(du.defs.gprs.is_empty());
        assert!(du.partial_defs.gprs.contains(&stoke_x86::Gpr::Rdx));
    }
}
