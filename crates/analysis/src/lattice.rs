//! The fact-domain contract of the fixpoint engine.

use stoke_x86::flow::LocSet;

/// A join-semilattice of dataflow facts.
///
/// Implementations provide a least element ([`bottom`](JoinSemiLattice::bottom))
/// and a [`join`](JoinSemiLattice::join) that computes the least upper
/// bound in place, reporting whether anything changed — the signal the
/// fixpoint engine uses to detect convergence.
pub trait JoinSemiLattice: Clone {
    /// The least element of the lattice.
    fn bottom() -> Self;

    /// Join `other` into `self` (least upper bound). Returns `true` if
    /// `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

impl JoinSemiLattice for LocSet {
    fn bottom() -> LocSet {
        LocSet::new()
    }

    fn join(&mut self, other: &LocSet) -> bool {
        let before = self.len();
        self.union_with(other);
        self.len() != before
    }
}

impl JoinSemiLattice for bool {
    fn bottom() -> bool {
        false
    }

    fn join(&mut self, other: &bool) -> bool {
        let changed = !*self && *other;
        *self |= *other;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::Gpr;

    #[test]
    fn locset_join_reports_change() {
        let mut a = LocSet::from_gprs([Gpr::Rax]);
        let b = LocSet::from_gprs([Gpr::Rbx]);
        assert!(a.join(&b));
        assert!(!a.join(&b), "second join is a no-op");
        assert!(a.gprs.contains(&Gpr::Rax) && a.gprs.contains(&Gpr::Rbx));
    }

    #[test]
    fn bool_is_the_two_point_lattice() {
        let mut b = bool::bottom();
        assert!(!b.join(&false));
        assert!(b.join(&true));
        assert!(!b.join(&true));
        assert!(b);
    }
}
