//! The generic fixpoint engine.
//!
//! Programs in this reproduction are straight-line (STOKE's search space
//! is loop-free), so a single pass in the analysis direction reaches the
//! fixpoint; the engine nevertheless iterates until the facts stop
//! changing, which keeps the contract honest for transfer functions that
//! are not distributive and makes the join visible in the API.

use crate::lattice::JoinSemiLattice;
use stoke_x86::Instruction;

/// The direction facts flow in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry to exit (e.g. taint).
    Forward,
    /// Facts flow from exit to entry (e.g. liveness).
    Backward,
}

/// Per-program-point fact annotations: `n + 1` facts for an
/// `n`-instruction program, where fact `i` holds *before* instruction `i`
/// and fact `n` holds after the last instruction.
#[derive(Debug, Clone)]
pub struct Annotations<F> {
    facts: Vec<F>,
}

impl<F> Annotations<F> {
    /// The fact at the program point before instruction `index`.
    pub fn before(&self, index: usize) -> &F {
        &self.facts[index]
    }

    /// The fact at the program point after instruction `index`.
    pub fn after(&self, index: usize) -> &F {
        &self.facts[index + 1]
    }

    /// The fact at program entry.
    pub fn entry(&self) -> &F {
        &self.facts[0]
    }

    /// The fact at program exit.
    pub fn exit(&self) -> &F {
        &self.facts[self.facts.len() - 1]
    }

    /// All facts, entry first (`len() == program length + 1`).
    pub fn facts(&self) -> &[F] {
        &self.facts
    }
}

/// Run `transfer` to fixpoint over `instrs` in the given `direction`.
///
/// `boundary` seeds the entry fact (forward) or the exit fact (backward).
/// The transfer function receives the instruction index, the instruction
/// and the incoming fact, and returns the outgoing fact; "incoming" means
/// the fact before the instruction for a forward analysis and the fact
/// after it for a backward one.
pub fn fixpoint<F, T>(
    instrs: &[&Instruction],
    direction: Direction,
    boundary: &F,
    mut transfer: T,
) -> Annotations<F>
where
    F: JoinSemiLattice,
    T: FnMut(usize, &Instruction, &F) -> F,
{
    let n = instrs.len();
    let mut facts: Vec<F> = (0..=n).map(|_| F::bottom()).collect();
    match direction {
        Direction::Forward => facts[0].join(boundary),
        Direction::Backward => facts[n].join(boundary),
    };
    loop {
        let mut changed = false;
        match direction {
            Direction::Forward => {
                for (i, instr) in instrs.iter().enumerate() {
                    let out = transfer(i, instr, &facts[i]);
                    changed |= facts[i + 1].join(&out);
                }
            }
            Direction::Backward => {
                for (i, instr) in instrs.iter().enumerate().rev() {
                    let out = transfer(i, instr, &facts[i + 1]);
                    changed |= facts[i].join(&out);
                }
            }
        }
        if !changed {
            return Annotations { facts };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::flow::LocSet;
    use stoke_x86::{Gpr, Program};

    #[test]
    fn forward_pass_visits_every_point() {
        let p: Program = "movq rdi, rax\naddq rsi, rax".parse().unwrap();
        let instrs: Vec<&Instruction> = p.iter().collect();
        // A toy gen-only analysis: accumulate every defined gpr.
        let ann = fixpoint(
            &instrs,
            Direction::Forward,
            &LocSet::new(),
            |_, instr, incoming| {
                let mut out = incoming.clone();
                for r in instr.gpr_defs() {
                    out.gprs.insert(r.parent());
                }
                out
            },
        );
        assert!(ann.entry().is_empty());
        assert!(ann.after(0).gprs.contains(&Gpr::Rax));
        assert_eq!(ann.facts().len(), 3);
    }

    #[test]
    fn backward_boundary_seeds_exit() {
        let p: Program = "movq rdi, rax".parse().unwrap();
        let instrs: Vec<&Instruction> = p.iter().collect();
        let live_out = LocSet::from_gprs([Gpr::Rax]);
        let ann = fixpoint(&instrs, Direction::Backward, &live_out, |_, _, incoming| {
            incoming.clone()
        });
        assert_eq!(ann.exit(), &live_out);
        assert_eq!(ann.entry(), &live_out, "identity transfer propagates");
    }
}
