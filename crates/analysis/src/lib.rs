//! Static dataflow analyses over decoded x86 programs.
//!
//! The search layer evaluates candidate rewrites millions of times, but
//! some questions about a rewrite are *static*: which instructions are
//! dead with respect to the live-out interface, and whether an
//! instruction's latency or memory traffic can depend on a secret input.
//! This crate answers those questions with a small abstract-interpretation
//! framework over straight-line programs:
//!
//! - [`lattice::JoinSemiLattice`] — the fact domain contract (a bottom
//!   element and a changed-reporting join);
//! - [`engine`] — a generic forward/backward fixpoint engine producing
//!   one fact annotation per program point;
//! - [`defuse`] — per-instruction def/use extraction, derivable either
//!   from the instruction metadata or from the use lists a
//!   [`stoke_emu::PreparedProgram`] has already flattened;
//! - [`mod@liveness`] — backward liveness and the dead-code report built on
//!   it;
//! - [`taint`] — forward secret-taint propagation;
//! - [`leakage`] — the constant-time checks on top of the taint facts:
//!   absolute violations (secret-dependent latency or addresses) and the
//!   Spectector-style *relative* check comparing a rewrite's secret
//!   observations against its target's.
//!
//! The search pipeline consumes these through `stoke`'s
//! `ConstantTimePenalty` cost-model combinator and `LeakageCheck`
//! verifier.

#![deny(missing_docs)]

pub mod defuse;
pub mod engine;
pub mod lattice;
pub mod leakage;
pub mod liveness;
pub mod taint;

pub use defuse::DefUse;
pub use engine::{Annotations, Direction};
pub use lattice::JoinSemiLattice;
pub use leakage::{constant_time_violations, introduces_new_leaks, LeakKind, Violation};
pub use liveness::{dead_code_report, liveness};
pub use taint::{taint_analysis, TaintFact};
