//! Backward liveness through the fixpoint engine, and the dead-code
//! report built on it.

use crate::defuse::DefUse;
use crate::engine::{fixpoint, Annotations, Direction};
use stoke_x86::flow::LocSet;
use stoke_x86::Instruction;

/// Backward liveness over a straight-line instruction sequence.
///
/// The returned annotations hold, for each program point, the set of
/// locations whose current values may still be observed: the fact before
/// instruction `i` is its live-in set, and the exit fact equals
/// `live_out`. This is the same analysis as [`stoke_x86::flow::liveness`],
/// expressed through the generic engine (and pinned to it by a test).
pub fn liveness(instrs: &[&Instruction], live_out: &LocSet) -> Annotations<LocSet> {
    fixpoint(
        instrs,
        Direction::Backward,
        live_out,
        |_, instr, live_after| {
            let du = DefUse::of_instruction(instr);
            let mut live = live_after.clone();
            for g in &du.defs.gprs {
                live.gprs.remove(g);
            }
            for x in &du.defs.xmms {
                live.xmms.remove(x);
            }
            for f in &du.defs.flags {
                live.flags.remove(f);
            }
            live.union_with(&du.uses);
            live
        },
    )
}

/// Instruction indices whose results cannot reach the live-out interface.
///
/// Stores are always considered observable (the sandbox memory image is
/// compared by the cost function), and only instructions that write a
/// destination can be dead. Agrees with
/// [`stoke_x86::flow::dead_instructions`] by construction.
pub fn dead_code_report(instrs: &[&Instruction], live_out: &LocSet) -> Vec<usize> {
    let live = liveness(instrs, live_out);
    let mut dead = Vec::new();
    for (i, instr) in instrs.iter().enumerate() {
        if instr.stores() || !instr.opcode().writes_dst() {
            continue;
        }
        let after = live.after(i);
        let du = DefUse::of_instruction(instr);
        let writes_live = du
            .defs
            .gprs
            .iter()
            .chain(du.partial_defs.gprs.iter())
            .any(|g| after.gprs.contains(g))
            || du.defs.xmms.iter().any(|x| after.xmms.contains(x))
            || du.defs.flags.iter().any(|f| after.flags.contains(f));
        if !writes_live {
            dead.push(i);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::{flow, Gpr, Program};

    fn check_against_flow(text: &str, live_out: &LocSet) {
        let p: Program = text.parse().unwrap();
        let instrs: Vec<&Instruction> = p.iter().collect();
        let ours = liveness(&instrs, live_out);
        let reference = flow::liveness(&p, live_out);
        assert_eq!(ours.facts(), &reference[..], "liveness mismatch");
        assert_eq!(
            dead_code_report(&instrs, live_out),
            flow::dead_instructions(&p, live_out),
            "dead-code mismatch"
        );
    }

    #[test]
    fn matches_reference_liveness() {
        let live_rax = LocSet::from_gprs([Gpr::Rax]);
        check_against_flow("movq rdi, rax\naddq rsi, rax", &live_rax);
        check_against_flow("addq rsi, rax\nadcq 0, rdx", &live_rax);
        check_against_flow("sete dl\nmovq rdi, rbx", &live_rax);
        check_against_flow(
            "shlq 32, rcx\nmov edx, edx\nxorq rdx, rcx\nmovq rcx, rax\nmulq rsi",
            &LocSet::from_gprs([Gpr::Rax, Gpr::Rdx]),
        );
    }

    #[test]
    fn dead_code_found() {
        let p: Program = "movq rdi, rbx\nmovq rsi, rax".parse().unwrap();
        let instrs: Vec<&Instruction> = p.iter().collect();
        assert_eq!(
            dead_code_report(&instrs, &LocSet::from_gprs([Gpr::Rax])),
            vec![0]
        );
    }
}
