//! Forward secret-taint propagation.
//!
//! The abstract state tracks which locations may hold secret-derived
//! values: a [`LocSet`] of tainted registers and flags plus a single
//! abstract bit for the sandbox memory image (any store of a
//! secret-derived value taints "memory"; any later load then reads
//! taint). The single memory bit is a deliberate over-approximation — the
//! emulator's dynamic oracle tracks tainted bytes precisely, and the
//! property test at the workspace root checks this analysis
//! over-approximates every dynamic flow.

use crate::defuse::DefUse;
use crate::engine::{fixpoint, Annotations, Direction};
use crate::lattice::JoinSemiLattice;
use stoke_x86::flow::LocSet;
use stoke_x86::{AluOp, Instruction, Opcode, Operand};

/// The taint fact at one program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaintFact {
    /// Registers and flags that may hold secret-derived values.
    pub locs: LocSet,
    /// Whether any memory byte may hold a secret-derived value.
    pub mem: bool,
}

impl JoinSemiLattice for TaintFact {
    fn bottom() -> TaintFact {
        TaintFact::default()
    }

    fn join(&mut self, other: &TaintFact) -> bool {
        let mut changed = self.locs.join(&other.locs);
        changed |= self.mem.join(&other.mem);
        changed
    }
}

/// Whether the instruction is a zeroing idiom (`xor r, r` / `sub r, r`):
/// its result is the constant zero, independent of the register's value,
/// so it launders taint away. The dynamic oracle applies the same rule,
/// keeping the two aligned.
pub(crate) fn is_zeroing_idiom(instr: &Instruction) -> bool {
    if !matches!(
        instr.opcode(),
        Opcode::Alu(AluOp::Xor, _) | Opcode::Alu(AluOp::Sub, _)
    ) {
        return false;
    }
    match instr.operands() {
        [Operand::Reg(a), Operand::Reg(b)] => a == b,
        _ => false,
    }
}

/// Whether any value the instruction reads is tainted under `fact`.
pub(crate) fn reads_taint(instr: &Instruction, du: &DefUse, fact: &TaintFact) -> bool {
    if is_zeroing_idiom(instr) {
        return false;
    }
    du.uses.gprs.iter().any(|g| fact.locs.gprs.contains(g))
        || du.uses.xmms.iter().any(|x| fact.locs.xmms.contains(x))
        || du.uses.flags.iter().any(|f| fact.locs.flags.contains(f))
        || (instr.loads() && fact.mem)
}

/// Forward taint analysis: which locations may be secret-derived at each
/// program point, starting from the `secrets` live at entry.
pub fn taint_analysis(instrs: &[&Instruction], secrets: &LocSet) -> Annotations<TaintFact> {
    let boundary = TaintFact {
        locs: secrets.clone(),
        mem: false,
    };
    fixpoint(
        instrs,
        Direction::Forward,
        &boundary,
        |_, instr, incoming| {
            let du = DefUse::of_instruction(instr);
            let tainted = reads_taint(instr, &du, incoming);
            let mut out = incoming.clone();
            for g in &du.defs.gprs {
                if tainted {
                    out.locs.gprs.insert(*g);
                } else {
                    out.locs.gprs.remove(g);
                }
            }
            for g in &du.partial_defs.gprs {
                // Narrow writes merge into the parent register: old taint
                // survives in the preserved bits.
                if tainted {
                    out.locs.gprs.insert(*g);
                }
            }
            for x in &du.defs.xmms {
                if tainted {
                    out.locs.xmms.insert(*x);
                } else {
                    out.locs.xmms.remove(x);
                }
            }
            for f in &du.defs.flags {
                if tainted {
                    out.locs.flags.insert(*f);
                } else {
                    out.locs.flags.remove(f);
                }
            }
            if instr.stores() && tainted {
                // Weak update: the abstract memory bit never clears.
                out.mem = true;
            }
            out
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoke_x86::{Flag, Gpr, Program};

    fn analyze(text: &str, secrets: &[Gpr]) -> TaintFact {
        let p: Program = text.parse().unwrap();
        let instrs: Vec<&Instruction> = p.iter().collect();
        taint_analysis(&instrs, &LocSet::from_gprs(secrets.iter().copied()))
            .exit()
            .clone()
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let t = analyze("movq rdi, rax\naddq rsi, rax", &[Gpr::Rdi]);
        assert!(t.locs.gprs.contains(&Gpr::Rax));
        assert!(t.locs.flags.contains(&Flag::Cf), "flags of add are tainted");
        assert!(!t.locs.gprs.contains(&Gpr::Rsi));
    }

    #[test]
    fn overwrite_with_public_clears_taint() {
        let t = analyze("movq rdi, rax\nmovq rsi, rax", &[Gpr::Rdi]);
        assert!(!t.locs.gprs.contains(&Gpr::Rax));
    }

    #[test]
    fn zeroing_idiom_launders_taint() {
        let t = analyze("movq rdi, rax\nxorq rax, rax", &[Gpr::Rdi]);
        assert!(!t.locs.gprs.contains(&Gpr::Rax));
        assert!(!t.locs.flags.contains(&Flag::Zf));
    }

    #[test]
    fn memory_round_trip_carries_taint() {
        let t = analyze("movq rdi, (rsp)\nmovq (rsp), rax", &[Gpr::Rdi]);
        assert!(t.mem);
        assert!(t.locs.gprs.contains(&Gpr::Rax));
        // Public stores do not clear the abstract bit.
        let t = analyze(
            "movq rdi, (rsp)\nmovq rsi, (rsp)\nmovq (rsp), rax",
            &[Gpr::Rdi],
        );
        assert!(t.locs.gprs.contains(&Gpr::Rax), "weak update: taint stays");
    }

    #[test]
    fn taint_through_flags_into_cmov() {
        let t = analyze("testq 1, rdi\ncmovneq rsi, rax", &[Gpr::Rdi]);
        assert!(t.locs.gprs.contains(&Gpr::Rax));
    }

    #[test]
    fn narrow_write_keeps_old_taint() {
        // sete only writes dl; the tainted upper bits of rdx survive.
        let t = analyze("movq rdi, rdx\ncmpq rsi, rsi\nsete dl", &[Gpr::Rdi]);
        assert!(t.locs.gprs.contains(&Gpr::Rdx));
    }
}
