//! Reference interpreter for the IR: the ground truth the generated
//! baselines (and, transitively, every STOKE rewrite) are tested against.

use crate::ir::{Function, Op, Width};
use std::collections::BTreeMap;

fn as_signed(w: Width, v: u64) -> i64 {
    match w {
        Width::W32 => v as u32 as i32 as i64,
        Width::W64 => v as i64,
    }
}

/// Evaluate a function on parameter values, reading and writing the given
/// byte-addressed memory. Returns the function result (zero for functions
/// without a return value).
pub fn evaluate(f: &Function, params: &[u64], memory: &mut BTreeMap<u64, u8>) -> u64 {
    let mut values: Vec<u64> = Vec::with_capacity(f.insts.len());
    for inst in &f.insts {
        let w = inst.width;
        let get = |v: crate::ir::ValueId| values[v.0 as usize] & w.mask();
        let value = match &inst.op {
            Op::Param(i) => params.get(*i).copied().unwrap_or(0),
            Op::Const(c) => *c as u64,
            Op::Add(a, b) => get(*a).wrapping_add(get(*b)),
            Op::Sub(a, b) => get(*a).wrapping_sub(get(*b)),
            Op::Mul(a, b) => get(*a).wrapping_mul(get(*b)),
            Op::UMulHi(a, b) => match w {
                Width::W32 => (get(*a) * get(*b)) >> 32,
                Width::W64 => ((u128::from(get(*a)) * u128::from(get(*b))) >> 64) as u64,
            },
            Op::And(a, b) => get(*a) & get(*b),
            Op::Or(a, b) => get(*a) | get(*b),
            Op::Xor(a, b) => get(*a) ^ get(*b),
            Op::Shl(a, b) => {
                let c = get(*b) % (w.bytes() * 8);
                get(*a) << c
            }
            Op::Shr(a, b) => {
                let c = get(*b) % (w.bytes() * 8);
                get(*a) >> c
            }
            Op::Sar(a, b) => {
                let c = get(*b) % (w.bytes() * 8);
                (as_signed(w, get(*a)) >> c) as u64
            }
            Op::Neg(a) => get(*a).wrapping_neg(),
            Op::Not(a) => !get(*a),
            Op::Eq(a, b) => u64::from(get(*a) == get(*b)),
            Op::Ne(a, b) => u64::from(get(*a) != get(*b)),
            Op::Ult(a, b) => u64::from(get(*a) < get(*b)),
            Op::Slt(a, b) => u64::from(as_signed(w, get(*a)) < as_signed(w, get(*b))),
            Op::Ite(c, a, b) => {
                if get(*c) != 0 {
                    get(*a)
                } else {
                    get(*b)
                }
            }
            Op::Load { base, offset } => {
                let addr = get(*base).wrapping_add(*offset as i64 as u64);
                let mut v = 0u64;
                for i in 0..w.bytes() {
                    v |= u64::from(*memory.get(&addr.wrapping_add(i)).unwrap_or(&0)) << (8 * i);
                }
                v
            }
            Op::Store {
                base,
                offset,
                value,
            } => {
                let addr = get(*base).wrapping_add(*offset as i64 as u64);
                let v = get(*value);
                for i in 0..w.bytes() {
                    memory.insert(addr.wrapping_add(i), (v >> (8 * i)) as u8);
                }
                0
            }
        };
        values.push(value & w.mask());
    }
    f.ret.map(|r| values[r.0 as usize]).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Op};

    #[test]
    fn arithmetic_and_masking() {
        // 32-bit: (a + b) * 2
        let mut f = Function::new("t", 2);
        let a = f.push32(Op::Param(0));
        let b = f.push32(Op::Param(1));
        let s = f.push32(Op::Add(a, b));
        let two = f.push32(Op::Const(2));
        let r = f.push32(Op::Mul(s, two));
        f.ret(r);
        let mut mem = BTreeMap::new();
        assert_eq!(evaluate(&f, &[3, 4], &mut mem), 14);
        // 32-bit wrap-around.
        assert_eq!(evaluate(&f, &[0x8000_0000, 0], &mut mem), 0);
    }

    #[test]
    fn umulhi_matches_wide_product() {
        let mut f = Function::new("t", 2);
        let a = f.push64(Op::Param(0));
        let b = f.push64(Op::Param(1));
        let hi = f.push64(Op::UMulHi(a, b));
        f.ret(hi);
        let mut mem = BTreeMap::new();
        assert_eq!(evaluate(&f, &[1 << 63, 2], &mut mem), 1);
        assert_eq!(evaluate(&f, &[u64::MAX, u64::MAX], &mut mem), u64::MAX - 1);
    }

    #[test]
    fn loads_and_stores_are_little_endian() {
        // x[0] = x[0] + 1 (32-bit), returns the old value.
        let mut f = Function::new("t", 1);
        let p = f.push64(Op::Param(0));
        let old = f.push32(Op::Load { base: p, offset: 0 });
        let one = f.push32(Op::Const(1));
        let new = f.push32(Op::Add(old, one));
        f.push32(Op::Store {
            base: p,
            offset: 0,
            value: new,
        });
        f.ret(old);
        let mut mem = BTreeMap::new();
        mem.insert(0x100, 0xff);
        mem.insert(0x101, 0x00);
        assert_eq!(evaluate(&f, &[0x100], &mut mem), 0xff);
        assert_eq!(mem[&0x100], 0x00);
        assert_eq!(mem[&0x101], 0x01);
    }

    #[test]
    fn signed_operations() {
        let mut f = Function::new("t", 2);
        let a = f.push32(Op::Param(0));
        let b = f.push32(Op::Param(1));
        let lt = f.push32(Op::Slt(a, b));
        f.ret(lt);
        let mut mem = BTreeMap::new();
        assert_eq!(
            evaluate(&f, &[0xffff_ffff, 1], &mut mem),
            1,
            "-1 < 1 signed"
        );
        assert_eq!(evaluate(&f, &[1, 0xffff_ffff], &mut mem), 0);
    }
}
