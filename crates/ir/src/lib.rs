//! # stoke-ir
//!
//! A miniature straight-line expression IR with three code generators,
//! standing in for the production compilers used by the paper's
//! evaluation:
//!
//! * [`OptLevel::O0`] — every value is round-tripped through a stack slot,
//!   mimicking `llvm -O0` (the starting point of every STOKE search);
//! * [`OptLevel::O2`] — values live in registers but instruction selection
//!   is naive (the `icc -O3` stand-in of Figure 10);
//! * [`OptLevel::O3`] — register allocation plus the local instruction
//!   selection tricks a production compiler applies (the `gcc -O3`
//!   stand-in).
//!
//! Every kernel in `stoke-workloads` is written once in this IR and then
//! lowered to all three baselines; the IR interpreter provides the
//! reference semantics the generated assembly is tested against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interp;
pub mod ir;
pub mod lower;

pub use interp::evaluate;
pub use ir::{Function, Op, ValueId, Width as IrWidth};
pub use lower::{compile, OptLevel};
